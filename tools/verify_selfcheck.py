#!/usr/bin/env python
"""Self-check of the protocol model checker against a broken-table corpus.

CI runs this after ``verify protocol`` certifies the shipped tables: a
checker that passes everything is worse than no checker, so each seeded
mutation of a known-good table must be *rejected*, and rejected for the
right reason — the expected invariant name must appear among the ERROR
findings.  Exit status is non-zero on any miss.
"""

from __future__ import annotations

import copy
import sys
from typing import Callable, List, Tuple

from repro.memories.config import BUILTIN_PROTOCOLS
from repro.memories.protocol_table import load_protocol
from repro.verify.protocol import check_protocol


def _drop_entry(table: dict) -> None:
    table["transitions"].remove(_entry(table, "LOCAL_READ", "SHARED"))


def _stale_dirty_peer(table: dict) -> None:
    _entry(table, "REMOTE_WRITE", "MODIFIED")["next"] = "MODIFIED"


def _exclusive_shared_fill(table: dict) -> None:
    table["fill"]["read_shared"] = "EXCLUSIVE"


def _dirty_fill_alone(table: dict) -> None:
    table["fill"]["read_alone"] = "MODIFIED"


def _clean_write_fill(table: dict) -> None:
    table["fill"]["write"] = "SHARED"


def _dropped_writeback(table: dict) -> None:
    entry = _entry(table, "REMOTE_READ", "MODIFIED")
    entry["next"] = "SHARED"
    entry["hit"] = False


def _dead_state(table: dict) -> None:
    table["states"].append("OWNED")
    for op in ("LOCAL_READ", "LOCAL_WRITE", "LOCAL_CASTOUT",
               "REMOTE_READ", "REMOTE_WRITE"):
        table["transitions"].append(
            {"op": op, "state": "OWNED", "next": "OWNED", "hit": True}
        )


def _unknown_op(table: dict) -> None:
    table["transitions"][0]["op"] = "LOCAL_FROB"


def _undeclared_target(table: dict) -> None:
    _entry(table, "LOCAL_WRITE", "SHARED")["next"] = "OWNED"


def _declared_invalid(table: dict) -> None:
    table["states"].append("INVALID")


def _entry(table: dict, op: str, state: str) -> dict:
    return next(
        entry for entry in table["transitions"]
        if entry["op"] == op and entry["state"] == state
    )


#: (description, base table, mutation, invariant expected to flag it).
CORPUS: List[Tuple[str, str, Callable[[dict], None], str]] = [
    ("dropped (LOCAL_READ, SHARED) entry", "mesi", _drop_entry, "completeness"),
    ("REMOTE_WRITE leaves stale MODIFIED peer", "mesi", _stale_dirty_peer, "swmr"),
    ("read_shared fill claims EXCLUSIVE", "mesi", _exclusive_shared_fill,
     "fill-consistency"),
    ("read_alone fill installs dirty data", "msi", _dirty_fill_alone,
     "fill-consistency"),
    ("write fill installs clean data", "msi", _clean_write_fill,
     "fill-consistency"),
    ("remote read drops modified data", "moesi", _dropped_writeback,
     "dirty-writeback"),
    ("OWNED declared but never allocated", "mesi", _dead_state, "reachability"),
    ("unknown operation name", "msi", _unknown_op, "structure"),
    ("transition into undeclared OWNED", "msi", _undeclared_target,
     "reachability"),
    ("INVALID declared as a state", "mesi", _declared_invalid, "structure"),
]


def main() -> int:
    failures = 0

    for name in BUILTIN_PROTOCOLS:
        report = check_protocol(name)
        verdict = "ok" if report.ok else "FAIL"
        print(f"shipped {name!r}: {verdict}")
        if not report.ok:
            failures += 1
            for finding in report.errors:
                print("  " + finding.render())

    for description, base, mutate, expected in CORPUS:
        table = load_protocol(base).to_map()
        mutated = copy.deepcopy(table)
        mutate(mutated)
        report = check_protocol(mutated)
        flagged = {finding.check for finding in report.errors}
        if report.ok:
            print(f"MISSED: {description} (expected {expected}, got PASS)")
            failures += 1
        elif expected not in flagged:
            print(
                f"WRONG INVARIANT: {description} "
                f"(expected {expected}, got {sorted(flagged)})"
            )
            failures += 1
        else:
            print(f"rejected: {description} [{expected}]")

    if failures:
        print(f"\nself-check FAILED: {failures} case(s)")
        return 1
    print(f"\nself-check passed: {len(BUILTIN_PROTOCOLS)} shipped tables "
          f"certified, {len(CORPUS)} broken tables rejected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
