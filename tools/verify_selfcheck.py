#!/usr/bin/env python
"""Self-check of the static verifiers against broken-input corpora.

CI runs this after ``verify protocol`` / ``verify repo`` certify the
shipped artifacts: a checker that passes everything is worse than no
checker, so every corpus entry must be *rejected*, and rejected for the
right reason — the expected invariant or rule must appear among the
ERROR findings.  Two corpora are exercised:

* ``CORPUS`` — seeded mutations of known-good protocol tables against
  the model checker.
* ``LINT_CORPUS`` / ``CLEAN_CORPUS`` — source snippets against the repo
  lint + determinism analyzer: each defective snippet must fire exactly
  its rule, and each clean (or suppressed) snippet must stay quiet, so
  the rules neither miss nor cry wolf.
* ``ENGINE_CORPUS`` — board configurations against the engine
  registry's capability prover: each feature that breaks an engine's
  bit-identity argument (random replacement, SDRAM pricing, ECC
  directories) must deny exactly the expected capability, and the stock
  configuration must stay eligible.

Exit status is non-zero on any miss.
"""

from __future__ import annotations

import copy
import sys
import tempfile
from pathlib import Path
from typing import Callable, List, Tuple

from repro.memories.config import BUILTIN_PROTOCOLS
from repro.memories.protocol_table import load_protocol
from repro.verify.lint import check_repo
from repro.verify.protocol import check_protocol


def _drop_entry(table: dict) -> None:
    table["transitions"].remove(_entry(table, "LOCAL_READ", "SHARED"))


def _stale_dirty_peer(table: dict) -> None:
    _entry(table, "REMOTE_WRITE", "MODIFIED")["next"] = "MODIFIED"


def _exclusive_shared_fill(table: dict) -> None:
    table["fill"]["read_shared"] = "EXCLUSIVE"


def _dirty_fill_alone(table: dict) -> None:
    table["fill"]["read_alone"] = "MODIFIED"


def _clean_write_fill(table: dict) -> None:
    table["fill"]["write"] = "SHARED"


def _dropped_writeback(table: dict) -> None:
    entry = _entry(table, "REMOTE_READ", "MODIFIED")
    entry["next"] = "SHARED"
    entry["hit"] = False


def _dead_state(table: dict) -> None:
    table["states"].append("OWNED")
    for op in ("LOCAL_READ", "LOCAL_WRITE", "LOCAL_CASTOUT",
               "REMOTE_READ", "REMOTE_WRITE"):
        table["transitions"].append(
            {"op": op, "state": "OWNED", "next": "OWNED", "hit": True}
        )


def _unknown_op(table: dict) -> None:
    table["transitions"][0]["op"] = "LOCAL_FROB"


def _undeclared_target(table: dict) -> None:
    _entry(table, "LOCAL_WRITE", "SHARED")["next"] = "OWNED"


def _declared_invalid(table: dict) -> None:
    table["states"].append("INVALID")


def _entry(table: dict, op: str, state: str) -> dict:
    return next(
        entry for entry in table["transitions"]
        if entry["op"] == op and entry["state"] == state
    )


#: (description, base table, mutation, invariant expected to flag it).
CORPUS: List[Tuple[str, str, Callable[[dict], None], str]] = [
    ("dropped (LOCAL_READ, SHARED) entry", "mesi", _drop_entry, "completeness"),
    ("REMOTE_WRITE leaves stale MODIFIED peer", "mesi", _stale_dirty_peer, "swmr"),
    ("read_shared fill claims EXCLUSIVE", "mesi", _exclusive_shared_fill,
     "fill-consistency"),
    ("read_alone fill installs dirty data", "msi", _dirty_fill_alone,
     "fill-consistency"),
    ("write fill installs clean data", "msi", _clean_write_fill,
     "fill-consistency"),
    ("remote read drops modified data", "moesi", _dropped_writeback,
     "dirty-writeback"),
    ("OWNED declared but never allocated", "mesi", _dead_state, "reachability"),
    ("unknown operation name", "msi", _unknown_op, "structure"),
    ("transition into undeclared OWNED", "msi", _undeclared_target,
     "reachability"),
    ("INVALID declared as a state", "mesi", _declared_invalid, "structure"),
]


#: (description, source snippet, rule ID expected to flag it[, subdir]).
#: Each snippet is one seeded defect; the repo lint must reject it and
#: name the right rule.  The optional fourth element places the snippet
#: in a subdirectory of the lint root — path-scoped rules (DT207 applies
#: only under ``supervisor/``/``service/``) need their defects planted
#: inside the scoped tree.
LINT_CORPUS: List[Tuple[str, ...]] = [
    (
        "mutable default argument",
        "def extend(item, acc=[]):\n"
        "    acc.append(item)\n"
        "    return acc\n",
        "RP104",
    ),
    (
        "list-of-calls replicated with '*'",
        "def build_rows(n):\n"
        "    return [dict()] * n\n",
        "RP105",
    ),
    (
        "dict.fromkeys sharing one mutable value",
        "def empty_queues(names):\n"
        "    return dict.fromkeys(names, [])\n",
        "RP105",
    ),
    (
        "constructor instance replicated with '*'",
        "def build_sets(n):\n"
        "    meta = LineMeta()\n"
        "    return [meta] * n\n",
        "RP105",
    ),
    (
        "set iteration in a serialization routine",
        "def write_rows(stream, items):\n"
        "    seen = set(items)\n"
        "    for item in seen:\n"
        "        stream.write(item)\n",
        "DT201",
    ),
    (
        "wall-clock read outside the timing shim",
        "import time\n\n"
        "def stamp():\n"
        "    return time.monotonic()\n",
        "DT202",
    ),
    (
        "calendar clock read",
        "import datetime\n\n"
        "def label():\n"
        "    return datetime.datetime.now().isoformat()\n",
        "DT202",
    ),
    (
        "unseeded kernel entropy",
        "import os\n\n"
        "def token():\n"
        "    return os.urandom(8)\n",
        "DT203",
    ),
    (
        "default_rng without a seed",
        "import numpy as np\n\n"
        "def stream():\n"
        "    return np.random.default_rng()\n",
        "DT203",
    ),
    (
        "builtin hash() in emulation state",
        "def bucket(key):\n"
        "    return hash(key) % 64\n",
        "DT204",
    ),
    (
        "float sum over a set",
        "def total(values):\n"
        "    return sum({float(v) for v in values})\n",
        "DT205",
    ),
    (
        "lambda handed to a pool dispatch",
        "def run(pool, items):\n"
        "    return pool.map(lambda x: x + 1, items)\n",
        "DT206",
    ),
    (
        "nested function handed to a pool dispatch",
        "def run(pool, items):\n"
        "    def work(x):\n"
        "        return x + 1\n"
        "    return pool.map(work, items)\n",
        "DT206",
    ),
    (
        "stdlib-random backoff jitter in supervisor code",
        "import random\n\n"
        "def backoff(base, attempt):\n"
        "    return base * 2 ** attempt * (1.0 + random.random())\n",
        "DT207",
        "supervisor",
    ),
    (
        "legacy numpy global-RNG jitter in service code",
        "import numpy as np\n\n"
        "def retry_delay(base):\n"
        "    return base * (1.0 + 0.25 * np.random.uniform())\n",
        "DT207",
        "service",
    ),
    (
        "perf_counter timestamping inside the flight recorder",
        "import time\n\n"
        "def stamp_entry(entry):\n"
        "    entry['seen'] = time.perf_counter()\n"
        "    return entry\n",
        "DT208",
        "obs",
    ),
]

#: (description, source snippet[, subdir]) pairs the lint must pass
#: untouched — the deterministic spelling of each defect above, plus an
#: inline suppression.  These prove the rules stay quiet on correct code.
CLEAN_CORPUS: List[Tuple[str, ...]] = [
    (
        "sorted set iteration in a serialization routine",
        "def write_rows(stream, items):\n"
        "    for item in sorted(set(items)):\n"
        "        stream.write(item)\n",
    ),
    (
        "perf_counter is exempt from the wall-clock rule",
        "import time\n\n"
        "def measure():\n"
        "    return time.perf_counter()\n",
    ),
    (
        "seeded default_rng",
        "import numpy as np\n\n"
        "def stream(seed):\n"
        "    return np.random.default_rng(seed)\n",
    ),
    (
        "per-slot instances via comprehension",
        "def build_rows(n):\n"
        "    return [dict() for _ in range(n)]\n",
    ),
    (
        "float sum over dict values (insertion-ordered)",
        "def total(counters):\n"
        "    return sum(counters.values())\n",
    ),
    (
        "module-level worker function",
        "def work(x):\n"
        "    return x + 1\n\n"
        "def run(pool, items):\n"
        "    return pool.map(work, items)\n",
    ),
    (
        "inline suppression silences the named rule",
        "def bucket(key):\n"
        "    return hash(key) % 64  # repro: ignore[DT204]\n",
    ),
    (
        "seed-derived backoff jitter in supervisor code",
        "import numpy as np\n\n"
        "def backoff(seed, base, attempt):\n"
        "    rng = np.random.default_rng(\n"
        "        np.random.SeedSequence([seed, attempt]))\n"
        "    return base * 2 ** attempt * (1.0 + 0.25 * rng.random())\n",
        "supervisor",
    ),
    (
        "recorder consumes durations recorded as data",
        "def stamp_entry(entry, span):\n"
        "    entry['seen'] = span['wall']['seconds']\n"
        "    return entry\n",
        "obs",
    ),
]


#: (description, board feature, engine, capability expected missing —
#: None means the engine must be eligible).
ENGINE_CORPUS: List[Tuple[str, str, str, object]] = [
    ("stock split board runs the compiled kernels",
     "stock", "compiled", None),
    ("random replacement has no compiled lowering",
     "random", "compiled", "deterministic_replacement"),
    ("SDRAM-priced buffers cannot be flattened",
     "sdram", "compiled", "dense_protocol_state"),
    ("ECC-protected directories cannot be flattened",
     "ecc", "compiled", "dense_protocol_state"),
    ("ECC patrol scrubber still blocks batching",
     "ecc", "batched", "inert_background_tick"),
]


def _engine_board(feature: str):
    from repro.memories.board import board_for_machine
    from repro.memories.config import CacheNodeConfig
    from repro.target.configs import split_smp_machine

    config = CacheNodeConfig(
        size=128 * 1024, assoc=4, line_size=128,
        replacement="random" if feature == "random" else "lru",
    )
    machine = split_smp_machine(config, n_cpus=8, procs_per_node=2)
    if feature == "ecc":
        return board_for_machine(machine, ecc=True, scrub_interval=500.0)
    board = board_for_machine(machine)
    if feature == "sdram":
        from repro.memories.sdram import SdramModel

        board.firmware.nodes[0].sdram = SdramModel()
    return board


def _check_engine_corpus() -> int:
    """Prove each engine-denial case fires, and the eligible case doesn't."""
    from repro.engines import decide

    failures = 0
    for description, feature, engine, expected in ENGINE_CORPUS:
        decision = decide(engine, board=_engine_board(feature))
        if expected is None:
            if decision.eligible:
                print(f"eligible: {description} [{engine}]")
            else:
                print(
                    f"WRONG DENIAL: {description} "
                    f"({engine}: {decision.reason()})"
                )
                failures += 1
            continue
        missing = {str(capability) for capability in decision.missing}
        if decision.eligible:
            print(
                f"MISSED: {description} "
                f"(expected {expected} missing, got eligible)"
            )
            failures += 1
        elif expected not in missing:
            print(
                f"WRONG CAPABILITY: {description} "
                f"(expected {expected}, got {sorted(missing)})"
            )
            failures += 1
        else:
            print(f"denied: {description} [{engine} missing {expected}]")
    return failures


def _check_lint_corpus() -> int:
    """Run the defect + clean snippets through ``check_repo``; count misses."""
    failures = 0
    with tempfile.TemporaryDirectory(prefix="lint-selfcheck-") as tmp:
        root = Path(tmp)
        defect_files = {}
        for index, entry in enumerate(LINT_CORPUS):
            description, source, expected = entry[0], entry[1], entry[2]
            subdir = entry[3] if len(entry) > 3 else ""
            name = f"defect_{index:02d}.py"
            if subdir:
                name = f"{subdir}/{name}"
            path = root / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
            defect_files[name] = (description, expected)
        clean_files = {}
        for index, entry in enumerate(CLEAN_CORPUS):
            description, source = entry[0], entry[1]
            subdir = entry[2] if len(entry) > 2 else ""
            name = f"clean_{index:02d}.py"
            if subdir:
                name = f"{subdir}/{name}"
            path = root / name
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source, encoding="utf-8")
            clean_files[name] = description

        report = check_repo(root, profile="library")

        for name, (description, expected) in sorted(defect_files.items()):
            fired = {
                finding.rule for finding in report.errors
                if finding.path == name
            }
            if expected in fired:
                print(f"flagged: {description} [{expected}]")
            elif fired:
                print(
                    f"WRONG RULE: {description} "
                    f"(expected {expected}, got {sorted(fired)})"
                )
                failures += 1
            else:
                print(f"MISSED: {description} (expected {expected}, got PASS)")
                failures += 1

        for name, description in sorted(clean_files.items()):
            noisy = [
                finding for finding in report.errors + report.warnings
                if finding.path == name
            ]
            if noisy:
                print(f"FALSE POSITIVE: {description}")
                for finding in noisy:
                    print("  " + finding.render())
                failures += 1
            else:
                print(f"quiet: {description}")
    return failures


def main() -> int:
    failures = 0

    for name in BUILTIN_PROTOCOLS:
        report = check_protocol(name)
        verdict = "ok" if report.ok else "FAIL"
        print(f"shipped {name!r}: {verdict}")
        if not report.ok:
            failures += 1
            for finding in report.errors:
                print("  " + finding.render())

    for description, base, mutate, expected in CORPUS:
        table = load_protocol(base).to_map()
        mutated = copy.deepcopy(table)
        mutate(mutated)
        report = check_protocol(mutated)
        flagged = {finding.check for finding in report.errors}
        if report.ok:
            print(f"MISSED: {description} (expected {expected}, got PASS)")
            failures += 1
        elif expected not in flagged:
            print(
                f"WRONG INVARIANT: {description} "
                f"(expected {expected}, got {sorted(flagged)})"
            )
            failures += 1
        else:
            print(f"rejected: {description} [{expected}]")

    failures += _check_lint_corpus()
    failures += _check_engine_corpus()

    if failures:
        print(f"\nself-check FAILED: {failures} case(s)")
        return 1
    print(f"\nself-check passed: {len(BUILTIN_PROTOCOLS)} shipped tables "
          f"certified, {len(CORPUS)} broken tables rejected, "
          f"{len(LINT_CORPUS)} lint defects flagged, "
          f"{len(CLEAN_CORPUS)} clean snippets quiet, "
          f"{len(ENGINE_CORPUS)} engine capability verdicts checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
