#!/usr/bin/env python
"""CI smoke test of the fault-injection machinery (repro.faults).

Three contracts are asserted, each with a seeded campaign so CI failures
reproduce locally byte-for-byte:

1. **Zero-fault identity** — with every fault rate at 0.0, the injected
   replay must match the bare baseline replay *exactly*, key-for-key and
   value-for-value, with ECC both off and on.  Any drift here means the
   injection overlay or the recovery machinery perturbs healthy runs.
2. **Reproducibility** — rerunning the same non-zero plan must commit the
   identical fault-event sequence and land on identical statistics.
3. **Scrub recovery** — every injected single-bit directory flip must be
   corrected by one full patrol pass, with zero uncorrectable events.

Exit status is non-zero on any violation.
"""

from __future__ import annotations

import sys

import numpy as np

from _smoke import SmokeChecks, synthetic_words

from repro.faults import FaultPlan, run_campaign
from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.target.configs import split_smp_machine

RECORDS = 4000
SEED = 20000


def _machine():
    config = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)
    return split_smp_machine(config, n_cpus=4, procs_per_node=2)


def main() -> int:
    smoke = SmokeChecks("fault")
    words = synthetic_words(RECORDS, SEED)
    machine = _machine()

    for ecc in (False, True):
        result = run_campaign(words, machine, FaultPlan(), ecc=ecc)
        smoke.check(
            f"zero-fault campaign identical to baseline (ecc={ecc})",
            result.identical and result.fault_counts == {},
            result.summary(),
        )

    plan = FaultPlan.uniform(0.01, seed=SEED)
    first = run_campaign(words, machine, plan)
    second = run_campaign(words, machine, plan)
    smoke.check(
        "seeded plan reproduces fault sites",
        first.events == second.events and len(first.events) > 0,
        f"{len(first.events)} vs {len(second.events)} events",
    )
    smoke.check(
        "seeded plan reproduces statistics",
        first.faulted == second.faulted,
    )

    board = board_for_machine(machine, ecc=True)
    board.replay_words(words)
    rng = np.random.default_rng(SEED)
    flips = 0
    for node in board.firmware.nodes:
        directory = node.directory
        for set_index in range(directory.config.num_sets):
            if directory.ways_in_set(set_index) == 0:
                continue
            directory.inject_bit_flip(
                set_index, 0, int(rng.integers(directory.stored_bits))
            )
            flips += 1
        node.scrubber.scrub_all()
    corrected = sum(
        node.resilience.snapshot().get(
            f"node{node.index}.resilience.ecc.corrected", 0
        )
        for node in board.firmware.nodes
    )
    uncorrectable = sum(
        node.resilience.snapshot().get(
            f"node{node.index}.resilience.ecc.uncorrectable", 0
        )
        for node in board.firmware.nodes
    )
    smoke.check(
        "scrub pass corrects every injected single-bit flip",
        flips > 0 and corrected == flips and uncorrectable == 0,
        f"flips={flips} corrected={corrected} uncorrectable={uncorrectable}",
    )

    return smoke.finish()


if __name__ == "__main__":
    sys.exit(main())
