#!/usr/bin/env python
"""CI smoke for the multi-session emulation service.

Boots a real :class:`repro.service.http.ServiceServer` on a loopback
port, submits two concurrent sessions — one of which has its worker
SIGKILLed mid-run by a :class:`ServiceChaosPlan` — and asserts the
service contract end to end over the wire:

* both sessions complete, and both digests are bit-identical to a
  direct, undisturbed :class:`RunSupervisor` run of the same work;
* the chaos victim reports exactly the expected worker restart;
* ``/metrics`` parses with :func:`repro.telemetry.prom.parse_exposition`
  and exposes queue depth, per-state session gauges and the restart
  counter the chaos run incremented;
* ``/drain`` walks the shedding ladder and the drained manifest renders.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
from pathlib import Path

from _smoke import SmokeChecks, synthetic_words

from repro.faults import ServiceChaosPlan
from repro.memories.config import CacheNodeConfig
from repro.service import (
    EmulationService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
    render_service_manifest,
)
from repro.service.metrics import (
    EVENTS_METRIC,
    QUEUE_DEPTH_METRIC,
    SESSIONS_METRIC,
)
from repro.supervisor import RunSupervisor, SupervisedRunSpec
from repro.target.configs import single_node_machine
from repro.telemetry.prom import parse_exposition

RECORDS = 3000
CFG = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)


def spec(seed: int) -> SupervisedRunSpec:
    return SupervisedRunSpec(
        machine=single_node_machine(CFG, n_cpus=4),
        seed=seed,
        segment_records=500,
        heartbeat_every=500,
    )


def reference_digest(seed: int, scratch: Path) -> str:
    words = synthetic_words(RECORDS, seed, n_lines=512)
    return RunSupervisor.create(
        spec(seed), words, scratch / f"ref-{seed}"
    ).run().digest


def submission(seed: int, label: str) -> dict:
    return {
        "run_spec": spec(seed).to_dict(),
        "trace": {
            "kind": "synthetic", "records": RECORDS, "seed": seed,
            "n_lines": 512,
        },
        "label": label,
    }


async def drive(root: Path) -> dict:
    """Boot, run the two sessions, scrape, drain; return observations."""
    service = EmulationService(
        root,
        ServiceConfig(max_workers=2),
        chaos=ServiceChaosPlan(kill_worker={"victim": 900}),
    )
    server = ServiceServer(service)
    await server.start()
    client = ServiceClient(server.host, server.port)

    health = await client.healthz()
    victim = await client.submit(submission(101, "victim"))
    steady = await client.submit(submission(202, "steady"))
    views = {
        victim: await client.wait(victim, timeout=120),
        steady: await client.wait(steady, timeout=120),
    }
    results = {
        victim: await client.result(victim),
        steady: await client.result(steady),
    }
    metrics = parse_exposition(await client.metrics())
    await client.drain()
    await server.stop(drain=True)
    return {
        "health": health,
        "victim": victim,
        "steady": steady,
        "views": views,
        "results": results,
        "metrics": metrics,
        "rendered": render_service_manifest(root),
    }


def main() -> int:
    smoke = SmokeChecks("service")
    with tempfile.TemporaryDirectory(prefix="service-smoke-") as tmp:
        scratch = Path(tmp)
        seen = asyncio.run(drive(scratch / "svc"))

        smoke.check(
            "server reports healthy",
            seen["health"].get("state") in ("accept", "queue-only"),
            str(seen["health"]),
        )

        victim, steady = seen["victim"], seen["steady"]
        for session_id, label in ((victim, "victim"), (steady, "steady")):
            view = seen["views"][session_id]
            smoke.check(
                f"{label} session completed",
                view.get("state") == "completed",
                str(view),
            )

        expected = {
            victim: reference_digest(101, scratch),
            steady: reference_digest(202, scratch),
        }
        for session_id, label in ((victim, "victim"), (steady, "steady")):
            digest = seen["results"][session_id]["result"]["digest"]
            smoke.check(
                f"{label} digest bit-identical to direct supervised run",
                digest == expected[session_id],
                f"{digest} != {expected[session_id]}",
            )
        smoke.check(
            "chaos victim restarted exactly once",
            seen["views"][victim].get("restarts") == 1,
            str(seen["views"][victim]),
        )

        metrics = seen["metrics"]
        smoke.check(
            "metrics expose queue depth",
            (QUEUE_DEPTH_METRIC, ()) in metrics,
            str(sorted(name for name, _ in metrics)[:8]),
        )
        smoke.check(
            "metrics count both completions",
            metrics.get((SESSIONS_METRIC, (("state", "completed"),))) == 2.0,
            str({k: v for k, v in metrics.items() if k[0] == SESSIONS_METRIC}),
        )
        smoke.check(
            "metrics count the chaos worker restart",
            metrics.get(
                (EVENTS_METRIC, (("event", "worker_restarts"),))
            ) == 1.0,
            str({k: v for k, v in metrics.items() if k[0] == EVENTS_METRIC}),
        )
        smoke.check(
            "drained manifest renders for the console",
            "completed" in seen["rendered"],
            seen["rendered"],
        )
    return smoke.finish()


if __name__ == "__main__":
    sys.exit(main())
