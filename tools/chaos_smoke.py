#!/usr/bin/env python
"""CI chaos test of the crash-safe run supervisor (repro.supervisor).

Each contract kills, corrupts or degrades a supervised run with the
deterministic :class:`~repro.supervisor.ChaosPlan` hooks and asserts the
recovery guarantees the subsystem is built around:

1. **Zero-fault identity** — an unperturbed supervised run lands on
   statistics bit-identical to a bare ``board.replay_words``.
2. **Mid-segment kill** — SIGKILL the worker partway through a segment;
   the supervisor restarts it from the last committed checkpoint and the
   final counters are bit-identical to an uninterrupted run.
3. **Commit-boundary kill + cold resume** — SIGKILL exactly after a
   commit with a zero restart budget, then resume via a fresh
   ``RunSupervisor.open()``: still bit-identical, with the journal
   carrying the full restart history.
4. **Degraded completion** — a trace segment with a flipped payload byte
   is quarantined, and a node whose ECC self-check reports uncorrectable
   directory damage is taken offline; both runs *complete*, with the
   degradation journaled and accounted in the statistics.

Everything is seeded, so a CI failure reproduces locally byte-for-byte.
Exit status is non-zero on any violation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from _smoke import SmokeChecks, synthetic_words

from repro.memories.config import CacheNodeConfig
from repro.supervisor import (
    ChaosPlan,
    RunSupervisor,
    SupervisedRunSpec,
    SupervisorError,
)
from repro.target.configs import single_node_machine

RECORDS = 4000
SEGMENT_RECORDS = 1000
SEED = 20000


def _spec(**overrides) -> SupervisedRunSpec:
    config = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)
    defaults = dict(
        machine=single_node_machine(config, n_cpus=4),
        segment_records=SEGMENT_RECORDS,
        backoff_base=0.01,
    )
    defaults.update(overrides)
    return SupervisedRunSpec(**defaults)


def _bare_statistics(spec: SupervisedRunSpec, words: np.ndarray) -> dict:
    board = spec.build_board()
    board.replay_words(words)
    return board.statistics()


def _corrupt_segment(run_dir: Path, segment: int) -> None:
    """Flip one payload byte of one segment of the staged v5 trace."""
    path = run_dir / RunSupervisor.TRACE_NAME
    data = bytearray(path.read_bytes())
    offset = 20 + segment * (SEGMENT_RECORDS * 8 + 4) + 11
    data[offset] ^= 0x40
    path.write_bytes(data)


def main() -> int:
    smoke = SmokeChecks("chaos")
    words = synthetic_words(RECORDS, SEED)

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        tmp = Path(tmp)

        spec = _spec()
        bare = _bare_statistics(spec, words)

        result = RunSupervisor.create(spec, words, tmp / "clean").run()
        smoke.check(
            "zero-fault supervised run identical to bare replay",
            result.statistics == bare and not result.degraded,
        )

        supervisor = RunSupervisor.create(spec, words, tmp / "midkill")
        result = supervisor.run(chaos=ChaosPlan(kill_after_records=1500))
        smoke.check(
            "mid-segment SIGKILL: restarted run identical to bare replay",
            result.statistics == bare and result.restarts == 1,
            f"restarts={result.restarts}",
        )

        strict = _spec(max_restarts=0)
        supervisor = RunSupervisor.create(strict, words, tmp / "commitkill")
        budget_hit = False
        try:
            supervisor.run(chaos=ChaosPlan(kill_at_commit=1))
        except SupervisorError:
            budget_hit = True
        resumed = RunSupervisor.open(tmp / "commitkill")
        result = resumed.run()
        status = resumed.status()
        smoke.check(
            "commit-boundary SIGKILL + cold resume identical to bare replay",
            budget_hit
            and result.statistics == bare
            and status["complete"]
            and status["restarts"] == 1,
            f"budget_hit={budget_hit} restarts={status['restarts']}",
        )

        supervisor = RunSupervisor.create(spec, words, tmp / "quarantine")
        _corrupt_segment(tmp / "quarantine", 2)
        result = supervisor.run()
        smoke.check(
            "corrupt trace segment quarantined; run completes degraded",
            result.degraded
            and result.segments_quarantined == 1
            and result.records_skipped == SEGMENT_RECORDS
            and supervisor.status()["quarantined_segments"] == [2],
            f"quarantined={result.segments_quarantined} "
            f"skipped={result.records_skipped}",
        )

        ecc_spec = _spec(ecc=True)
        supervisor = RunSupervisor.create(ecc_spec, words, tmp / "badnode")
        result = supervisor.run(chaos=ChaosPlan(fail_node=(1, 0)))
        smoke.check(
            "uncorrectable directory damage offlines the node; run completes",
            result.degraded
            and result.offline_nodes == [0]
            and result.statistics["board.offline_nodes"] == 1,
            f"offline={result.offline_nodes}",
        )

    return smoke.finish()


if __name__ == "__main__":
    sys.exit(main())
