"""Shared harness for the CI smoke tools.

The four ``*_smoke.py`` entry points (bench, fault, chaos, telemetry)
share the same shape: run a handful of seeded contracts, print one
``[ok  ]``/``[FAIL]`` line per contract, print a final verdict, and exit
with the repo's disciplined exit codes (:data:`repro.cli.EXIT_OK` /
:data:`repro.cli.EXIT_CHECK_FAILED` — a smoke failure is "a check ran
and failed", never a validation or runtime error).  This module holds
that boilerplate once.

Usage::

    from _smoke import SmokeChecks, synthetic_words

    def main() -> int:
        smoke = SmokeChecks("bench")
        smoke.check("contract holds", value == expected, f"got {value}")
        return smoke.finish()

    if __name__ == "__main__":
        sys.exit(main())
"""

from __future__ import annotations

import numpy as np

from repro.bus.trace import encode_arrays
from repro.bus.transaction import BusCommand
from repro.cli import EXIT_CHECK_FAILED, EXIT_OK


class SmokeChecks:
    """Accumulates named pass/fail checks and renders the verdict."""

    def __init__(self, label: str) -> None:
        self.label = label
        self.ok = True

    def check(self, name: str, ok: bool, detail: str = "") -> bool:
        """Record one contract; detail prints only on failure."""
        suffix = f" ({detail})" if detail and not ok else ""
        print(f"[{'ok  ' if ok else 'FAIL'}] {name}{suffix}")
        self.ok = self.ok and bool(ok)
        return bool(ok)

    def finish(self) -> int:
        """Print the final verdict; return the disciplined exit code."""
        print(f"{self.label} smoke: " + ("PASS" if self.ok else "FAIL"))
        return EXIT_OK if self.ok else EXIT_CHECK_FAILED


def synthetic_words(
    records: int,
    seed: int,
    n_cpus: int = 4,
    n_lines: int = 1024,
    line_size: int = 128,
    rwitm_fraction: float = 0.2,
) -> np.ndarray:
    """The smoke tools' seeded synthetic bus trace.

    A read/RWITM mix over ``n_lines`` line-aligned addresses — enough
    traffic shape to exercise hits, misses, interventions and
    replacement without a workload model.  Same seed, same bytes.
    """
    rng = np.random.default_rng(seed)
    cpus = rng.integers(0, n_cpus, records).astype(np.uint64)
    commands = rng.choice(
        [int(BusCommand.READ), int(BusCommand.RWITM)],
        size=records,
        p=[1.0 - rwitm_fraction, rwitm_fraction],
    ).astype(np.uint64)
    addresses = (
        rng.integers(0, n_lines, records) * np.uint64(line_size)
    ).astype(np.uint64)
    return encode_arrays(cpus, commands, addresses)
