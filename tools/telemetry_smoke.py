#!/usr/bin/env python
"""CI smoke test of the observability machinery (repro.telemetry).

Four contracts are asserted, each seeded so CI failures reproduce locally
byte-for-byte:

1. **Null-sink identity** — a replay with a sampler and run trace attached
   (pointed at the null sink) must land on statistics bit-identical to a
   bare replay.  Any drift means the samplers mutate emulation state.
2. **JSONL round-trip** — a deterministic JSONL series re-read from disk
   must re-encode to the identical bytes, and two same-seed runs must
   write byte-identical files (wall-clock fields segregated and stripped).
3. **Prometheus export** — the exposition page must parse with our own
   minimal reader, and every exported counter total must equal the summed
   wrap-aware deltas of the recorded series.
4. **Checkpoint continuity** — splitting a replay across a checkpoint /
   restore must produce the identical record stream as the straight run.

Exit status is non-zero on any violation.
"""

from __future__ import annotations

import json
import sys

from _smoke import SmokeChecks, synthetic_words

from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.target.configs import split_smp_machine
from repro.telemetry import (
    NULL_SINK,
    CounterSampler,
    JsonlSink,
    MemorySink,
    RunTrace,
    TelemetrySeries,
    encode_record,
    load_jsonl,
    parse_exposition,
    series_exposition,
)

RECORDS = 4000
SEED = 30000
CADENCE = 512


def _machine():
    config = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)
    return split_smp_machine(config, n_cpus=4, procs_per_node=2)


def _run_jsonl(path, words, machine) -> bytes:
    sink = JsonlSink(path, deterministic=True)
    board = board_for_machine(machine)
    trace = RunTrace(sink, label="smoke")
    board.attach_telemetry(
        CounterSampler(sink, every_transactions=CADENCE), trace
    )
    board.replay_words(words)
    board.telemetry.finish(board)
    sink.close()
    with open(path, "rb") as handle:
        return handle.read()


def main() -> int:
    import tempfile
    from pathlib import Path

    smoke = SmokeChecks("telemetry")
    words = synthetic_words(RECORDS, SEED)
    machine = _machine()

    # 1. Null-sink identity.
    bare = board_for_machine(machine)
    bare.replay_words(words)
    instrumented = board_for_machine(machine)
    instrumented.attach_telemetry(
        CounterSampler(NULL_SINK, every_transactions=CADENCE),
        RunTrace(NULL_SINK),
    )
    instrumented.replay_words(words)
    smoke.check(
        "null-sink instrumented replay bit-identical to bare",
        json.dumps(bare.statistics(), sort_keys=True)
        == json.dumps(instrumented.statistics(), sort_keys=True),
    )

    with tempfile.TemporaryDirectory() as tmp:
        # 2. JSONL round-trip + same-seed byte identity.
        first_path = Path(tmp) / "first.jsonl"
        second_path = Path(tmp) / "second.jsonl"
        first_bytes = _run_jsonl(first_path, words, machine)
        second_bytes = _run_jsonl(second_path, words, machine)
        smoke.check(
            "same-seed deterministic runs write byte-identical JSONL",
            first_bytes == second_bytes and len(first_bytes) > 0,
            f"{len(first_bytes)} vs {len(second_bytes)} bytes",
        )
        records = load_jsonl(first_path)
        reencoded = (
            "\n".join(encode_record(r) for r in records) + "\n"
        ).encode()
        smoke.check(
            "JSONL series round-trips through load_jsonl/encode_record",
            reencoded == first_bytes,
            f"{len(reencoded)} vs {len(first_bytes)} bytes",
        )

    # 3. Prometheus export parses and totals match the summed deltas.
    sink = MemorySink()
    board = board_for_machine(machine)
    sampler = CounterSampler(sink, every_transactions=CADENCE)
    board.attach_telemetry(sampler)
    board.replay_words(words)
    sampler.finish(board)
    page = series_exposition(sink.records)
    parsed = parse_exposition(page)
    totals = TelemetrySeries(sink.records).totals()
    mismatches = [
        name
        for name, value in totals.items()
        if parsed.get(
            ("memories_counter_total", (("counter", name), ("label", "board")))
        )
        != value
    ]
    smoke.check(
        "prometheus exposition parses and totals match summed deltas",
        bool(parsed) and not mismatches,
        f"mismatched: {mismatches[:5]}",
    )

    # 4. Checkpoint / restore continuity of the record stream.
    straight_sink = MemorySink()
    straight = board_for_machine(machine)
    straight.attach_telemetry(
        CounterSampler(straight_sink, every_transactions=CADENCE)
    )
    straight.replay_words(words)
    half = RECORDS // 2
    first_sink = MemorySink()
    first_board = board_for_machine(machine)
    first_board.attach_telemetry(
        CounterSampler(first_sink, every_transactions=CADENCE)
    )
    first_board.replay_words(words[:half])
    state = json.loads(json.dumps(first_board.checkpoint()))
    second_sink = MemorySink()
    second_board = board_for_machine(machine)
    second_board.attach_telemetry(
        CounterSampler(second_sink, every_transactions=CADENCE)
    )
    second_board.restore(state)
    second_board.replay_words(words[half:])
    combined = [
        encode_record(r) for r in first_sink.records + second_sink.records
    ]
    straight_lines = [encode_record(r) for r in straight_sink.records]
    smoke.check(
        "checkpoint/restore mid-series continues the identical stream",
        combined == straight_lines and len(combined) > 0,
        f"{len(combined)} vs {len(straight_lines)} records",
    )
    smoke.check(
        "restored run lands on the straight run's statistics",
        second_board.statistics() == straight.statistics(),
    )

    return smoke.finish()


if __name__ == "__main__":
    sys.exit(main())
