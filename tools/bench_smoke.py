#!/usr/bin/env python
"""CI smoke gate for the batched replay engine (repro.memories.batch).

Runs the replay throughput benchmark at CI scale and enforces the hard
contract — **scalar, batched and sharded replay must produce bit-identical
board statistics** — plus a loose sanity floor on the batched speedup
(CI machines are noisy, so the strict >= 3x bar lives in
``benchmarks/bench_replay_throughput.py``; here the speedup merely has to
be > 1x to prove the fast path engaged at all).  The full report is
written to ``BENCH_replay.json`` for the artifact upload.

Exit status is non-zero on any violation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from _smoke import SmokeChecks

from repro.experiments.replay_bench import run_replay_benchmark

RECORDS = 60_000
SEED = 2000
SHARDS = 2


def main() -> int:
    smoke = SmokeChecks("bench")
    report = run_replay_benchmark(
        RECORDS, seed=SEED, shards=SHARDS, sharded_processes=True
    )
    for name, entry in report["engines"].items():
        print(
            f"{name:8s}: {entry['records_per_second']:12,.0f} records/s "
            f"digest {entry['statistics_digest'][:16]}…"
        )
    smoke.check(
        "scalar, batched and sharded statistics bit-identical",
        report["identical"],
        ", ".join(
            f"{name}={entry['statistics_digest'][:12]}"
            for name, entry in report["engines"].items()
        ),
    )
    smoke.check(
        "batched path faster than scalar",
        report["batched_speedup"] > 1.0,
        f"{report['batched_speedup']:.2f}x",
    )
    out = Path(__file__).resolve().parent.parent / "BENCH_replay.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return smoke.finish()


if __name__ == "__main__":
    sys.exit(main())
