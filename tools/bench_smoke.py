#!/usr/bin/env python
"""CI smoke gate for the fast replay engines (batched + compiled).

Runs the replay throughput benchmark at CI scale and enforces the hard
contract — **scalar, batched, compiled and sharded replay must produce
bit-identical board statistics** — plus throughput floors:

* batched merely has to beat scalar (> 1x) to prove the fast path
  engaged; the strict >= 3x bar lives in
  ``benchmarks/bench_replay_throughput.py``;
* compiled is gated at >= 10x scalar when numba backs the kernel, and
  at >= the batched speedup when running on the pure-Python fallback
  (the compiled engine must never be a regression over the engine it
  outranks).

Timings are best-of-``REPEATS`` with every raw sample recorded in
``BENCH_replay.json`` (a single-shot number once drifted the recorded
batched speedup from ~4x to 3.59x by scheduler noise alone), and the
report is written for the artifact upload.

Exit status is non-zero on any violation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from _smoke import SmokeChecks

from repro.experiments.replay_bench import run_replay_benchmark

RECORDS = 60_000
SEED = 2000
SHARDS = 2
REPEATS = 3


def main() -> int:
    smoke = SmokeChecks("bench")
    report = run_replay_benchmark(
        RECORDS, seed=SEED, shards=SHARDS, sharded_processes=True,
        repeats=REPEATS,
    )
    for name, entry in report["engines"].items():
        spread = max(entry["seconds_all"]) - min(entry["seconds_all"])
        print(
            f"{name:8s}: {entry['records_per_second']:12,.0f} records/s "
            f"(best of {report['repeats']}, spread {spread:.3f}s) "
            f"digest {entry['statistics_digest'][:16]}…"
        )
    smoke.check(
        "scalar, batched, compiled and sharded statistics bit-identical",
        report["identical"],
        ", ".join(
            f"{name}={entry['statistics_digest'][:12]}"
            for name, entry in report["engines"].items()
        ),
    )
    smoke.check(
        "batched path faster than scalar",
        report["batched_speedup"] > 1.0,
        f"{report['batched_speedup']:.2f}x",
    )
    if report["numba"]:
        smoke.check(
            "compiled kernels >= 10x scalar (numba present)",
            report["compiled_speedup"] >= 10.0,
            f"{report['compiled_speedup']:.2f}x",
        )
    else:
        smoke.check(
            "compiled fallback >= batched speedup (no numba)",
            report["compiled_speedup"] >= report["batched_speedup"],
            f"compiled {report['compiled_speedup']:.2f}x vs "
            f"batched {report['batched_speedup']:.2f}x",
        )
    out = Path(__file__).resolve().parent.parent / "BENCH_replay.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    return smoke.finish()


if __name__ == "__main__":
    sys.exit(main())
