#!/usr/bin/env python
"""CI smoke for the run-forensics layer (repro.obs).

Boots a real service on a loopback port, runs two concurrent sessions —
one chaos-killed mid-run — and asserts the observability contract the
flight recorder promises:

* the killed, retried, multi-worker session leaves a *single connected
  span tree*: one trace ID shared by the service, supervisor and every
  worker incarnation, every ``parent_id`` resolved;
* ``obs timeline`` reconstruction is byte-identical across invocations
  on the same run directory, in every format;
* the ``/metrics`` scrape carries the latency histogram families and
  per-tenant usage counters, and the per-session
  ``/sessions/<id>/metrics`` page parses;
* the Chrome trace-event rendering is valid JSON (uploaded as a CI
  artifact for chrome://tracing / Perfetto).
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
from pathlib import Path

from _smoke import SmokeChecks

from repro.faults import ServiceChaosPlan
from repro.memories.config import CacheNodeConfig
from repro.obs import (
    FORMATS,
    build_timeline,
    render_timeline,
    session_records,
    validate_session_trace,
)
from repro.service import (
    EmulationService,
    ServiceClient,
    ServiceConfig,
    ServiceServer,
)
from repro.supervisor import SupervisedRunSpec
from repro.target.configs import single_node_machine
from repro.telemetry.prom import parse_exposition

RECORDS = 3000
CFG = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)
ARTIFACT = Path("OBS_timeline.json")


def spec(seed: int) -> SupervisedRunSpec:
    return SupervisedRunSpec(
        machine=single_node_machine(CFG, n_cpus=4),
        seed=seed,
        segment_records=500,
        heartbeat_every=500,
    )


def submission(seed: int, label: str, tenant: str) -> dict:
    return {
        "run_spec": spec(seed).to_dict(),
        "trace": {
            "kind": "synthetic", "records": RECORDS, "seed": seed,
            "n_lines": 512,
        },
        "label": label,
        "tenant": tenant,
    }


async def drive(root: Path) -> dict:
    """Run the two sessions; scrape everything the checks need."""
    service = EmulationService(
        root,
        ServiceConfig(max_workers=2),
        chaos=ServiceChaosPlan(kill_worker={"victim": 900}),
    )
    server = ServiceServer(service)
    await server.start()
    client = ServiceClient(server.host, server.port)

    victim = await client.submit(submission(101, "victim", "acme"))
    steady = await client.submit(submission(202, "steady", "globex"))
    views = {
        victim: await client.wait(victim, timeout=120),
        steady: await client.wait(steady, timeout=120),
    }
    metrics_page = await client.metrics()
    session_status, session_page = await client.request(
        "GET", f"/sessions/{victim}/metrics"
    )
    missing_status, missing_page = await client.request(
        "GET", "/sessions/no-such/metrics"
    )
    await server.stop(drain=True)
    return {
        "victim": victim,
        "steady": steady,
        "views": views,
        "metrics_page": metrics_page,
        "session_status": session_status,
        "session_page": session_page.decode("utf-8"),
        "missing_status": missing_status,
        "missing_page": missing_page.decode("utf-8"),
    }


def main() -> int:
    smoke = SmokeChecks("obs")
    with tempfile.TemporaryDirectory(prefix="obs-smoke-") as tmp:
        root = Path(tmp) / "svc"
        seen = asyncio.run(drive(root))
        victim, steady = seen["victim"], seen["steady"]

        for session_id, label in ((victim, "victim"), (steady, "steady")):
            smoke.check(
                f"{label} session completed",
                seen["views"][session_id].get("state") == "completed",
                str(seen["views"][session_id]),
            )
        smoke.check(
            "chaos victim restarted exactly once",
            seen["views"][victim].get("restarts") == 1,
            str(seen["views"][victim]),
        )

        # -- the span-tree contract on the killed session --------------- #
        run_dir = root / "runs" / victim
        try:
            tree = validate_session_trace(
                session_records(run_dir),
                trace_id=seen["views"][victim].get("trace_id"),
            )
            summary = tree.summary()
        except Exception as error:  # noqa: BLE001 - smoke reports, not raises
            smoke.check("span tree validates", False, repr(error))
            summary = {"connected": False, "roots": [], "spans": 0}
        smoke.check(
            "killed session leaves one connected span tree",
            summary["connected"] and len(summary["roots"]) == 1,
            str(summary),
        )
        prefixes = {
            span_id.split(":", 1)[0].split("-")[0]
            for span_id in getattr(tree, "nodes", {})
        }
        smoke.check(
            "trace spans service, supervisor and workers",
            {"service", "supervisor", "worker"} <= prefixes,
            str(sorted(prefixes)),
        )

        # -- byte-identical reconstruction ------------------------------ #
        for session_id, label in ((victim, "victim"), (steady, "steady")):
            session_dir = root / "runs" / session_id
            stable = all(
                render_timeline(build_timeline(session_dir), fmt)
                == render_timeline(build_timeline(session_dir), fmt)
                for fmt in FORMATS
            )
            smoke.check(
                f"{label} timeline byte-identical in all formats", stable
            )

        # -- scrape pages ----------------------------------------------- #
        metrics = parse_exposition(seen["metrics_page"])
        smoke.check(
            "service scrape carries latency histogram families",
            any(
                name == "memories_latency_seconds_bucket"
                for name, _ in metrics
            ),
            str(sorted({name for name, _ in metrics})[:10]),
        )
        smoke.check(
            "service scrape meters both tenants",
            {
                dict(labels).get("tenant")
                for name, labels in metrics
                if name == "memories_service_tenant_usage_total"
            } >= {"acme", "globex"},
        )
        session_metrics = parse_exposition(seen["session_page"])
        smoke.check(
            "per-session metrics page parses",
            seen["session_status"] == 200 and len(session_metrics) > 0,
            seen["session_page"][:200],
        )
        missing = json.loads(seen["missing_page"])
        smoke.check(
            "unknown session gets a structured 404",
            seen["missing_status"] == 404
            and missing.get("error", {}).get("reason") == "unknown-session",
            seen["missing_page"],
        )

        # -- viewer artifact -------------------------------------------- #
        page = render_timeline(build_timeline(run_dir), "trace-event")
        events = json.loads(page)["traceEvents"]
        ARTIFACT.write_text(page)
        smoke.check(
            "trace-event artifact is valid and non-empty",
            bool(events) and all(e["ph"] in ("X", "i") for e in events),
            f"{len(events)} event(s)",
        )
        print(f"wrote {ARTIFACT}")
    return smoke.finish()


if __name__ == "__main__":
    sys.exit(main())
