"""Authoring and measuring a custom coherence protocol (MOSI).

Section 3.2's programmable-table design exists so designers can try
protocols the firmware does not ship.  This example authors MOSI (MESI
without Exclusive, with Owned), saves it as a map file, uploads it to the
node controllers through the console, and compares its intervention traffic
against the built-in MSI / MESI / MOESI on the same captured trace.

See docs/protocols.md for the table vocabulary.

Run:  python examples/custom_protocol.py
"""

from repro.experiments.params import ExperimentScale
from repro.experiments.pipeline import capture_records
from repro.memories.console import MemoriesConsole
from repro.memories.protocol_table import (
    CacheOp as Op,
    FillRules,
    LineState as S,
    ProtocolTable,
    Transition as T,
    load_protocol,
)
from repro.target.configs import split_smp_machine
from repro.workloads.tpcc import TpccWorkload

SCALE = ExperimentScale(scale=2048)
RECORDS = 80_000


def author_mosi() -> ProtocolTable:
    """MESI minus Exclusive, plus Owned (dirty sharing without write-back)."""
    transitions = {
        (Op.LOCAL_READ, S.SHARED): T(S.SHARED, True),
        (Op.LOCAL_READ, S.MODIFIED): T(S.MODIFIED, True),
        (Op.LOCAL_READ, S.OWNED): T(S.OWNED, True),
        (Op.LOCAL_WRITE, S.SHARED): T(S.MODIFIED, True),
        (Op.LOCAL_WRITE, S.MODIFIED): T(S.MODIFIED, True),
        (Op.LOCAL_WRITE, S.OWNED): T(S.MODIFIED, True),
        (Op.LOCAL_CASTOUT, S.SHARED): T(S.MODIFIED, True),
        (Op.LOCAL_CASTOUT, S.MODIFIED): T(S.MODIFIED, True),
        (Op.LOCAL_CASTOUT, S.OWNED): T(S.MODIFIED, True),
        (Op.REMOTE_READ, S.SHARED): T(S.SHARED, False),
        (Op.REMOTE_READ, S.MODIFIED): T(S.OWNED, True),
        (Op.REMOTE_READ, S.OWNED): T(S.OWNED, True),
        (Op.REMOTE_WRITE, S.SHARED): T(S.INVALID, False),
        (Op.REMOTE_WRITE, S.MODIFIED): T(S.INVALID, True),
        (Op.REMOTE_WRITE, S.OWNED): T(S.INVALID, True),
    }
    fill = FillRules(read_shared=S.SHARED, read_alone=S.SHARED, write=S.MODIFIED)
    return ProtocolTable("mosi", (S.SHARED, S.MODIFIED, S.OWNED), transitions, fill)


def measure(table: ProtocolTable, trace) -> dict:
    console = MemoriesConsole()
    machine = split_smp_machine(
        SCALE.cache("64MB"), n_cpus=8, procs_per_node=4
    )
    board = console.power_up(machine, enforce_envelope=False)
    for node_index in range(len(machine.nodes)):
        console.load_protocol_map(node_index, table)
    board.replay(trace)
    nodes = board.firmware.nodes
    refs = sum(node.references() for node in nodes)
    return {
        "miss_ratio": sum(node.misses() for node in nodes) / refs,
        "dirty_supplied": sum(
            node.counters.read("remote.supplied_dirty") for node in nodes
        ),
        "invalidations": sum(
            node.counters.read("remote.invalidated") for node in nodes
        ),
    }


def main() -> None:
    mosi = author_mosi()
    mosi.save("/tmp/mosi.map.json")
    reloaded = ProtocolTable.load("/tmp/mosi.map.json")
    print(f"authored {reloaded.name!r}: {len(reloaded.raw_table())} transitions, "
          f"states {[s.name for s in reloaded.states]}")

    workload = TpccWorkload(
        db_bytes=SCALE.scaled_bytes("150GB"),
        n_cpus=8,
        private_bytes=SCALE.scaled_bytes("8MB"),
        p_private=0.05,
        zipf_exponent=1.3,
        seed=2,
    )
    trace = capture_records(workload, RECORDS, SCALE.host())

    print(f"\n{'protocol':8s} {'miss ratio':>10s} {'dirty supplied':>15s} "
          f"{'invalidations':>14s}")
    for table in (load_protocol("msi"), load_protocol("mesi"),
                  load_protocol("moesi"), reloaded):
        metrics = measure(table, trace)
        print(
            f"{table.name:8s} {metrics['miss_ratio']:>10.4f} "
            f"{metrics['dirty_supplied']:>15d} {metrics['invalidations']:>14d}"
        )
    print(
        "\nMOSI behaves like MOESI for dirty sharing (Owned keeps supplying)"
        "\nwhile filling reads Shared like MSI — exactly the kind of design-"
        "\nspace point the programmable tables were built to measure."
    )


if __name__ == "__main__":
    main()
