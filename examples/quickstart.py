"""Quickstart: plug a MemorIES board into a host SMP and read statistics.

This is the paper's Figure 2 in five steps: build the host machine, program
a board through the console, plug it into the 6xx bus, run a workload in
"real time", and extract the cache statistics — all without slowing the
(modeled) host down, because the board is a passive monitor.

Run:  python examples/quickstart.py
"""

from repro import (
    CacheNodeConfig,
    HostConfig,
    HostSMP,
    MemoriesConsole,
    single_node_machine,
)
from repro.workloads.tpcc import TpccWorkload

# Scale: everything (database, caches) divided by 1024 versus the paper.
SCALE = 1024


def main() -> None:
    # 1. The host: an S7A-class SMP with 8 CPUs and scaled 8 MB 4-way L2s.
    host = HostSMP(
        HostConfig(n_cpus=8, l2_size=8 * 2**20 // SCALE, l2_assoc=4)
    )

    # 2. Program a board: one emulated 64 MB L3 shared by all 8 CPUs.
    console = MemoriesConsole()
    l3 = CacheNodeConfig(
        size=64 * 2**20 // SCALE, assoc=4, line_size=128, name="64MB L3"
    )
    # enforce_envelope=False because the scaled 64 KB cache sits below the
    # real board's 2 MB minimum on purpose.
    board = console.power_up(
        single_node_machine(l3, n_cpus=8), enforce_envelope=False
    )

    # 3. Run the power-on diagnostic, then plug the board into the bus.
    print(console.execute("self-test"))
    print()
    host.plug_in(board)

    # 4. Run a scaled TPC-C workload.
    workload = TpccWorkload(
        db_bytes=150 * 2**30 // SCALE, n_cpus=8, private_bytes=8 * 2**20 // SCALE
    )
    host.run(workload.chunks(300_000), max_references=300_000)

    # 5. Read the statistics off the board.
    print(console.report())
    print()
    print(f"host L2 miss ratio : {host.aggregate_miss_ratio():.3f}")
    print(f"emulated L3 miss ratio : {console.miss_ratios()[0]:.3f}")
    print(f"bus utilization : {host.bus.stats.utilization:.1%}")
    print(f"board posted retries : {board.retries_posted} (passive, as designed)")


if __name__ == "__main__":
    main()
