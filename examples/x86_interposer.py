"""Measuring a foreign-bus host through the interposer card.

Section 3: the board can "connect to an interposer card to take
measurements from systems with a different bus architecture, such as an
Intel X86 platform ... changing the command map file if the protocol is
similar."  This example synthesises a P6-front-side-bus transaction stream,
converts it through the built-in x86 command map (saving and reloading the
map file on the way, as the console would), and reads cache statistics off
an unmodified MemorIES board.

Run:  python examples/x86_interposer.py
"""

import numpy as np

from repro.bus.interposer import CommandMap, ForeignCommand, InterposerCard
from repro.experiments.params import ExperimentScale
from repro.memories.board import board_for_machine
from repro.target.configs import single_node_machine

SCALE = ExperimentScale(scale=1024)
N_TRANSACTIONS = 120_000


def synthesize_fsb_traffic(n, seed=0):
    """A plausible P6 FSB mix: line fills, RFOs, write-backs, some I/O."""
    rng = np.random.default_rng(seed)
    commands = rng.choice(
        [
            ForeignCommand.BRL,
            ForeignCommand.BRIL,
            ForeignCommand.BWL,
            ForeignCommand.BIL,
            ForeignCommand.IO_IN,
            ForeignCommand.IO_OUT,
        ],
        size=n,
        p=[0.58, 0.17, 0.12, 0.05, 0.04, 0.04],
    )
    # Zipf-hot lines over a 32 MB (scaled) working set.
    lines = rng.zipf(1.2, size=n) % (SCALE.scaled_bytes("32GB") // 128)
    agents = rng.integers(8, 12, size=n)  # P6 agents number from 8
    return agents, commands, lines * 128


def main() -> None:
    board = board_for_machine(
        single_node_machine(SCALE.cache("64MB"), n_cpus=4)
    )
    # The console would upload the command map from disk; do the same.
    from repro.bus.interposer import x86_command_map

    x86_command_map().save("/tmp/x86.map.json")
    card = InterposerCard(
        board,
        command_map=CommandMap.load("/tmp/x86.map.json"),
        agent_map={8: 0, 9: 1, 10: 2, 11: 3},  # FSB agents -> board CPU IDs
    )

    agents, commands, addresses = synthesize_fsb_traffic(N_TRANSACTIONS)
    for agent, command, address in zip(agents, commands, addresses):
        card.observe_foreign(int(agent), ForeignCommand(command), int(address))

    print("interposer:", card.snapshot())
    node = board.firmware.nodes[0]
    print(
        f"emulated 64MB L3 behind an x86 host: miss ratio "
        f"{node.miss_ratio():.3f} over {node.references():,} references"
    )
    stats = board.statistics()
    print(
        "board filtered the converted I/O tenures:",
        stats["filter.io"], "of", stats["filter.observed"],
    )


if __name__ == "__main__":
    main()
