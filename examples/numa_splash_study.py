"""NUMA study: where do L2 misses get their data? (Figure 12 workflow)

Partitions the 8-CPU host into emulated 2x4 and 4x2 NUMA targets, runs two
SPLASH2 kernels with opposite sharing personalities (FFT: partitioned;
FMM: heavy shared read-modify-write), and prints the satisfied-from
breakdown the paper uses to argue when tertiary caches help and when fast
cache-to-cache transfer matters more.

Run:  python examples/numa_splash_study.py
"""

from repro import CacheNodeConfig, board_for_machine, split_smp_machine
from repro.analysis.report import render_breakdown
from repro.experiments.params import ExperimentScale
from repro.experiments.pipeline import capture_records
from repro.workloads.splash import FftWorkload, FmmWorkload

SCALE = ExperimentScale(scale=4096)
RECORDS = 80_000
CATEGORIES = ("memory", "l3", "mod_int", "shr_int")


def breakdown_for(workload_name, workload) -> None:
    trace = capture_records(workload, RECORDS, SCALE.host())
    l3 = CacheNodeConfig(
        size=SCALE.scaled_bytes("64MB"), assoc=4, line_size=256, procs_per_node=4
    )
    columns, values = [], []
    for procs_per_node in (4, 2):
        machine = split_smp_machine(
            l3, n_cpus=8, procs_per_node=procs_per_node,
            name=f"{8 // procs_per_node}x{procs_per_node}",
        )
        board = board_for_machine(trace_machine := machine)
        board.replay(trace)
        totals = {c: 0 for c in CATEGORIES}
        for node in board.firmware.nodes:
            for category in CATEGORIES:
                totals[category] += node.counters.read(f"satisfied.{category}")
        total = sum(totals.values()) or 1
        columns.append(trace_machine.name)
        values.append([totals[c] / total for c in CATEGORIES])
    print(
        render_breakdown(
            CATEGORIES, columns, values,
            title=f"{workload_name}: where an L2 miss is satisfied",
        )
    )
    print()


def main() -> None:
    print("running FFT (partitioned, little sharing)...")
    breakdown_for("FFT", FftWorkload.paper_scale(SCALE.scale, seed=1))
    print("running FMM (shared multipole cells, heavy sharing)...")
    breakdown_for("FMM", FmmWorkload.paper_scale(SCALE.scale, seed=1))
    print(
        "FMM's intervention share dwarfs FFT's: FMM-like applications gain\n"
        "from efficient cache-to-cache transfers, while FFT-like ones call\n"
        "for careful NUMA data placement and tertiary caches (Section 5.3)."
    )


if __name__ == "__main__":
    main()
