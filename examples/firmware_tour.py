"""Tour of the alternate firmware images and programmable protocol tables.

Section 2.3 of the paper lists what the board becomes with different FPGA
firmware: a hot-spot profiler, a trace collector, a NUMA sparse-directory
emulator, and a remote-cache emulator.  Section 3.2 adds loadable coherence
protocol tables.  This example exercises all five on one workload.

Run:  python examples/firmware_tour.py
"""

from repro import CacheNodeConfig, MemoriesBoard
from repro.experiments.params import ExperimentScale
from repro.experiments.pipeline import capture_records
from repro.memories.board import board_for_machine
from repro.memories.console import MemoriesConsole
from repro.memories.firmware import (
    HotSpotFirmware,
    NumaDirectoryFirmware,
    RemoteCacheFirmware,
    TraceCollectorFirmware,
)
from repro.memories.protocol_table import ProtocolTable, load_protocol
from repro.target.configs import single_node_machine
from repro.workloads.tpcc import TpccWorkload

SCALE = ExperimentScale(scale=4096)
RECORDS = 60_000


def main() -> None:
    workload = TpccWorkload(
        db_bytes=SCALE.scaled_bytes("150GB"), n_cpus=8,
        private_bytes=SCALE.scaled_bytes("8MB"),
    )
    print("capturing a reference trace (trace-collector firmware)...")
    trace = capture_records(workload, RECORDS, SCALE.host())
    print(f"  captured {len(trace):,} 8-byte records\n")

    # --- hot-spot profiling firmware --------------------------------- #
    hotspot = HotSpotFirmware(granularity_bytes=4096)
    MemoriesBoard(hotspot).replay(trace)
    print("hot-spot firmware: five hottest pages")
    for region, count in hotspot.hottest(5):
        print(f"  page {region:#8x}  {count:6d} touches")
    print()

    # --- NUMA sparse-directory firmware ------------------------------ #
    numa = NumaDirectoryFirmware(
        l3_config=SCALE.cache("64MB"),
        cpu_nodes=[0, 0, 1, 1, 2, 2, 3, 3],
        sparse_entries=2048,
    )
    MemoriesBoard(numa).replay(trace)
    print("NUMA sparse-directory firmware:")
    print(f"  remote-access fraction : {numa.remote_access_fraction():.1%}")
    print(f"  sparse evictions       : {numa.counters.read('sparse.evictions')}")
    print(f"  invalidations sent     : {numa.counters.read('invalidations.sent')}\n")

    # --- remote-cache firmware ---------------------------------------- #
    remote = RemoteCacheFirmware(
        l3_config=SCALE.cache("16MB"),
        remote_config=SCALE.cache("64MB"),
        cpu_nodes=[0, 0, 1, 1, 2, 2, 3, 3],
    )
    MemoriesBoard(remote).replay(trace)
    print("remote-cache firmware:")
    print(f"  remote references      : {remote.counters.read('remote.references')}")
    print(f"  remote-cache hit ratio : {remote.remote_hit_ratio():.1%}\n")

    # --- programmable protocol tables --------------------------------- #
    # Protocols differ in how nodes treat each other's traffic, so compare
    # them on a 2-node split target (single-node emulation has no remote
    # operations and all protocols coincide).
    print("protocol tables on a 2-node split target:")
    console = MemoriesConsole()
    from repro.target.configs import split_smp_machine

    for name in ("msi", "mesi", "moesi"):
        board = console.power_up(
            split_smp_machine(SCALE.cache("64MB"), n_cpus=8, procs_per_node=4),
            enforce_envelope=False,  # scaled config below the 2 MB minimum
        )
        for node_index in range(2):
            console.load_protocol_map(node_index, load_protocol(name))
        board.replay(trace)
        nodes = board.firmware.nodes
        misses = sum(n.misses() for n in nodes)
        refs = sum(n.references() for n in nodes)
        supplied = sum(n.counters.read("remote.supplied_dirty") for n in nodes)
        print(
            f"  {name.upper():6s} miss ratio {misses / refs:.4f}, "
            f"dirty lines supplied node-to-node: {supplied}"
        )

    # Map files round-trip through disk, like console uploads to the FPGA.
    mesi = load_protocol("mesi")
    mesi.save("/tmp/mesi.map.json")
    restored = ProtocolTable.load("/tmp/mesi.map.json")
    print(f"\nmap file round-trip: reloaded protocol {restored.name!r} "
          f"with {len(restored.raw_table())} transitions")


if __name__ == "__main__":
    main()
