"""Live monitoring: watch a long run's statistics converge while it runs.

The paper's board is pitched at multi-day, real-time monitoring — which
means reading the 40-bit counters out *periodically*, not once at the
end.  This example instruments a board with the telemetry sampler
(repro.telemetry), polls the console ``watch`` dashboard mid-run the way
an operator would, and finishes by exporting the recorded time series as
JSONL and as a Prometheus text-exposition page with wrap-corrected
counter totals.

Run:  python examples/live_monitoring.py
"""

from repro import (
    CacheNodeConfig,
    CounterSampler,
    HostConfig,
    HostSMP,
    MemorySink,
    MemoriesConsole,
    RunTrace,
    TelemetrySeries,
    single_node_machine,
)
from repro.telemetry import series_exposition
from repro.workloads.tpcc import TpccWorkload

# Scale: everything (database, caches) divided by 1024 versus the paper.
SCALE = 1024
CHUNKS = 6
REFERENCES_PER_CHUNK = 50_000


def main() -> None:
    # 1. Host + board, as in quickstart.
    host = HostSMP(
        HostConfig(n_cpus=8, l2_size=8 * 2**20 // SCALE, l2_assoc=4)
    )
    console = MemoriesConsole()
    l3 = CacheNodeConfig(
        size=64 * 2**20 // SCALE, assoc=4, line_size=128, name="64MB L3"
    )
    board = console.power_up(
        single_node_machine(l3, n_cpus=8), enforce_envelope=False
    )
    host.plug_in(board)

    # 2. Attach the sampler: one delta record per 2048 observed tenures,
    #    kept in memory, plus a run trace timing each workload phase.
    sink = MemorySink()
    board.attach_telemetry(
        CounterSampler(sink, every_transactions=2048, label=board.name),
        RunTrace(sink, label="monitoring"),
    )

    # 3. Run the workload in slices, polling the dashboard between them —
    #    exactly what the console's interactive `watch` command does.
    workload = TpccWorkload(
        db_bytes=150 * 2**30 // SCALE,
        n_cpus=8,
        private_bytes=8 * 2**20 // SCALE,
    )
    # Chunk size matches the phase length, so each watch frame sits
    # between exactly one phase's worth of traffic.
    chunks = workload.chunks(
        CHUNKS * REFERENCES_PER_CHUNK, REFERENCES_PER_CHUNK
    )
    run_trace = board.run_trace
    for phase, chunk in enumerate(chunks):
        with run_trace.span("phase", index=phase):
            host.run([chunk])
        print(console.watch())
        print()

    # 4. Final flush, then analyse the full series offline.
    board.telemetry.finish(board)
    series = TelemetrySeries(sink.records)
    print("=== final series summary ===")
    print(series.summary())
    ratios = series.window_series("node0.miss_ratio")
    if ratios:
        print(
            f"windowed miss ratio: first {ratios[0]:.4f} -> "
            f"last {ratios[-1]:.4f} over {len(ratios)} windows"
        )
    print()
    print("=== prometheus exposition (first lines) ===")
    for line in series_exposition(series.records).splitlines()[:8]:
        print(line)


if __name__ == "__main__":
    main()
