"""Case Study 1 workflow: one captured trace, many cache designs.

Reproduces the paper's trace-length methodology end to end:

1. run scaled TPC-C on the host with a board in trace-collection firmware;
2. replay the captured trace through *four cache configurations at once*
   (the board's multi-configuration mode, Figure 4);
3. replay a short prefix of the same trace and watch it mispredict the
   value of large caches — the paper's headline warning about small traces.

Run:  python examples/tpcc_cache_study.py
"""

from repro import CacheNodeConfig, board_for_machine, multi_config_machine
from repro.analysis.report import render_series
from repro.analysis.stats import MissCurve
from repro.experiments.params import ExperimentScale
from repro.experiments.pipeline import capture_records
from repro.workloads.tpcc import TpccWorkload

SCALE = ExperimentScale(scale=8192)
L3_SIZES = ["16MB", "64MB", "256MB", "1GB"]
LONG_RECORDS = 150_000
SHORT_RECORDS = 2_500


def sweep(trace, label) -> MissCurve:
    configs = [SCALE.cache(size) for size in L3_SIZES]
    board = board_for_machine(multi_config_machine(configs, n_cpus=8))
    board.replay(trace)
    curve = MissCurve(name=label)
    for size, node in zip(L3_SIZES, board.firmware.nodes):
        curve.add(node.config.size, node.miss_ratio(), label=size)
    return curve


def main() -> None:
    workload = TpccWorkload(
        db_bytes=SCALE.scaled_bytes("150GB"),
        n_cpus=8,
        private_bytes=SCALE.scaled_bytes("64MB"),
        zipf_exponent=1.05,
    )
    print(f"capturing {LONG_RECORDS:,} bus records (scaled TPC-C)...")
    long_trace = capture_records(workload, LONG_RECORDS, SCALE.host())
    short_trace = long_trace.head(SHORT_RECORDS)

    curves = [
        sweep(long_trace, f"long trace ({LONG_RECORDS // 1000}k records)"),
        sweep(short_trace, f"short trace ({SHORT_RECORDS / 1000:.1f}k records)"),
    ]
    print()
    print(
        render_series(
            curves,
            title="TPC-C L3 miss ratio vs cache size (sizes at paper scale)",
            x_header="L3 size",
        )
    )
    long_ys, short_ys = curves[0].ys(), curves[1].ys()
    print()
    print(
        "at the largest cache the short trace overestimates the miss ratio "
        f"by {(short_ys[-1] - long_ys[-1]) * 100:.1f} points — "
        "the Section 5.1 effect: short traces are cold-miss dominated."
    )


if __name__ == "__main__":
    main()
