"""Case Study 2: finding an OS bug in a long miss-ratio profile.

The paper's TPC-C runs showed miss-ratio spikes every ~5 minutes at *every*
cache size — a signature no conventional-length trace would reveal, later
traced to a file-system journaling bug.  This example injects that bug with
the fault overlay, profiles a long run against two very different cache
configurations at once, and detects the periodicity.

Run:  python examples/os_performance_debugging.py
"""

from repro import board_for_machine, multi_config_machine
from repro.analysis.profiles import profile_replay
from repro.experiments.params import ExperimentScale
from repro.experiments.pipeline import capture_records
from repro.workloads.osjournal import JournalBugOverlay
from repro.workloads.tpcc import TpccWorkload

SCALE = ExperimentScale(scale=1024)
TOTAL_RECORDS = 200_000
PERIOD_REFS = 30_000      # the "5 minutes" of the scaled run
BURST_REFS = 1_200        # journal writes per flush


def main() -> None:
    base = TpccWorkload(
        db_bytes=SCALE.scaled_bytes("150GB"),
        n_cpus=8,
        private_bytes=SCALE.scaled_bytes("8MB"),
        p_private=0.05,
        p_common=0.4,
        common_region_bytes=SCALE.scaled_bytes("48MB"),
        common_write_fraction=0.02,
        affine_region_bytes=SCALE.scaled_bytes("2GB"),
        zipf_exponent=1.5,
    )
    buggy = JournalBugOverlay(base, period_refs=PERIOD_REFS, burst_refs=BURST_REFS)
    print(f"capturing {TOTAL_RECORDS:,} bus records with the buggy OS...")
    trace = capture_records(buggy, TOTAL_RECORDS, SCALE.host())

    machine = multi_config_machine(
        [
            SCALE.cache("16MB", assoc=1, name="16MB direct-mapped"),
            SCALE.cache("1GB", assoc=8, name="1GB 8-way"),
        ],
        n_cpus=8,
    )
    board = board_for_machine(machine)
    profiles = profile_replay(board, trace, interval_records=2_500)

    print()
    for spec, profile in zip(machine.nodes, profiles):
        values = profile.miss_ratios
        peak = max(values)
        sketch = "".join(
            " .:-=+*#%@"[min(9, int(10 * v / peak))] for v in values
        )
        spikes = profile.spike_indices(rel_delta=0.25, skip=8)
        period = profile.spike_period(rel_delta=0.25, skip=8)
        print(f"{spec.config.name:>20s} |{sketch}|")
        print(
            f"{'':>20s}  {len(spikes)} spikes, period "
            f"{period:.1f} intervals" if period else "no periodic spikes"
        )
    print()
    print(
        "the spikes appear at the same period in BOTH cache designs — "
        "that cache-size independence is what told the authors the problem "
        "was software (OS journaling), not the memory system."
    )


if __name__ == "__main__":
    main()
