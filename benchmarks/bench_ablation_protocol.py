"""Benchmark A2: coherence protocol tables (MSI/MESI/MOESI)."""

from conftest import run_once

from repro.experiments.ablations import AblationSettings, protocol_ablation


def test_bench_ablation_protocol(benchmark):
    result = run_once(benchmark, lambda: protocol_ablation(AblationSettings.quick()))
    print()
    print(result)
    benchmark.extra_info["moesi_supplies"] = result.data["moesi"]["dirty_supplied"]
