"""Benchmark: regenerate Table 3 (C simulator vs MemorIES runtimes)."""

from conftest import run_once

from repro.experiments.table3_tracesim import Table3Settings, run


def test_bench_table3(benchmark):
    result = run_once(benchmark, lambda: run(Table3Settings.quick()))
    print()
    print(result)
    benchmark.extra_info["csim_measured_rps"] = result.data["csim_measured_rps"]
    benchmark.extra_info["board_measured_rps"] = result.data["board_measured_rps"]
