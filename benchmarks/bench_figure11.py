"""Benchmark: regenerate Figure 11 (SPLASH2 L3 size sweep)."""

from conftest import run_once

from repro.experiments.figure11_l3sweep import Figure11Settings, run
from repro.experiments.params import ExperimentScale

SETTINGS = Figure11Settings(
    scale=ExperimentScale(scale=4096),
    l3_sizes=("32MB", "128MB", "512MB", "1GB"),
    records_per_kernel=60_000,
)


def test_bench_figure11(benchmark):
    result = run_once(benchmark, lambda: run(SETTINGS))
    print()
    print(result)
    benchmark.extra_info["all_monotone"] = all(result.data["monotone"].values())
