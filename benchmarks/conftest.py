"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at benchmark
scale (smaller than the experiment defaults, same geometry) and prints the
regenerated artefact; run with ``pytest benchmarks/ --benchmark-only -s`` to
see the tables.  Key shape metrics land in ``benchmark.extra_info`` so the
saved benchmark JSON doubles as an experiment record.
"""


def run_once(benchmark, func):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
