"""Benchmarks (extensions): the four Section 2.3 firmware studies."""

from conftest import run_once

from repro.experiments.firmware_studies import (
    FirmwareStudySettings,
    hotspot_study,
    numa_directory_study,
    remote_cache_study,
    tracer_continuity_study,
)

SETTINGS = FirmwareStudySettings.quick()


def test_bench_hotspot_study(benchmark):
    result = run_once(benchmark, lambda: hotspot_study(SETTINGS))
    print()
    print(result)
    benchmark.extra_info["writes_private"] = result.data["writes_private"]


def test_bench_tracer_continuity(benchmark):
    result = run_once(benchmark, lambda: tracer_continuity_study(SETTINGS))
    print()
    print(result)
    benchmark.extra_info["analyzer_coverage"] = result.data["coverage"]


def test_bench_numa_directory_study(benchmark):
    result = run_once(benchmark, lambda: numa_directory_study(SETTINGS))
    print()
    print(result)


def test_bench_remote_cache_study(benchmark):
    result = run_once(benchmark, lambda: remote_cache_study(SETTINGS))
    print()
    print(result)
