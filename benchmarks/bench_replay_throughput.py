"""Benchmark: replay throughput — scalar vs batched vs compiled vs sharded.

The batched replay engine's acceptance bar is a >= 3x records/sec speedup
over the scalar reference path on the standard benchmark workload; the
compiled engine must reach >= 10x when numba backs its kernels and at
least match batched on the pure-Python fallback.  All four engines must
land on bit-identical board statistics.  The full report (the same shape
``tools/bench_smoke.py`` writes to ``BENCH_replay.json``) goes into
``benchmark.extra_info``.
"""

import json
from pathlib import Path

from conftest import run_once

from repro.experiments.replay_bench import run_replay_benchmark

RECORDS = 150_000
SEED = 2000
SHARDS = 4
REPEATS = 3


def test_bench_replay_throughput(benchmark):
    report = run_once(
        benchmark,
        lambda: run_replay_benchmark(
            RECORDS, seed=SEED, shards=SHARDS, repeats=REPEATS
        ),
    )
    print()
    for name, entry in report["engines"].items():
        print(
            f"{name:8s}: {entry['records_per_second']:12,.0f} records/s "
            f"({entry['seconds'] * 1e3:8.1f} ms, best of {report['repeats']})"
        )
    print(
        f"batched speedup over scalar: {report['batched_speedup']:.2f}x; "
        f"compiled: {report['compiled_speedup']:.2f}x "
        f"({'numba' if report['numba'] else 'pure-python fallback'}); "
        f"statistics identical: {report['identical']}"
    )
    out = Path(__file__).resolve().parent.parent / "BENCH_replay.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    benchmark.extra_info.update(
        {
            "records": report["records"],
            "identical": report["identical"],
            "numba": report["numba"],
            "batched_speedup": report["batched_speedup"],
            "compiled_speedup": report["compiled_speedup"],
            **{
                f"{name}_records_per_second": entry["records_per_second"]
                for name, entry in report["engines"].items()
            },
        }
    )
    assert report["identical"], "engines disagree on board statistics"
    assert report["batched_speedup"] >= 3.0, (
        f"batched replay only {report['batched_speedup']:.2f}x over scalar"
    )
    if report["numba"]:
        assert report["compiled_speedup"] >= 10.0, (
            f"compiled kernels only {report['compiled_speedup']:.2f}x over "
            f"scalar with numba present"
        )
    else:
        assert report["compiled_speedup"] >= report["batched_speedup"], (
            f"compiled fallback ({report['compiled_speedup']:.2f}x) slower "
            f"than batched ({report['batched_speedup']:.2f}x)"
        )
