"""Benchmark (extension): web-server scaling study and projection error."""

from conftest import run_once

from repro.experiments.webserver_scaling import WebScalingSettings, run


def test_bench_webserver_scaling(benchmark):
    result = run_once(benchmark, lambda: run(WebScalingSettings.quick()))
    print()
    print(result)
    benchmark.extra_info["projection_error_at_max"] = result.data["errors"][-1]
