"""Benchmark: regenerate Table 1 (simulated vs actual cache sizes)."""

from conftest import run_once

from repro.experiments.table1_survey import run


def test_bench_table1(benchmark):
    result = run_once(benchmark, run)
    print()
    print(result)
    benchmark.extra_info["gap_1999"] = result.data["gaps"][1999]
