"""Benchmark: regenerate Figure 1 (cache size growth and projection)."""

from conftest import run_once

from repro.experiments.figure1_growth import run


def test_bench_figure1(benchmark):
    result = run_once(benchmark, run)
    print()
    print(result)
    min_rate, max_rate = result.data["growth_rates"]
    benchmark.extra_info["growth_min"] = min_rate
    benchmark.extra_info["growth_max"] = max_rate
