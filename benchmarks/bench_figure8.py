"""Benchmark: regenerate Figure 8 (miss ratio vs cache size, trace lengths)."""

from conftest import run_once

from repro.experiments.figure8_tracelen import Figure8Settings, run
from repro.experiments.params import ExperimentScale

SETTINGS = Figure8Settings(
    scale=ExperimentScale(scale=8192),
    l3_sizes=("16MB", "64MB", "256MB", "1GB"),
    tpcc_long_records=120_000,
    tpcc_short_records=2_400,
    tpch_long_records=120_000,
    tpch_mid_records=70_000,
    tpch_short_records=4_000,
)


def test_bench_figure8(benchmark):
    result = run_once(benchmark, lambda: run(SETTINGS))
    print()
    print(result)
    long_curve, short_curve = result.data["tpcc"]
    benchmark.extra_info["tpcc_long_at_1GB"] = long_curve.ys()[-1]
    benchmark.extra_info["tpcc_short_at_1GB"] = short_curve.ys()[-1]
