"""Benchmark A3: replacement policies on TPC-C."""

from conftest import run_once

from repro.experiments.ablations import AblationSettings, replacement_ablation


def test_bench_ablation_replacement(benchmark):
    result = run_once(
        benchmark, lambda: replacement_ablation(AblationSettings.quick())
    )
    print()
    print(result)
    benchmark.extra_info["lru_miss_ratio"] = result.data["lru"]
