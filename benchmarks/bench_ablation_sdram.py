"""Benchmark A5: constant-rate vs banked SDRAM directory timing.

The paper's 42%-of-bus-bandwidth figure is a single constant; this ablation
replays the same TPC-C trace through a node with the constant service time
and one with the bank-level SDRAM model, comparing buffer occupancy and the
observed mean service time.
"""

from conftest import run_once

from repro.experiments.ablations import AblationSettings, sdram_ablation


def test_bench_ablation_sdram(benchmark):
    result = run_once(benchmark, lambda: sdram_ablation(AblationSettings.quick()))
    print()
    print(result)
    benchmark.extra_info["mean_service_cycles"] = result.data["banked_mean_cycles"]
