"""Benchmark A4: passive (non-inclusive) emulation error."""

from conftest import run_once

from repro.experiments.ablations import AblationSettings, inclusion_ablation


def test_bench_ablation_inclusion(benchmark):
    result = run_once(benchmark, lambda: inclusion_ablation(AblationSettings.quick()))
    print()
    print(result)
    benchmark.extra_info["error_share_64MB"] = result.data["64MB"]
