"""Benchmark: regenerate Table 2 (emulation parameter envelope sweep)."""

from conftest import run_once

from repro.experiments.table2_params import run


def test_bench_table2(benchmark):
    result = run_once(benchmark, run)
    print()
    print(result)
    benchmark.extra_info["accepted"] = result.data["accepted"]
    benchmark.extra_info["rejected"] = result.data["rejected"]
