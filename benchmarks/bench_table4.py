"""Benchmark: regenerate Table 4 (Augmint vs MemorIES, SPLASH2 FFT)."""

from conftest import run_once

from repro.experiments.table4_augmint import Table4Settings, run


def test_bench_table4(benchmark):
    result = run_once(benchmark, lambda: run(Table4Settings.quick()))
    print()
    print(result)
    benchmark.extra_info["modeled_augmint_m20_minutes"] = (
        result.data["modeled_augmint_seconds"][0] / 60
    )
