"""Benchmark: regenerate Figure 9 (sharing crossover, short vs long traces)."""

from conftest import run_once

from repro.experiments.figure9_sharing import Figure9Settings, run


def test_bench_figure9(benchmark):
    result = run_once(benchmark, lambda: run(Figure9Settings.quick()))
    print()
    print(result)
    benchmark.extra_info["crossover"] = bool(result.data["crossover"])
