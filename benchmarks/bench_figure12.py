"""Benchmark: regenerate Figure 12 (where an L2 miss is satisfied)."""

from conftest import run_once

from repro.experiments.figure12_breakdown import Figure12Settings, run
from repro.experiments.params import ExperimentScale


def test_bench_figure12(benchmark):
    settings = Figure12Settings(
        scale=ExperimentScale(scale=4096), records_per_kernel=60_000
    )
    result = run_once(benchmark, lambda: run(settings))
    print()
    print(result)
    fmm = result.data["FMM"]["2x4"]
    benchmark.extra_info["fmm_intervention_share"] = fmm["mod_int"] + fmm["shr_int"]
