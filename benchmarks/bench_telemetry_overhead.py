"""Benchmark: replay overhead of the telemetry sampler at several cadences.

The acceptance bar for observability is that a sampler pointed at the null
sink costs under 5% replay throughput at the default cadence (one sample
per 1024 transactions).  This benchmark replays the same seeded record
stream bare and instrumented and records the measured overhead ratios in
``benchmark.extra_info``.
"""

import time

import numpy as np
from conftest import run_once

from repro.bus.trace import encode_arrays
from repro.bus.transaction import BusCommand
from repro.memories.board import board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.target.configs import split_smp_machine
from repro.telemetry import (
    DEFAULT_EVERY_TRANSACTIONS,
    NULL_SINK,
    CounterSampler,
    MemorySink,
)

RECORDS = 60_000
SEED = 40000
CADENCES = (DEFAULT_EVERY_TRANSACTIONS, 256, 64)


def _machine():
    config = CacheNodeConfig(size=64 * 1024, assoc=4, line_size=128)
    return split_smp_machine(config, n_cpus=4, procs_per_node=2)


def _words() -> np.ndarray:
    rng = np.random.default_rng(SEED)
    cpus = rng.integers(0, 4, RECORDS).astype(np.uint64)
    commands = rng.choice(
        [int(BusCommand.READ), int(BusCommand.RWITM)],
        size=RECORDS,
        p=[0.8, 0.2],
    ).astype(np.uint64)
    addresses = (rng.integers(0, 2048, RECORDS) * np.uint64(128)).astype(
        np.uint64
    )
    return encode_arrays(cpus, commands, addresses)


def _time_replay(words, machine, sampler=None) -> float:
    board = board_for_machine(machine)
    if sampler is not None:
        board.attach_telemetry(sampler)
    begin = time.perf_counter()
    board.replay_words(words)
    return time.perf_counter() - begin


def test_bench_telemetry_overhead(benchmark):
    words = _words()
    machine = _machine()

    def measure():
        # Interleave bare/instrumented timings so drift hits both equally.
        bare = min(_time_replay(words, machine) for _ in range(3))
        results = {}
        for cadence in CADENCES:
            null_cost = min(
                _time_replay(
                    words,
                    machine,
                    CounterSampler(NULL_SINK, every_transactions=cadence),
                )
                for _ in range(3)
            )
            memory_cost = _time_replay(
                words,
                machine,
                CounterSampler(MemorySink(), every_transactions=cadence),
            )
            results[cadence] = {
                "null_overhead": null_cost / bare - 1.0,
                "memory_overhead": memory_cost / bare - 1.0,
            }
        return bare, results

    bare, results = run_once(benchmark, measure)
    print()
    print(f"bare replay of {RECORDS:,} records: {bare * 1e3:.1f} ms")
    for cadence, entry in results.items():
        print(
            f"cadence {cadence:5d}: null sink {entry['null_overhead']:+.2%}, "
            f"memory sink {entry['memory_overhead']:+.2%}"
        )
    benchmark.extra_info["records"] = RECORDS
    benchmark.extra_info["bare_seconds"] = bare
    for cadence, entry in results.items():
        benchmark.extra_info[f"null_overhead_at_{cadence}"] = entry[
            "null_overhead"
        ]
        benchmark.extra_info[f"memory_overhead_at_{cadence}"] = entry[
            "memory_overhead"
        ]
    # The acceptance bar: <5% at the default cadence with the null sink.
    assert results[DEFAULT_EVERY_TRANSACTIONS]["null_overhead"] < 0.05
