"""Benchmark A1: transaction-buffer depth vs retry rate under bursts."""

from conftest import run_once

from repro.experiments.ablations import AblationSettings, buffer_depth_ablation


def test_bench_ablation_buffers(benchmark):
    result = run_once(
        benchmark, lambda: buffer_depth_ablation(AblationSettings.quick())
    )
    print()
    print(result)
    benchmark.extra_info["retry_rate_512_at_42pct"] = result.data["depth512_util0.42"]
