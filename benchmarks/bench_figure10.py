"""Benchmark: regenerate Figure 10 (periodic miss-ratio spikes)."""

from conftest import run_once

from repro.experiments.figure10_profile import Figure10Settings, run


def test_bench_figure10(benchmark):
    settings = Figure10Settings(total_records=120_000, spike_periods=6)
    result = run_once(benchmark, lambda: run(settings))
    print()
    print(result)
    profile = result.data["profiles"][1]
    benchmark.extra_info["spikes_1gb"] = len(
        profile.spike_indices(rel_delta=0.25, skip=8)
    )
