"""Benchmark (extension): effect of DMA I/O on the emulated hit ratio."""

from conftest import run_once

from repro.experiments.io_effect import IoEffectSettings, run


def test_bench_io_effect(benchmark):
    result = run_once(benchmark, lambda: run(IoEffectSettings.quick()))
    print()
    print(result)
    ys = result.data["curve"].ys()
    benchmark.extra_info["miss_ratio_rise"] = ys[-1] - ys[0]
