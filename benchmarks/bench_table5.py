"""Benchmark: regenerate Table 5 (SPLASH2 application characteristics)."""

from conftest import run_once

from repro.experiments.table5_splash_char import Table5Settings, run


def test_bench_table5(benchmark):
    result = run_once(benchmark, lambda: run(Table5Settings.quick()))
    print()
    print(result)
    fft = result.data["FFT -m28 -l7"]
    benchmark.extra_info["fft_footprint_gb"] = fft["footprint_gb"]
