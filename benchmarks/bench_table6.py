"""Benchmark: regenerate Table 6 (SPLASH2 miss rates, small vs realistic)."""

from conftest import run_once

from repro.experiments.table6_missrates import Table6Settings, run


def test_bench_table6(benchmark):
    result = run_once(benchmark, lambda: run(Table6Settings.quick()))
    print()
    print(result)
    benchmark.extra_info["fmm_large"] = result.data["FMM"]["measured_large"]
