"""Host processor model.

A processor here is deliberately thin: workload generators (see
:mod:`repro.workloads`) already produce the stream of data references that
escape the L1, so the processor simply feeds that stream through its private
L2.  It additionally carries an instruction-count model so experiments can
report *misses per thousand instructions* (Table 6 of the paper) rather than
only miss ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.host.cache import SnoopingCache

#: Default data references per thousand instructions.  Typical for the
#: integer-heavy commercial and SPLASH2 codes in the paper: roughly one
#: load/store per three instructions.
DEFAULT_REFS_PER_KILO_INSTRUCTION = 330.0


@dataclass
class Processor:
    """One CPU of the host machine.

    Attributes:
        cpu_id: bus ID (0-based).
        l2: the private snooping L2 this CPU drives.
        l1: optional on-chip L1 in front of the L2 (see
            :mod:`repro.host.l1`); None means references hit the L2
            directly, the default because workload generators emit
            L1-miss streams.
        refs_per_kilo_instruction: data references the workload makes per
            1000 instructions; used to convert reference counts into
            instruction counts.
        references_issued: total references this CPU has driven.
    """

    cpu_id: int
    l2: SnoopingCache
    l1: object = None
    refs_per_kilo_instruction: float = DEFAULT_REFS_PER_KILO_INSTRUCTION
    references_issued: int = field(default=0)

    def reference(self, address: int, is_write: bool) -> bool:
        """Issue one data reference; returns True if it hit in L1 or L2."""
        self.references_issued += 1
        if self.l1 is not None:
            return self.l1.access(address, is_write)
        return self.l2.access(address, is_write)

    @property
    def instructions_executed(self) -> float:
        """Instructions implied by the references issued so far."""
        if self.refs_per_kilo_instruction <= 0:
            return 0.0
        return self.references_issued * 1000.0 / self.refs_per_kilo_instruction

    def misses_per_kilo_instruction(self) -> float:
        """L2 misses per thousand instructions (the Table 6 metric)."""
        instructions = self.instructions_executed
        if instructions == 0:
            return 0.0
        return self.l2.stats.misses * 1000.0 / instructions
