"""Model of the host machine MemorIES plugs into.

The paper's host is an 8-way IBM S7A SMP (262 MHz Northstar processors, 8 MB
per-CPU L2 caches, 100 MHz 6xx bus).  The board never sees the processors
directly — only the bus traffic their L2 misses generate — so this package
models exactly that: per-CPU write-back MESI L2 caches
(:mod:`repro.host.cache`) fed by workload reference streams
(:mod:`repro.host.processor`), a memory controller, an optional I/O bridge,
and the assembled machine (:mod:`repro.host.smp`).
"""

from repro.host.cache import CacheStats, MESIState, SnoopingCache
from repro.host.l1 import L1Cache
from repro.host.memory import MemoryController
from repro.host.processor import Processor
from repro.host.smp import HostConfig, HostSMP, IoBridge, S7A_HOST

__all__ = [
    "CacheStats",
    "HostConfig",
    "HostSMP",
    "IoBridge",
    "L1Cache",
    "MESIState",
    "MemoryController",
    "Processor",
    "S7A_HOST",
    "SnoopingCache",
]
