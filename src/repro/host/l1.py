"""Optional per-CPU L1 cache in front of the snooping L2.

The S7A's Northstar processors carry on-chip L1s; the board never sees them
(their hits stay on-chip), which is why the workload generators emit
L1-miss streams by default and the L1 model is optional.  Enable it (via
``HostConfig.l1_size``) when a workload models raw element-granular
references and the L1's filtering matters.

The model is deliberately simple and hardware-faithful where it counts:

* **write-through, no-write-allocate** — stores always reach the L2, so
  the L2's MESI dirty states (and therefore every bus castout the emulator
  sees) stay exactly as without an L1;
* **inclusion** — the L2 invalidates the L1 copy whenever it loses a line
  (eviction or snoop), as the real hierarchy does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.addr import AddressMap, is_power_of_two
from repro.common.errors import ConfigurationError
from repro.host.cache import SnoopingCache


@dataclass
class L1Stats:
    """Hit/miss counters for one L1."""

    accesses: int = 0
    hits: int = 0
    inclusion_invalidations: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_ratio(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class L1Cache:
    """Write-through, no-write-allocate L1 in front of one L2.

    Args:
        l2: the backing snooping L2; the L1 registers itself for inclusion
            callbacks.
        size: capacity in bytes.
        assoc: set associativity.
        line_size: must equal the L2's line size (hardware ties them).
    """

    def __init__(
        self,
        l2: SnoopingCache,
        size: int = 64 * 1024,
        assoc: int = 2,
        line_size: int = 128,
    ) -> None:
        if line_size != l2.line_size:
            raise ConfigurationError(
                f"L1 line size {line_size} must match the L2's {l2.line_size}"
            )
        if assoc < 1:
            raise ConfigurationError("associativity must be >= 1")
        if size % (assoc * line_size) != 0:
            raise ConfigurationError(
                f"size {size} not divisible by assoc*line ({assoc}*{line_size})"
            )
        num_sets = size // (assoc * line_size)
        if not is_power_of_two(num_sets):
            raise ConfigurationError(f"set count {num_sets} not a power of two")
        self.l2 = l2
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.amap = AddressMap(line_size=line_size, num_sets=num_sets)
        self.stats = L1Stats()
        self._tags: list[list[int]] = [[] for _ in range(num_sets)]
        l2.add_inclusion_listener(self._on_l2_loss)

    def access(self, address: int, is_write: bool) -> bool:
        """One processor reference; returns True when the L2 was skipped.

        Loads hitting the L1 never reach the L2; everything else (load
        misses, all stores) passes through.  Load misses allocate.
        """
        self.stats.accesses += 1
        set_index = self.amap.set_index(address)
        tag = self.amap.tag(address)
        tags = self._tags[set_index]
        try:
            way = tags.index(tag)
        except ValueError:
            way = -1

        if not is_write:
            if way >= 0:
                self.stats.hits += 1
                if way != 0:
                    tags.insert(0, tags.pop(way))
                return True
            self.l2.access(address, is_write=False)
            if len(tags) >= self.assoc:
                tags.pop()
            tags.insert(0, tag)
            return False

        # Write-through, no-write-allocate: the L2 sees every store; a
        # store hitting the L1 keeps the L1 copy current (it stays valid).
        if way >= 0:
            self.stats.hits += 1
            if way != 0:
                tags.insert(0, tags.pop(way))
        self.l2.access(address, is_write=True)
        return False

    def _on_l2_loss(self, line_address: int) -> None:
        """Inclusion: the L2 lost a line, so the L1 must drop its copy."""
        set_index = self.amap.set_index(line_address)
        tags = self._tags[set_index]
        try:
            way = tags.index(self.amap.tag(line_address))
        except ValueError:
            return
        tags.pop(way)
        self.stats.inclusion_invalidations += 1

    def holds(self, address: int) -> bool:
        """True when the line containing ``address`` is L1-resident."""
        set_index = self.amap.set_index(address)
        return self.amap.tag(address) in self._tags[set_index]

    def resident_lines(self) -> int:
        """Valid lines currently held."""
        return sum(len(tags) for tags in self._tags)
