"""The host's memory controller.

On the 6xx bus the memory controller is the default responder: any coherent
read not satisfied by a cache-to-cache intervention is sourced from DRAM, and
castouts sink into it.  For emulation purposes it never needs to hold data —
it only counts traffic, which the experiments use to sanity-check
where-satisfied breakdowns (reads sourced from memory = reads − modified
interventions).

The controller is attached to the bus as a *monitor* rather than a snooper,
because whether it sources a read depends on the combined snoop response,
which is only known once the response phase has completed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse


@dataclass
class MemoryController:
    """Counts the memory-side traffic of the host machine.

    Attributes:
        capacity: installed main memory in bytes (the paper's S7A has 16 GB);
            informational only.
        reads_from_memory: coherent reads the controller sourced because no
            cache supplied the data.
        writes_to_memory: castouts absorbed.
    """

    capacity: int = 16 * 1024**3
    reads_from_memory: int = 0
    writes_to_memory: int = 0

    def observe(self, txn: BusTransaction) -> SnoopResponse:
        """Observe a completed tenure and account for the data source."""
        if txn.command is BusCommand.CASTOUT:
            self.writes_to_memory += 1
        elif txn.command in (BusCommand.READ, BusCommand.RWITM):
            if txn.snoop_response is not SnoopResponse.MODIFIED:
                self.reads_from_memory += 1
        return SnoopResponse.NULL
