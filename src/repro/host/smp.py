"""Assembly of the host SMP machine.

:class:`HostSMP` wires processors, their snooping L2s, the memory controller
and optional I/O bridges onto one 6xx bus, then drives workload reference
streams through the machine.  A MemorIES board is attached to the same bus
with :meth:`HostSMP.plug_in` — exactly the physical arrangement in Figure 2
of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.bus.bus import Monitor, SystemBus
from repro.bus.trace import iter_rows
from repro.bus.transaction import BusCommand, BusTransaction
from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB
from repro.host.cache import SnoopingCache
from repro.host.memory import MemoryController
from repro.host.processor import Processor

#: Highest bus ID that denotes a processor; I/O bridges use IDs above this.
MAX_PROCESSOR_ID = 15

#: Bus ID of the (single) modeled I/O bridge.
IO_BRIDGE_ID = 16


@dataclass(frozen=True)
class HostConfig:
    """Configuration of the host machine.

    Defaults describe the paper's 8-way IBM S7A: 262 MHz Northstar-class
    processors, 8 MB 4-way set-associative L2s with 128 B lines, a 100 MHz
    6xx bus and 16 GB of memory.  The S7A allows reconfiguring the L2 at
    boot time down to 1 MB direct-mapped (Section 5), which experiments do
    by constructing a host with different ``l2_size`` / ``l2_assoc``.
    """

    n_cpus: int = 8
    cpu_hz: int = 262_000_000
    l2_size: int = 8 * MB
    l2_assoc: int = 4
    line_size: int = 128
    bus_hz: int = 100_000_000
    memory_bytes: int = 16 * GB
    #: Optional on-chip L1 in front of each L2 (0 = disabled, the default:
    #: workload generators emit L1-miss streams already; see repro.host.l1).
    l1_size: int = 0
    l1_assoc: int = 2

    def __post_init__(self) -> None:
        if not 1 <= self.n_cpus <= MAX_PROCESSOR_ID + 1:
            raise ConfigurationError(
                f"host supports 1..{MAX_PROCESSOR_ID + 1} CPUs, got {self.n_cpus}"
            )


#: The paper's host machine (Section 5).
S7A_HOST = HostConfig()


class IoBridge:
    """An I/O bridge issuing DMA and I/O-register tenures.

    The address-filter FPGA must discard I/O register tenures; DMA reads and
    writes, in contrast, are coherent-memory traffic that the emulated caches
    do see (the paper mentions measuring "the effect of I/O on hit ratio").
    """

    def __init__(self, bus: SystemBus, bus_id: int = IO_BRIDGE_ID) -> None:
        self.bus = bus
        self.bus_id = bus_id
        self.dma_reads = 0
        self.dma_writes = 0
        self.register_ops = 0

    def dma_read(self, address: int) -> None:
        """Issue a coherent DMA read."""
        self.dma_reads += 1
        self.bus.issue(BusTransaction(self.bus_id, BusCommand.READ, address))

    def dma_write(self, address: int) -> None:
        """Issue a DMA write (modeled as a castout-style write to memory)."""
        self.dma_writes += 1
        self.bus.issue(BusTransaction(self.bus_id, BusCommand.CASTOUT, address))

    def register_access(self, address: int, is_write: bool) -> None:
        """Issue an I/O register tenure (filtered by the board)."""
        self.register_ops += 1
        command = BusCommand.IO_WRITE if is_write else BusCommand.IO_READ
        self.bus.issue(BusTransaction(self.bus_id, command, address))


class HostSMP:
    """The running host machine.

    Example:
        >>> from repro.host import HostSMP, HostConfig
        >>> host = HostSMP(HostConfig(n_cpus=2, l2_size=1 << 20, l2_assoc=2))
        >>> host.processors[0].reference(0x1000, is_write=False)
        False

    Args:
        config: machine parameters; defaults to the paper's S7A.
    """

    def __init__(self, config: HostConfig = S7A_HOST) -> None:
        self.config = config
        self.bus = SystemBus(clock_hz=config.bus_hz)
        self.memory = MemoryController(capacity=config.memory_bytes)
        self.bus.attach_monitor(self.memory)
        self.processors: List[Processor] = []
        for cpu_id in range(config.n_cpus):
            l2 = SnoopingCache(
                cpu_id=cpu_id,
                bus=self.bus,
                size=config.l2_size,
                assoc=config.l2_assoc,
                line_size=config.line_size,
            )
            self.bus.attach_snooper(l2)
            l1 = None
            if config.l1_size > 0:
                from repro.host.l1 import L1Cache

                l1 = L1Cache(
                    l2,
                    size=config.l1_size,
                    assoc=config.l1_assoc,
                    line_size=config.line_size,
                )
            self.processors.append(Processor(cpu_id=cpu_id, l2=l2, l1=l1))
        self.io_bridge = IoBridge(self.bus)

    def plug_in(self, board: Monitor) -> None:
        """Plug a MemorIES board into the 6xx bus (passive monitor)."""
        self.bus.attach_monitor(board)

    def unplug(self, board: Monitor) -> None:
        """Remove a previously plugged board."""
        self.bus.detach_monitor(board)

    def run_chunk(
        self,
        cpu_ids: np.ndarray,
        addresses: np.ndarray,
        is_writes: np.ndarray,
    ) -> None:
        """Drive one chunk of references through the machine.

        Arrays must be equal length; ``cpu_ids[i]`` issues reference ``i``.
        This is the host-side hot loop; it deliberately avoids per-reference
        object allocation.
        """
        processors = self.processors
        n_cpus = len(processors)
        # Per-CPU access entry points: the L1 when configured, else the L2.
        access_of = [
            (p.l1.access if p.l1 is not None else p.l2.access) for p in processors
        ]
        for cpu_id, address, is_write in iter_rows(cpu_ids, addresses, is_writes):
            if cpu_id >= n_cpus:
                raise ConfigurationError(
                    f"workload references CPU {cpu_id} on a {n_cpus}-way host"
                )
            processors[cpu_id].references_issued += 1
            access_of[cpu_id](address, bool(is_write))

    def run(
        self,
        chunks: Iterable[Tuple[np.ndarray, np.ndarray, np.ndarray]],
        max_references: Optional[int] = None,
    ) -> int:
        """Drive a workload's chunk stream; returns references executed."""
        executed = 0
        for cpu_ids, addresses, is_writes in chunks:
            if max_references is not None:
                remaining = max_references - executed
                if remaining <= 0:
                    break
                if len(cpu_ids) > remaining:
                    cpu_ids = cpu_ids[:remaining]
                    addresses = addresses[:remaining]
                    is_writes = is_writes[:remaining]
            self.run_chunk(cpu_ids, addresses, is_writes)
            executed += len(cpu_ids)
        return executed

    # ------------------------------------------------------------------ #
    # Aggregate statistics
    # ------------------------------------------------------------------ #

    def total_references(self) -> int:
        """References issued across all CPUs."""
        return sum(p.references_issued for p in self.processors)

    def total_l2_misses(self) -> int:
        """L2 misses across all CPUs."""
        return sum(p.l2.stats.misses for p in self.processors)

    def aggregate_miss_ratio(self) -> float:
        """Machine-wide L2 miss ratio."""
        refs = self.total_references()
        if refs == 0:
            return 0.0
        return self.total_l2_misses() / refs
