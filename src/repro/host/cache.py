"""Per-CPU write-back snooping L2 cache (MESI).

Each host processor owns one of these.  Processor references that hit stay
inside the cache; misses, upgrades and dirty evictions become 6xx bus tenures
— which is all the MemorIES board ever sees.  The cache also participates in
the snoop phase of tenures issued by other masters, supplying the
``SHARED``/``MODIFIED`` responses the board uses to account for shared and
modified interventions (Figure 12 of the paper).

The implementation keeps each set as a pair of MRU-ordered parallel lists
(tags, states); for associativities up to 8 a linear scan of a small list is
faster in CPython than any fancier structure, and this is the hottest loop in
the whole reproduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.bus.bus import SystemBus
from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.addr import AddressMap, is_power_of_two
from repro.common.errors import ConfigurationError


class MESIState(enum.IntEnum):
    """MESI coherence states of a line in a host L2."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3


@dataclass
class CacheStats:
    """Counters a host L2 keeps, matching the S7A's on-chip L2 counters.

    The paper reads these (Table 6) through the processor's performance
    monitor; we expose them directly.
    """

    accesses: int = 0
    read_accesses: int = 0
    write_accesses: int = 0
    misses: int = 0
    read_misses: int = 0
    write_misses: int = 0
    upgrades: int = 0
    castouts: int = 0
    snoop_invalidations: int = 0
    interventions_supplied: int = 0

    @property
    def hits(self) -> int:
        """Accesses that did not require a bus tenure for data."""
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        """Misses per access (0.0 when no accesses yet)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class SnoopingCache:
    """One CPU's write-back, write-allocate MESI L2 cache.

    Args:
        cpu_id: bus ID used on tenures this cache issues.
        bus: the system bus; must also be registered via
            ``bus.attach_snooper(cache)`` by the machine assembly.
        size: capacity in bytes.
        assoc: set associativity (1 = direct mapped).
        line_size: line size in bytes (the S7A uses 128 B).
    """

    def __init__(
        self,
        cpu_id: int,
        bus: SystemBus,
        size: int,
        assoc: int,
        line_size: int = 128,
    ) -> None:
        if assoc < 1:
            raise ConfigurationError(f"associativity must be >= 1, got {assoc}")
        if not is_power_of_two(line_size):
            raise ConfigurationError(f"line size {line_size} not a power of two")
        if size % (assoc * line_size) != 0:
            raise ConfigurationError(
                f"size {size} not divisible by assoc*line ({assoc}*{line_size})"
            )
        num_sets = size // (assoc * line_size)
        if not is_power_of_two(num_sets):
            raise ConfigurationError(f"set count {num_sets} not a power of two")

        self.cpu_id = cpu_id
        self.bus = bus
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.amap = AddressMap(line_size=line_size, num_sets=num_sets)
        self.stats = CacheStats()
        # MRU-first parallel lists per set.
        self._tags: list[list[int]] = [[] for _ in range(num_sets)]
        self._states: list[list[int]] = [[] for _ in range(num_sets)]
        # Inclusion listeners (an L1) are told whenever a line leaves.
        self._inclusion_listeners: list = []

    def add_inclusion_listener(self, callback) -> None:
        """Register a callable(line_address) invoked when a line is lost.

        The inclusive L1 uses this to drop its copy when the L2 evicts or
        is snoop-invalidated — the back-invalidation real hardware performs.
        """
        self._inclusion_listeners.append(callback)

    def _notify_loss(self, set_index: int, tag: int) -> None:
        if self._inclusion_listeners:
            line_address = self.amap.rebuild(tag, set_index)
            for callback in self._inclusion_listeners:
                callback(line_address)

    # ------------------------------------------------------------------ #
    # Processor side
    # ------------------------------------------------------------------ #

    def access(self, address: int, is_write: bool) -> bool:
        """Process one processor reference; returns True on a hit.

        Misses allocate the line (write-allocate), issuing READ or RWITM on
        the bus; stores to Shared lines issue DCLAIM; dirty victims issue
        CASTOUT.
        """
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.write_accesses += 1
        else:
            stats.read_accesses += 1

        amap = self.amap
        set_index = amap.set_index(address)
        tag = amap.tag(address)
        tags = self._tags[set_index]
        states = self._states[set_index]

        try:
            way = tags.index(tag)
        except ValueError:
            way = -1

        if way >= 0:
            state = states[way]
            if is_write and state == MESIState.SHARED:
                # Upgrade: claim ownership without a data transfer.
                stats.upgrades += 1
                self.bus.issue(
                    BusTransaction(self.cpu_id, BusCommand.DCLAIM, address),
                    issuer=self,
                )
                states[way] = MESIState.MODIFIED
            elif is_write:
                states[way] = MESIState.MODIFIED
            # Move to MRU position.
            if way != 0:
                tags.insert(0, tags.pop(way))
                states.insert(0, states.pop(way))
            return True

        # Miss path.
        stats.misses += 1
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1

        if len(tags) >= self.assoc:
            victim_tag = tags.pop()
            victim_state = states.pop()
            self._notify_loss(set_index, victim_tag)
            if victim_state == MESIState.MODIFIED:
                stats.castouts += 1
                victim_addr = amap.rebuild(victim_tag, set_index)
                self.bus.issue(
                    BusTransaction(self.cpu_id, BusCommand.CASTOUT, victim_addr),
                    issuer=self,
                )

        if is_write:
            self.bus.issue(
                BusTransaction(self.cpu_id, BusCommand.RWITM, address), issuer=self
            )
            new_state = MESIState.MODIFIED
        else:
            completed = self.bus.issue(
                BusTransaction(self.cpu_id, BusCommand.READ, address), issuer=self
            )
            if completed.snoop_response in (SnoopResponse.SHARED, SnoopResponse.MODIFIED):
                new_state = MESIState.SHARED
            else:
                new_state = MESIState.EXCLUSIVE

        tags.insert(0, tag)
        states.insert(0, int(new_state))
        return False

    # ------------------------------------------------------------------ #
    # Bus side
    # ------------------------------------------------------------------ #

    def snoop(self, txn: BusTransaction) -> SnoopResponse:
        """Snoop another master's tenure and adjust our copy of the line."""
        command = txn.command
        if not command.is_memory:
            return SnoopResponse.NULL

        set_index = self.amap.set_index(txn.address)
        tags = self._tags[set_index]
        try:
            way = tags.index(self.amap.tag(txn.address))
        except ValueError:
            return SnoopResponse.NULL

        states = self._states[set_index]
        state = states[way]

        if command is BusCommand.CASTOUT:
            # A processor castout implies no other cache holds the line, so
            # this only fires for DMA writes — which kill cached copies
            # (the data in memory is newer than any cached version).
            self.stats.snoop_invalidations += 1
            lost_tag = tags.pop(way)
            states.pop(way)
            self._notify_loss(set_index, lost_tag)
            return SnoopResponse.NULL

        if command is BusCommand.READ:
            if state == MESIState.MODIFIED:
                # Supply dirty data (modified intervention); both keep Shared.
                self.stats.interventions_supplied += 1
                states[way] = MESIState.SHARED
                return SnoopResponse.MODIFIED
            if state == MESIState.EXCLUSIVE:
                states[way] = MESIState.SHARED
            return SnoopResponse.SHARED

        # RWITM or DCLAIM: requester takes ownership, we invalidate.
        self.stats.snoop_invalidations += 1
        response = SnoopResponse.SHARED
        if state == MESIState.MODIFIED:
            self.stats.interventions_supplied += 1
            response = SnoopResponse.MODIFIED
        lost_tag = tags.pop(way)
        states.pop(way)
        self._notify_loss(set_index, lost_tag)
        return response

    # ------------------------------------------------------------------ #
    # Introspection (tests and debugging)
    # ------------------------------------------------------------------ #

    def lookup_state(self, address: int) -> MESIState:
        """Current MESI state of the line containing ``address``."""
        set_index = self.amap.set_index(address)
        tags = self._tags[set_index]
        try:
            way = tags.index(self.amap.tag(address))
        except ValueError:
            return MESIState.INVALID
        return MESIState(self._states[set_index][way])

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(len(tags) for tags in self._tags)
