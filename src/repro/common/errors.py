"""Exception hierarchy for the MemorIES reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one type at an API boundary.  Subclasses mirror the major failure
domains: configuration validation, trace encoding, coherence-protocol table
lookups, and runtime emulation faults.
"""


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was configured outside its supported parameter range.

    Raised, for example, when a cache configuration violates the hardware
    envelope of Table 2 of the paper (size, associativity, line size or
    processors-per-node out of range), or when a target-machine mapping
    assigns a CPU to two emulated nodes.
    """


class ValidationError(ReproError, ValueError):
    """An argument value failed a structural sanity check.

    Inherits from :class:`ValueError` as well as :class:`ReproError`: the
    low-level utilities (size parsing, address geometry, buffer setup) are
    usable as a standalone toolkit where ``ValueError`` is the idiomatic
    contract, while library-level callers can still catch every repro
    failure through the single :class:`ReproError` root — the invariant
    ``repro.verify``'s repo lint enforces.
    """


class TraceFormatError(ReproError):
    """A bus-trace record or file could not be encoded or decoded."""


class ProtocolError(ReproError):
    """A coherence-protocol state table is malformed or was consulted with
    an (operation, state, snoop-response) triple it does not define."""


class ResourceError(ReproError):
    """An explicit resource budget denied the request.

    The emulation service's structured refusals — admission quotas, queue
    depth, deadlines — derive from this class so unattended callers can
    branch on "the system said no, and said why" (CLI exit code 5)
    without parsing messages.  Subclasses carry the machine-readable
    ``reason`` and the exhausted budget.
    """


class EmulationError(ReproError):
    """The emulated hardware reached a state the real board could not.

    This signals a bug in the model rather than in user input — e.g. a
    counter bank asked to decrement, or a transaction routed to a node
    controller that does not own the requesting CPU.
    """
