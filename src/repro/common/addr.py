"""Physical-address arithmetic shared by all cache and directory models.

Every cache in this reproduction — the host's L1/L2, the emulated L3 node
directories, the NUMA sparse directory, the hot-spot profiler — slices a
physical address the same way: an offset within a cache line, a set index,
and a tag.  :class:`AddressMap` captures one such slicing for a given
(line size, number of sets) pair and performs the bit manipulation in one
place, so the slicing logic is tested once.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.common.errors import ValidationError


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2 of a power of two.

    Raises:
        ValidationError: if ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValidationError(f"{value} is not a positive power of two")
    return value.bit_length() - 1


@dataclass(frozen=True)
class AddressMap:
    """Splits physical addresses into (tag, set index, line offset).

    Attributes:
        line_size: cache line size in bytes; must be a power of two.
        num_sets: number of sets in the cache; must be a power of two.
    """

    line_size: int
    num_sets: int

    def __post_init__(self) -> None:
        if not is_power_of_two(self.line_size):
            raise ValidationError(f"line size {self.line_size} is not a power of two")
        if not is_power_of_two(self.num_sets):
            raise ValidationError(f"set count {self.num_sets} is not a power of two")

    @property
    def offset_bits(self) -> int:
        """Number of address bits covered by the line offset."""
        return log2_int(self.line_size)

    @property
    def index_bits(self) -> int:
        """Number of address bits covered by the set index."""
        return log2_int(self.num_sets)

    def line_address(self, address: int) -> int:
        """The line-aligned address containing ``address``."""
        return address & ~(self.line_size - 1)

    def line_number(self, address: int) -> int:
        """Index of the cache line containing ``address`` (address >> offset)."""
        return address >> self.offset_bits

    def set_index(self, address: int) -> int:
        """Set the address maps to."""
        return (address >> self.offset_bits) & (self.num_sets - 1)

    def tag(self, address: int) -> int:
        """Tag bits of the address (everything above the set index)."""
        return address >> (self.offset_bits + self.index_bits)

    def rebuild(self, tag: int, set_index: int) -> int:
        """Reconstruct the line-aligned address from a (tag, set) pair.

        This is the inverse of :meth:`tag` / :meth:`set_index` up to line
        alignment, and is what a directory uses to name a victim line on
        eviction.
        """
        if not 0 <= set_index < self.num_sets:
            raise ValidationError(f"set index {set_index} out of range")
        return ((tag << self.index_bits) | set_index) << self.offset_bits


def align_down(address: int, granularity: int) -> int:
    """Align ``address`` down to a power-of-two ``granularity``."""
    if not is_power_of_two(granularity):
        raise ValidationError(f"granularity {granularity} is not a power of two")
    return address & ~(granularity - 1)


def page_number(address: int, page_size: int = 4096) -> int:
    """Page index of an address; used by the hot-spot profiler firmware."""
    if not is_power_of_two(page_size):
        raise ValidationError(f"page size {page_size} is not a power of two")
    return address >> log2_int(page_size)
