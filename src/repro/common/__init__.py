"""Shared primitives used by every subsystem of the MemorIES reproduction.

This package holds the pieces that are not specific to any one simulated
component: byte-size units and parsing (:mod:`repro.common.units`), physical
address arithmetic (:mod:`repro.common.addr`), the exception hierarchy
(:mod:`repro.common.errors`) and deterministic named random streams
(:mod:`repro.common.rng`).
"""

from repro.common.addr import AddressMap, is_power_of_two, log2_int
from repro.common.errors import (
    ConfigurationError,
    EmulationError,
    ProtocolError,
    ReproError,
    TraceFormatError,
)
from repro.common.units import GB, KB, MB, TB, format_size, parse_size
from repro.common.rng import RngStreams

__all__ = [
    "AddressMap",
    "ConfigurationError",
    "EmulationError",
    "GB",
    "KB",
    "MB",
    "ProtocolError",
    "ReproError",
    "RngStreams",
    "TB",
    "TraceFormatError",
    "format_size",
    "is_power_of_two",
    "log2_int",
    "parse_size",
]
