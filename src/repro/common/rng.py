"""Deterministic named random streams.

Workload generators, the random replacement policy and the fault-injection
overlay all need randomness that is (a) reproducible from a single seed and
(b) independent per consumer, so that adding a new consumer does not perturb
the streams of existing ones.  :class:`RngStreams` hands out one
:class:`numpy.random.Generator` per name, derived from a root seed via
``numpy``'s SeedSequence spawning, keyed by a stable hash of the name.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """A family of independent, reproducible random generators.

    Example:
        >>> streams = RngStreams(seed=42)
        >>> a = streams.get("tpcc.cpu0")
        >>> b = streams.get("tpcc.cpu1")
        >>> a is streams.get("tpcc.cpu0")
        True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed all streams derive from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields a generator starting from
        the same internal state, independent of creation order.
        """
        stream = self._streams.get(name)
        if stream is None:
            key = zlib.crc32(name.encode("utf-8"))
            stream = np.random.default_rng(np.random.SeedSequence([self._seed, key]))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngStreams":
        """Create a child family whose root seed depends on (seed, name).

        Used when a workload spawns per-CPU sub-generators that themselves
        need multiple named streams.
        """
        key = zlib.crc32(name.encode("utf-8"))
        return RngStreams(seed=(self._seed * 1_000_003 + key) & 0x7FFF_FFFF)
