"""Byte-size units, parsing and formatting.

The paper speaks exclusively in binary units (a "64MB L3" is 2**26 bytes), so
``KB``/``MB``/``GB``/``TB`` here are binary multiples.  :func:`parse_size`
accepts the informal strings used throughout the paper and the console
software ("64MB", "1 GB", "128B", "8-way" is *not* a size) and
:func:`format_size` renders sizes the way the paper's tables do.
"""

from __future__ import annotations

import re
from repro.common.errors import ValidationError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

_SUFFIXES = {
    "B": 1,
    "KB": KB,
    "K": KB,
    "MB": MB,
    "M": MB,
    "GB": GB,
    "G": GB,
    "TB": TB,
    "T": TB,
}

_SIZE_RE = re.compile(r"^\s*(\d+(?:\.\d+)?)\s*([KMGT]?B?)\s*$", re.IGNORECASE)


def parse_size(text: str | int) -> int:
    """Parse a human-readable byte size into an integer byte count.

    Accepts an ``int`` (returned unchanged), or strings such as ``"64MB"``,
    ``"1 GB"``, ``"128B"``, ``"512"`` (bare bytes) and ``"2M"``.  Fractional
    values are allowed when they resolve to a whole number of bytes
    (``"1.5MB"``).

    Raises:
        ValidationError: if the string is not a recognisable size or a fractional
            value does not resolve to whole bytes.
    """
    if isinstance(text, int):
        return text
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValidationError(f"unparseable size: {text!r}")
    value = float(match.group(1))
    suffix = match.group(2).upper() or "B"
    multiplier = _SUFFIXES[suffix]
    size = value * multiplier
    if size != int(size):
        raise ValidationError(f"size {text!r} is not a whole number of bytes")
    return int(size)


def format_size(nbytes: int) -> str:
    """Format a byte count the way the paper's tables do (``64MB``, ``1GB``).

    Uses the largest binary unit that divides the size exactly; falls back to
    one decimal place otherwise.
    """
    if nbytes < 0:
        raise ValidationError("size must be non-negative")
    for suffix, multiplier in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if nbytes >= multiplier:
            if nbytes % multiplier == 0:
                return f"{nbytes // multiplier}{suffix}"
            return f"{nbytes / multiplier:.1f}{suffix}"
    return f"{nbytes}B"
