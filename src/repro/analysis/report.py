"""Plain-text rendering of tables and curve families.

The experiment harness regenerates every table and figure of the paper as
text: tables as aligned columns, figures as labelled series (one row per
sweep point, one column per curve).  Keeping rendering here means every
experiment module and benchmark prints through the same two functions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.errors import ValidationError
from repro.analysis.stats import MissCurve


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned text table.

    Args:
        headers: column names.
        rows: cell values; formatted with ``str`` (floats pre-format them).
        title: optional title line above the table.
    """
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(value))
            else:
                widths.append(len(value))

    def format_row(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(values))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(format_row(row))
    return "\n".join(lines)


def render_series(
    curves: Sequence[MissCurve],
    title: str = "",
    x_header: str = "x",
    percent: bool = True,
) -> str:
    """Render a family of curves as a table: one column per curve.

    All curves must share the same sweep points (same x values in the same
    order) — which every figure in the paper does.
    """
    if not curves:
        return title
    first = curves[0]
    for curve in curves[1:]:
        if curve.xs() != first.xs():
            raise ValidationError(
                f"curve {curve.name!r} sweeps different x values than "
                f"{first.name!r}"
            )
    headers = [x_header] + [curve.name for curve in curves]
    rows: List[List[object]] = []
    for index, point in enumerate(first.points):
        row: List[object] = [point.display_label()]
        for curve in curves:
            value = curve.points[index].miss_ratio
            row.append(f"{value * 100:.2f}%" if percent else f"{value:.4f}")
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_breakdown(
    categories: Sequence[str],
    columns: Sequence[str],
    values: Sequence[Sequence[float]],
    title: str = "",
) -> str:
    """Render a stacked-bar-style breakdown (Figure 12) as percentages.

    Args:
        categories: row labels (e.g. memory / l3 / mod-int / shr-int).
        columns: one label per configuration (e.g. ``2x4``, ``4x2``).
        values: ``values[c][r]`` is the fraction for column c, category r.
    """
    rows = []
    for r, category in enumerate(categories):
        row: List[object] = [category]
        for c in range(len(columns)):
            row.append(f"{values[c][r] * 100:.1f}%")
        rows.append(row)
    return render_table(["where satisfied"] + list(columns), rows, title=title)
