"""Miss statistics containers used by the experiment harness.

The paper reports results as *curves* — miss ratio against cache size
(Figures 8 and 11), against processors per cache (Figure 9) — and this
module provides the small value types those curves are made of, plus
shape predicates (monotonicity, crossover) that the test suite uses to
verify each reproduced figure qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.common.errors import ValidationError
from repro.common.units import format_size


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep.

    Attributes:
        x: the swept parameter value (cache bytes, processors per node...).
        miss_ratio: observed miss ratio at that point.
        label: optional display label (defaults to a formatted size).
    """

    x: float
    miss_ratio: float
    label: str = ""

    def display_label(self) -> str:
        """Label for tables; falls back to formatting ``x`` as a size."""
        if self.label:
            return self.label
        return format_size(int(self.x))


@dataclass
class MissCurve:
    """A named series of sweep points (one curve of a figure)."""

    name: str
    points: List[SweepPoint] = field(default_factory=list)

    def add(self, x: float, miss_ratio: float, label: str = "") -> None:
        """Append one point."""
        self.points.append(SweepPoint(x=x, miss_ratio=miss_ratio, label=label))

    def xs(self) -> List[float]:
        """Sweep values in insertion order."""
        return [p.x for p in self.points]

    def ys(self) -> List[float]:
        """Miss ratios in insertion order."""
        return [p.miss_ratio for p in self.points]

    def is_monotone_decreasing(self, tolerance: float = 0.0) -> bool:
        """True when miss ratio never rises by more than ``tolerance``."""
        ys = self.ys()
        return all(b <= a + tolerance for a, b in zip(ys, ys[1:]))

    def is_monotone_increasing(self, tolerance: float = 0.0) -> bool:
        """True when miss ratio never falls by more than ``tolerance``."""
        ys = self.ys()
        return all(b >= a - tolerance for a, b in zip(ys, ys[1:]))

    def total_drop(self) -> float:
        """Miss-ratio reduction from first to last point."""
        ys = self.ys()
        if not ys:
            return 0.0
        return ys[0] - ys[-1]


def relative_flattening(curve: MissCurve, knee_index: int) -> float:
    """How flat a curve is beyond an index, relative to its drop before it.

    Figure 8's 'too small a trace suggests larger caches have no impact':
    a cold-dominated curve has nearly all of its drop before the knee.
    Returns drop_after / drop_before (0 = perfectly flat tail).
    """
    ys = curve.ys()
    if not 0 < knee_index < len(ys):
        raise ValidationError(f"knee index {knee_index} out of range")
    drop_before = ys[0] - ys[knee_index]
    drop_after = ys[knee_index] - ys[-1]
    if drop_before <= 0:
        return float("inf") if drop_after > 0 else 0.0
    return drop_after / drop_before


def crossover_exists(short: Sequence[float], long: Sequence[float]) -> bool:
    """Figure 9's signature: the two curves trend in opposite directions.

    ``short`` should (per the paper) decrease with sharing while ``long``
    increases.
    """
    if len(short) < 2 or len(long) < 2:
        return False
    return short[-1] < short[0] and long[-1] > long[0]
