"""Plain-text line charts for the regenerated figures.

The experiment harness prints each figure as a numeric series table (exact
values) *and* as an ASCII chart (shape at a glance).  The chart is plotted
on a fixed character grid: x positions are the sweep points, evenly spaced
(cache-size sweeps are logarithmic in nature, so even categorical spacing
matches the paper's axes); each curve gets a marker and a legend row.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.common.errors import ValidationError
from repro.analysis.stats import MissCurve

MARKERS = "o*x+#@%&"


def render_chart(
    curves: Sequence[MissCurve],
    width: int = 64,
    height: int = 14,
    title: str = "",
    percent: bool = True,
) -> str:
    """Render a family of curves as an ASCII line chart.

    All curves must share the same sweep points.  The y-axis spans
    [0, max] (miss ratios live in [0, 1]); markers from :data:`MARKERS`
    identify curves, with linear interpolation between sweep points.
    """
    if not curves:
        return title
    n_points = len(curves[0].points)
    for curve in curves[1:]:
        if len(curve.points) != n_points:
            raise ValidationError("curves sweep different numbers of points")
    if n_points == 0:
        return title
    if len(curves) > len(MARKERS):
        raise ValidationError(f"at most {len(MARKERS)} curves per chart")

    y_max = max(max(curve.ys()) for curve in curves) or 1.0
    grid = [[" "] * width for _ in range(height)]

    def column_of(index: int) -> int:
        if n_points == 1:
            return width // 2
        return round(index * (width - 1) / (n_points - 1))

    def row_of(value: float) -> int:
        scaled = value / y_max
        return (height - 1) - round(scaled * (height - 1))

    for curve_index, curve in enumerate(curves):
        marker = MARKERS[curve_index]
        ys = curve.ys()
        # Interpolated polyline drawn with '.', data points with markers.
        for index in range(n_points - 1):
            col_a, col_b = column_of(index), column_of(index + 1)
            for col in range(col_a, col_b + 1):
                if col_b == col_a:
                    fraction = 0.0
                else:
                    fraction = (col - col_a) / (col_b - col_a)
                value = ys[index] + fraction * (ys[index + 1] - ys[index])
                row = row_of(value)
                if grid[row][col] == " ":
                    grid[row][col] = "."
        for index, value in enumerate(ys):
            grid[row_of(value)][column_of(index)] = marker

    def y_label(row: int) -> str:
        value = y_max * (height - 1 - row) / (height - 1)
        return f"{value * 100:5.1f}%" if percent else f"{value:6.3f}"

    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(height):
        label = y_label(row) if row % max(1, height // 4) == 0 or row == height - 1 else " " * 6
        lines.append(f"{label} |{''.join(grid[row])}")
    lines.append(" " * 6 + "+" + "-" * width)

    # X tick labels, spread under their columns.
    tick_line = [" "] * (width + 8)
    for index, point in enumerate(curves[0].points):
        label = point.display_label()
        start = 7 + max(0, min(column_of(index) - len(label) // 2, width - len(label)))
        for offset, char in enumerate(label):
            if start + offset < len(tick_line):
                tick_line[start + offset] = char
    lines.append("".join(tick_line).rstrip())

    for curve_index, curve in enumerate(curves):
        lines.append(f"  {MARKERS[curve_index]} = {curve.name}")
    return "\n".join(lines)


def render_sparkline(
    values: Sequence[float],
    width: Optional[int] = None,
    ramp: str = " .:-=+*#%@",
) -> str:
    """One-line intensity sketch of a series (used for Figure 10 profiles).

    Values are scaled to the series' own peak; ``width`` (when given)
    downsamples by averaging buckets.
    """
    if not values:
        return ""
    series = list(values)
    if width is not None and width > 0 and len(series) > width:
        bucket = len(series) / width
        series = [
            sum(series[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            / max(1, len(series[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))]))
            for i in range(width)
        ]
    peak = max(series)
    if peak <= 0:
        return ramp[0] * len(series)
    top = len(ramp) - 1
    return "".join(ramp[min(top, int(top * value / peak + 0.5))] for value in series)
