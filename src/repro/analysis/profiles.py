"""Interval (time-series) miss-ratio profiling.

Case Study 2 (Figure 10) hinges on MemorIES's ability to watch miss
behaviour "over the entire course of a run, rather than relying on a small
interval of time": the journaling bug shows up as miss-ratio spikes every
~5 minutes, invisible in any 20–60 M-reference trace window.

:func:`profile_replay` replays a trace through a board in fixed-size
intervals, snapshotting each emulated node's counters between intervals and
differencing them into a per-interval miss-ratio series.  Spike detection
(:meth:`IntervalProfile.spike_indices`, :meth:`IntervalProfile.spike_period`)
is what the Figure 10 test uses to confirm periodicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.bus.trace import BusTrace
from repro.common.errors import ConfigurationError
from repro.memories.board import CacheEmulationFirmware, MemoriesBoard


@dataclass
class IntervalProfile:
    """Per-interval miss ratios for one emulated node.

    Attributes:
        node_index: which node controller the series belongs to.
        interval_records: trace records per interval.
        miss_ratios: one entry per interval.
        references: local references observed per interval.
    """

    node_index: int
    interval_records: int
    miss_ratios: List[float] = field(default_factory=list)
    references: List[int] = field(default_factory=list)

    def spike_indices(
        self,
        min_delta: float = 0.01,
        rel_delta: float = 0.5,
        skip: int = 0,
    ) -> List[int]:
        """Intervals whose miss ratio rises clearly above the plateau.

        The threshold is ``median + max(min_delta, rel_delta * (max -
        median))`` over the intervals after ``skip`` — scale-free, so it
        works both for a big cache (low plateau, towering spikes) and a
        small one (a ~90% plateau where a spike is a small additive bump),
        exactly the two curves of Figure 10.

        Args:
            min_delta: smallest absolute rise treated as a spike.
            rel_delta: fraction of the plateau-to-peak excursion a spike
                must reach.
            skip: leading intervals to ignore (cold-start warmup).
        """
        if len(self.miss_ratios) <= skip:
            return []
        values = np.asarray(self.miss_ratios[skip:])
        baseline = float(np.median(values))
        excursion = float(values.max()) - baseline
        threshold = baseline + max(min_delta, rel_delta * excursion)
        return [
            i + skip for i, value in enumerate(values) if value > threshold
        ]

    def spike_period(
        self,
        min_delta: float = 0.01,
        rel_delta: float = 0.5,
        skip: int = 0,
    ) -> Optional[float]:
        """Mean distance between spikes, in intervals (None when < 2 spikes).

        Consecutive above-threshold intervals are merged into one spike
        event before measuring the period, since a burst can straddle an
        interval boundary.
        """
        indices = self.spike_indices(min_delta, rel_delta, skip)
        if not indices:
            return None
        events = [indices[0]]
        for index in indices[1:]:
            if index > events[-1] + 1:
                events.append(index)
            else:
                events[-1] = index  # extend the current event
        if len(events) < 2:
            return None
        gaps = np.diff(events)
        return float(gaps.mean())


def profile_replay(
    board: MemoriesBoard,
    trace: BusTrace,
    interval_records: int,
) -> List[IntervalProfile]:
    """Replay ``trace`` through ``board``, sampling every ``interval_records``.

    Returns one :class:`IntervalProfile` per emulated node.  Requires the
    board to run cache-emulation firmware.
    """
    firmware = board.firmware
    if not isinstance(firmware, CacheEmulationFirmware):
        raise ConfigurationError(
            "interval profiling requires cache-emulation firmware"
        )
    profiles = [
        IntervalProfile(node_index=node.index, interval_records=interval_records)
        for node in firmware.nodes
    ]
    previous = [(node.references(), node.misses()) for node in firmware.nodes]

    for start in range(0, len(trace), interval_records):
        board.replay_words(trace.words[start : start + interval_records])
        for node, profile in zip(firmware.nodes, profiles):
            refs, misses = node.references(), node.misses()
            prev_refs, prev_misses = previous[profile.node_index]
            delta_refs = refs - prev_refs
            delta_misses = misses - prev_misses
            previous[profile.node_index] = (refs, misses)
            profile.references.append(delta_refs)
            profile.miss_ratios.append(
                delta_misses / delta_refs if delta_refs else 0.0
            )
    return profiles
