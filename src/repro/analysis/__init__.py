"""Statistics, interval profiling and report rendering.

* :mod:`repro.analysis.stats` — miss-ratio/miss-rate helpers and sweep
  containers.
* :mod:`repro.analysis.profiles` — interval (time-series) miss-ratio
  profiling over trace replays, used by the Figure 10 case study.
* :mod:`repro.analysis.report` — plain-text table and series rendering so
  the experiment harness prints the same rows/curves the paper's tables and
  figures show.
"""

from repro.analysis.performance_model import (
    PerformanceProjection,
    average_miss_latency,
    project_performance,
)
from repro.analysis.profiles import IntervalProfile, profile_replay
from repro.analysis.report import render_series, render_table
from repro.analysis.stats import MissCurve, SweepPoint

__all__ = [
    "IntervalProfile",
    "MissCurve",
    "PerformanceProjection",
    "SweepPoint",
    "average_miss_latency",
    "profile_replay",
    "project_performance",
    "render_series",
    "render_table",
]
