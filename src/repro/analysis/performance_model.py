"""Latency-weighted performance projection from emulated-cache statistics.

Section 5.3: "preliminary calculations based on latencies and miss ratios
suggest that performance improves from 2-25% for these applications, and
for no L3 cache size do we see performance degradation."  This module is
that calculation: given where each L2 miss was satisfied (the Figure 12
breakdown) and a latency for each source, it computes the average L2-miss
service time, folds it into a CPI model, and projects the speedup of adding
an L3 against a no-L3 baseline.

Latency defaults are S7A-era bus-clock cycles (100 MHz): an L3 hit saves a
memory round trip but costs more than a cache-to-cache transfer on the same
bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.common.errors import ConfigurationError

#: Default service latencies per data source, in 100 MHz bus cycles.
DEFAULT_LATENCIES = {
    "l3": 18.0,        # emulated L3 hit
    "memory": 40.0,    # DRAM round trip
    "mod_int": 26.0,   # dirty cache-to-cache intervention
    "shr_int": 22.0,   # shared intervention
}

#: CPI model shared with the Table 5 experiment: base CPI, line-granular
#: references per instruction, and the CPU:bus clock ratio (262:100).
CPI_BASE = 1.2
LINE_REFS_PER_INSTRUCTION = 0.33 / 16.0
CPU_CYCLES_PER_BUS_CYCLE = 2.62


@dataclass(frozen=True)
class PerformanceProjection:
    """Outcome of one latency-weighted projection.

    Attributes:
        miss_service_bus_cycles: average L2-miss service time with the L3.
        baseline_bus_cycles: the same quantity with no L3 (every would-be
            L3 hit goes to memory instead).
        cpi: projected cycles per instruction with the L3.
        baseline_cpi: projected CPI without it.
    """

    miss_service_bus_cycles: float
    baseline_bus_cycles: float
    cpi: float
    baseline_cpi: float

    @property
    def speedup(self) -> float:
        """Runtime(no L3) / runtime(L3); > 1 means the L3 helps."""
        if self.cpi == 0:
            return 1.0
        return self.baseline_cpi / self.cpi

    @property
    def improvement_percent(self) -> float:
        """Runtime reduction from adding the L3, in percent."""
        return (1.0 - self.cpi / self.baseline_cpi) * 100.0


def average_miss_latency(
    breakdown: Mapping[str, float],
    latencies: Mapping[str, float] = DEFAULT_LATENCIES,
) -> float:
    """Latency-weighted mean over a where-satisfied breakdown.

    Args:
        breakdown: fractions per source (must cover the latency keys it
            uses; fractions should sum to ~1).
        latencies: bus-cycle cost per source.
    """
    total = sum(breakdown.values())
    if total <= 0:
        raise ConfigurationError("breakdown has no mass")
    mean = 0.0
    for source, fraction in breakdown.items():
        if source not in latencies:
            raise ConfigurationError(f"no latency defined for source {source!r}")
        mean += fraction * latencies[source]
    return mean / total


def project_performance(
    breakdown: Mapping[str, float],
    l2_miss_ratio: float,
    latencies: Mapping[str, float] = DEFAULT_LATENCIES,
) -> PerformanceProjection:
    """Project the runtime effect of the emulated L3.

    The baseline redirects the L3-hit fraction to memory (no L3 in the
    machine); interventions are unaffected (they come from other L2s
    either way).

    Args:
        breakdown: Figure 12-style fractions over
            ``l3 / memory / mod_int / shr_int``.
        l2_miss_ratio: fraction of processor references missing the L2
            (converts miss service time into CPI impact).
    """
    if not 0.0 <= l2_miss_ratio <= 1.0:
        raise ConfigurationError(f"miss ratio {l2_miss_ratio} outside [0, 1]")
    with_l3 = average_miss_latency(breakdown, latencies)
    baseline_breakdown = dict(breakdown)
    baseline_breakdown["memory"] = baseline_breakdown.get("memory", 0.0) + (
        baseline_breakdown.pop("l3", 0.0)
    )
    without_l3 = average_miss_latency(baseline_breakdown, latencies)

    def cpi_of(miss_bus_cycles: float) -> float:
        miss_cpu_cycles = miss_bus_cycles * CPU_CYCLES_PER_BUS_CYCLE
        return CPI_BASE + (
            LINE_REFS_PER_INSTRUCTION * l2_miss_ratio * miss_cpu_cycles
        )

    return PerformanceProjection(
        miss_service_bus_cycles=with_l3,
        baseline_bus_cycles=without_l3,
        cpi=cpi_of(with_l3),
        baseline_cpi=cpi_of(without_l3),
    )
