"""The registry of static-analysis rule IDs.

Every finding the repo lint and the determinism analyzer can emit carries
a stable rule ID (``RP1xx`` for repository-invariant lint rules, ``DT2xx``
for determinism rules, ``EN3xx`` for engine capability decisions).  The ID
is what inline suppressions (``# repro: ignore[rule]``), baseline files
and SARIF output key on, so it must never be renamed once shipped; the
human-readable ``check`` slug may evolve with the message text.

``docs/static-analysis.md`` documents every rule in this table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class RuleInfo:
    """Metadata for one static-analysis rule."""

    rule: str
    check: str
    summary: str


#: rule ID -> metadata, in documentation order.
RULES: Dict[str, RuleInfo] = {
    info.rule: info
    for info in (
        # -------------------------------------------------------------- #
        # Structural / bookkeeping findings
        # -------------------------------------------------------------- #
        RuleInfo("RP100", "structure",
                 "source tree structure: unparsable files, empty roots"),
        # -------------------------------------------------------------- #
        # Repository-invariant lint (PR 1, PR 5)
        # -------------------------------------------------------------- #
        RuleInfo("RP101", "rng-discipline",
                 "stdlib 'random' imported outside repro.common.rng"),
        RuleInfo("RP102", "time-discipline",
                 "time.time() called outside the timing shim"),
        RuleInfo("RP103", "exception-hierarchy",
                 "builtin exception raised, or ...Error class not derived "
                 "from ReproError"),
        RuleInfo("RP104", "mutable-default",
                 "function parameter defaults to a mutable object"),
        RuleInfo("RP105", "call-replication",
                 "sequence replication aliases one object across slots "
                 "([f()] * n, dict.fromkeys(keys, mutable), [instance] * n)"),
        # -------------------------------------------------------------- #
        # Determinism analyzer (this PR)
        # -------------------------------------------------------------- #
        RuleInfo("DT201", "unsorted-serialization",
                 "unsorted dict/set iteration feeds serialized output"),
        RuleInfo("DT202", "wallclock-escape",
                 "host wall-clock read outside the timing shim / telemetry "
                 "'wall' key"),
        RuleInfo("DT203", "unseeded-entropy",
                 "unseeded entropy source (os.urandom, uuid.uuid4, "
                 "secrets, default_rng())"),
        RuleInfo("DT204", "hash-order-dependence",
                 "builtin hash() result reaches emulation or serialized "
                 "state (PYTHONHASHSEED-dependent)"),
        RuleInfo("DT205", "unordered-float-reduction",
                 "float reduction over an unordered (set) iteration"),
        RuleInfo("DT206", "worker-closure-capture",
                 "closure over enclosing-scope state passed to a "
                 "multiprocessing worker"),
        RuleInfo("DT207", "unseeded-backoff",
                 "supervisor/service code draws process-global entropy "
                 "(stdlib random, legacy numpy.random) — retry backoff "
                 "jitter must replay from the run seed"),
        RuleInfo("DT208", "wallclock-in-recorder",
                 "flight-recorder / histogram code reads the host clock "
                 "(even perf_counter) — these paths must be pure "
                 "functions of recorded inputs so reconstruction is "
                 "byte-identical"),
        # -------------------------------------------------------------- #
        # Engine capability prover (repro.engines)
        # -------------------------------------------------------------- #
        RuleInfo("EN301", "missing-capability",
                 "configuration does not grant a capability the engine "
                 "requires"),
        RuleInfo("EN302", "shard-spec",
                 "shard specification is structurally invalid"),
    )
}

#: check slug -> rule ID (for suppressions written with the slug).
RULE_OF_CHECK: Dict[str, str] = {
    info.check: info.rule for info in RULES.values()
}


def resolve_rule(name: str) -> Optional[str]:
    """Resolve a rule ID or check slug to the canonical rule ID."""
    if name in RULES:
        return name
    return RULE_OF_CHECK.get(name)
