"""Exhaustive state-space model of N coherent emulated nodes on one line.

The node controllers are passive: every state change is a deterministic
function of the bus event stream and the loaded protocol table (see
:class:`repro.memories.node_controller.NodeController`).  Coherence is a
per-line property, so the model tracks a single cache line across 2-4
nodes of one coherence group and explores every interleaving of the bus
events the host can generate:

* ``READ(i)``  — a CPU of node *i* misses its L2 and issues a bus READ;
* ``WRITE(i)`` — a CPU of node *i* issues RWITM or DCLAIM;
* ``CASTOUT(i)`` — node *i*'s L2 writes back a dirty line;
* ``EVICT(i)`` — node *i*'s emulated cache evicts the line (replacement
  pressure from other addresses mapping to the same set).

The host bus itself is coherent, which constrains the event stream: an L2
can only cast out a line its CPU previously acquired ownership of, and
any intervening bus read or foreign write demotes or invalidates that L2
copy.  The model carries that constraint as an auxiliary ``l2_owner``
component (the node whose CPU last won ownership on the bus, if any), so
impossible traffic — e.g. a castout from a node that never wrote — is not
explored and cannot produce false counterexamples.  This mirrors the
assumption documented in ``tests/test_protocol_fuzz.py``.

State count is at most ``5**nodes * (nodes + 1)`` — trivially exhaustible;
breadth-first exploration keeps parent pointers so invariant violations
come with a shortest concrete event trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ReproError, ValidationError
from repro.memories.protocol_table import (
    CacheOp,
    FillRules,
    LineState,
    Transition,
)

#: One model state: per-node line states plus the host-level L2 owner.
ModelState = Tuple[Tuple[LineState, ...], Optional[int]]

#: One bus event: (kind, node index).
Event = Tuple[str, int]

EVENT_KINDS = ("READ", "WRITE", "CASTOUT", "EVICT")


class IncompleteTableError(ReproError, KeyError):
    """Exploration hit an (op, state) pair the table does not define."""

    def __init__(self, op: CacheOp, state: LineState) -> None:
        super().__init__((op, state))
        self.op = op
        self.state = state


@dataclass(frozen=True)
class Step:
    """One explored transition: ``state --event--> next_state``."""

    state: ModelState
    event: Event
    next_state: ModelState

    def describe(self) -> str:
        kind, node = self.event
        lines, owner = self.next_state
        rendered = ", ".join(s.name for s in lines)
        suffix = f"; L2 owner node{owner}" if owner is not None else ""
        return f"node{node} {kind} -> ({rendered}){suffix}"


@dataclass
class Exploration:
    """Result of exhaustively exploring one protocol on ``n_nodes`` nodes.

    Attributes:
        n_nodes: how many nodes the model instantiated.
        reachable: every model state reached from power-up.
        parents: state -> (previous state, event) for trace reconstruction;
            the initial state maps to None.
        line_states_seen: union over nodes of every line state occupied.
    """

    n_nodes: int
    reachable: FrozenSet[ModelState]
    parents: Dict[ModelState, Optional[Tuple[ModelState, Event]]]
    line_states_seen: FrozenSet[LineState]

    def trace_to(self, state: ModelState) -> List[str]:
        """Reconstruct the shortest event path from power-up to ``state``."""
        steps: List[Step] = []
        cursor = state
        while True:
            parent = self.parents[cursor]
            if parent is None:
                break
            previous, event = parent
            steps.append(Step(previous, event, cursor))
            cursor = previous
        steps.reverse()
        rendered = ["power-up: all nodes INVALID"]
        rendered.extend(step.describe() for step in steps)
        return rendered


class ProtocolModel:
    """The transition function of one protocol table over N nodes.

    Args:
        transitions: ``(op, state) -> Transition`` for every declared state
            (the checker verifies completeness before building a model).
        fill: the table's fill rules.
    """

    def __init__(
        self,
        transitions: Mapping[Tuple[CacheOp, LineState], Transition],
        fill: FillRules,
    ) -> None:
        self._table = dict(transitions)
        self._fill = fill

    def _lookup(self, op: CacheOp, state: LineState) -> Transition:
        transition = self._table.get((op, state))
        if transition is None:
            raise IncompleteTableError(op, state)
        return transition

    # ------------------------------------------------------------------ #
    # Single-event semantics (mirrors NodeController.process_local and
    # CacheEmulationFirmware routing).
    # ------------------------------------------------------------------ #

    def enabled(self, state: ModelState, event: Event) -> bool:
        """Whether the host could legally generate ``event`` in ``state``."""
        lines, owner = state
        kind, node = event
        if kind == "CASTOUT":
            # Only the node whose CPU last acquired bus ownership still has
            # a dirty L2 copy to cast out.
            return owner == node
        if kind == "EVICT":
            return lines[node] is not LineState.INVALID
        return True

    def step(self, state: ModelState, event: Event) -> ModelState:
        """Apply one enabled bus event; returns the successor state."""
        lines, owner = state
        kind, node = event
        new_lines = list(lines)
        local = lines[node]

        if kind == "READ":
            if local is not LineState.INVALID:
                new_lines[node] = self._lookup(
                    CacheOp.LOCAL_READ, local
                ).next_state
            else:
                held = False
                for peer, peer_state in enumerate(lines):
                    if peer == node or peer_state is LineState.INVALID:
                        continue
                    held = True
                    new_lines[peer] = self._lookup(
                        CacheOp.REMOTE_READ, peer_state
                    ).next_state
                new_lines[node] = (
                    self._fill.read_shared if held else self._fill.read_alone
                )
            # Any bus read demotes whichever L2 still owned the line.
            return tuple(new_lines), None

        if kind == "WRITE":
            if local is not LineState.INVALID:
                new_lines[node] = self._lookup(
                    CacheOp.LOCAL_WRITE, local
                ).next_state
                if local in (LineState.SHARED, LineState.OWNED):
                    self._invalidate_peers(lines, new_lines, node)
            else:
                self._invalidate_peers(lines, new_lines, node)
                new_lines[node] = self._fill.write
            return tuple(new_lines), node

        if kind == "CASTOUT":
            if local is not LineState.INVALID:
                new_lines[node] = self._lookup(
                    CacheOp.LOCAL_CASTOUT, local
                ).next_state
            else:
                # Non-inclusive miss path: re-allocate write-back data dirty.
                new_lines[node] = self._fill.write
            return tuple(new_lines), None

        if kind == "EVICT":
            new_lines[node] = LineState.INVALID
            return tuple(new_lines), owner

        raise ValidationError(f"unknown event kind {kind!r}")

    def _invalidate_peers(
        self,
        lines: Sequence[LineState],
        new_lines: List[LineState],
        node: int,
    ) -> None:
        for peer, peer_state in enumerate(lines):
            if peer == node or peer_state is LineState.INVALID:
                continue
            new_lines[peer] = self._lookup(
                CacheOp.REMOTE_WRITE, peer_state
            ).next_state

    # ------------------------------------------------------------------ #
    # Exhaustive exploration
    # ------------------------------------------------------------------ #

    def explore(self, n_nodes: int) -> Exploration:
        """Breadth-first exploration of every reachable model state."""
        if not 2 <= n_nodes <= 4:
            raise ValidationError(f"model supports 2..4 nodes, got {n_nodes}")
        initial: ModelState = ((LineState.INVALID,) * n_nodes, None)
        parents: Dict[ModelState, Optional[Tuple[ModelState, Event]]] = {
            initial: None
        }
        frontier: List[ModelState] = [initial]
        events: List[Event] = [
            (kind, node) for node in range(n_nodes) for kind in EVENT_KINDS
        ]
        seen_line_states = set()
        while frontier:
            next_frontier: List[ModelState] = []
            for state in frontier:
                seen_line_states.update(state[0])
                for event in events:
                    if not self.enabled(state, event):
                        continue
                    successor = self.step(state, event)
                    if successor not in parents:
                        parents[successor] = (state, event)
                        next_frontier.append(successor)
            frontier = next_frontier
        return Exploration(
            n_nodes=n_nodes,
            reachable=frozenset(parents),
            parents=parents,
            line_states_seen=frozenset(seen_line_states),
        )
