"""Static validation of a board-programming (target machine) description.

Before the console programs the node controllers, the machine description
can be checked against the hardware envelope and the planned run:

``structure``
    The programming file parses into a valid :class:`TargetMachine` —
    this subsumes the CPU-partition rules (every CPU mapped to at most
    one node per coherence group, at most four nodes, per-node CPU counts
    matching the configs).
``envelope``
    Every node's cache geometry fits Table 2 and its tag/state directory
    fits the node controller's SDRAM; directories close to the 256 MB
    ceiling draw a warning (no room for tag growth when re-programming).
``counters``
    The 40-bit statistic counters must not wrap during the planned run:
    at the assumed bus utilization, a counter incremented on every bus
    tenure wraps after ``2**40 / (bus_hz * utilization / tenure_cycles)``
    seconds.  Runs longer than that get a warning with the projected
    wrap time (Section 2.3 of the paper sizes the counters for "days of
    continuous monitoring" — this check makes the claim concrete).
``protocol``
    Every referenced protocol table passes the full
    :mod:`repro.verify.protocol` model checker.
``ecc``
    The directory patrol scrubber, at its default cadence, completes a
    full sweep of every node's tag/state directory fast enough that a
    single-bit soft error is unlikely to meet a second flip in the same
    word before being corrected; very large directories draw a warning
    telling the operator to raise the scrub rate.
``mapping``
    Soft conventions: host CPU 0 should be mapped somewhere (the
    self-test and warm-up traffic originate there), and a coherence group
    with a single node emulates no inter-node traffic.
"""

from __future__ import annotations

from typing import Mapping, Union

from repro.bus.bus import ADDRESS_TENURE_CYCLES
from repro.common.errors import ReproError
from repro.common.units import format_size
from repro.memories.board import DEFAULT_ASSUMED_UTILIZATION
from repro.memories.config import (
    BUILTIN_PROTOCOLS,
    NODE_SDRAM_BYTES,
)
from repro.memories.counters import COUNTER_MASK
from repro.target.mapping import TargetMachine
from repro.verify.findings import Report
from repro.verify.protocol import certify_builtin, check_protocol

#: Directory occupancy above this fraction of node SDRAM draws a warning.
DIRECTORY_WARN_FRACTION = 0.9

#: Default planned run length checked against counter wrap (hours).
DEFAULT_RUN_HOURS = 24.0

#: A full ECC patrol pass slower than this (in hours of bus time) draws a
#: warning: the longer a line sits unvisited, the better the odds a second
#: soft error lands in the same word and turns a correctable flip into an
#: uncorrectable one.
SCRUB_PASS_WARN_HOURS = 1.0

_SECONDS_PER_HOUR = 3600.0


def check_machine(
    source: Union[TargetMachine, Mapping],
    run_hours: float = DEFAULT_RUN_HOURS,
    bus_hz: int = 100_000_000,
    utilization: float = DEFAULT_ASSUMED_UTILIZATION,
) -> Report:
    """Statically verify one target-machine programming.

    Args:
        source: a :class:`TargetMachine` or the dict form of a programming
            file (as produced by :meth:`TargetMachine.to_dict`).
        run_hours: planned emulation run length, for counter-wrap analysis.
        bus_hz: host bus clock.
        utilization: assumed address-bus utilization (paper Section 4
            observes ~20% on the S7A host).

    Returns:
        A :class:`Report`; ``report.ok`` means the board can be programmed.
    """
    if isinstance(source, TargetMachine):
        machine = source
        report = Report(subject=f"machine {machine.name!r}")
        report.ran("structure")
    else:
        report = Report(subject="machine <programming file>")
        report.ran("structure")
        try:
            machine = TargetMachine.from_dict(source)
        except ReproError as exc:
            report.error("structure", str(exc))
            return report
        report.subject = f"machine {machine.name!r}"

    _check_envelope(machine, report)
    _check_counters(machine, report, run_hours, bus_hz, utilization)
    _check_protocols(machine, report)
    _check_scrub(machine, report, bus_hz)
    _check_mapping(machine, report)
    return report


def _check_envelope(machine: TargetMachine, report: Report) -> None:
    report.ran("envelope")
    for index, spec in enumerate(machine.nodes):
        config = spec.config
        try:
            config.validate_geometry()
        except ReproError as exc:
            report.error("envelope", str(exc), location=f"node {index}")
            continue
        directory = config.directory_bytes
        if directory > DIRECTORY_WARN_FRACTION * NODE_SDRAM_BYTES:
            report.warning(
                "envelope",
                f"tag/state directory occupies {format_size(directory)} of "
                f"the node's {format_size(NODE_SDRAM_BYTES)} SDRAM "
                f"(>{DIRECTORY_WARN_FRACTION:.0%}); consider a larger line "
                f"size",
                location=f"node {index}",
            )


def _check_counters(
    machine: TargetMachine,
    report: Report,
    run_hours: float,
    bus_hz: int,
    utilization: float,
) -> None:
    report.ran("counters")
    if run_hours <= 0 or bus_hz <= 0 or not 0 < utilization <= 1:
        report.error(
            "counters",
            f"cannot analyse counter wrap for run_hours={run_hours}, "
            f"bus_hz={bus_hz}, utilization={utilization}",
        )
        return
    # Worst case: one counter incremented on every address tenure.
    tenures_per_second = bus_hz * utilization / ADDRESS_TENURE_CYCLES
    hours_to_wrap = (COUNTER_MASK / tenures_per_second) / _SECONDS_PER_HOUR
    if run_hours > hours_to_wrap:
        report.warning(
            "counters",
            f"a 40-bit counter incremented every tenure wraps after "
            f"{hours_to_wrap:.1f} h at {utilization:.0%} bus utilization, "
            f"but the planned run is {run_hours:.1f} h; snapshot counters "
            f"before the wrap or shorten the run",
        )
    else:
        report.info(
            "counters",
            f"40-bit counters hold {hours_to_wrap:.1f} h at {utilization:.0%} "
            f"utilization; planned run of {run_hours:.1f} h is safe",
        )


def _check_protocols(machine: TargetMachine, report: Report) -> None:
    report.ran("protocol")
    checked = {}
    for index, spec in enumerate(machine.nodes):
        name = spec.config.protocol
        if name not in checked:
            try:
                if name in BUILTIN_PROTOCOLS:
                    checked[name] = certify_builtin(name)
                else:
                    checked[name] = check_protocol(name)
            except ReproError as exc:
                checked[name] = None
                report.error(
                    "protocol",
                    f"protocol table {name!r} could not be loaded: {exc}",
                    location=f"node {index}",
                )
                continue
        sub_report = checked[name]
        if sub_report is not None and not sub_report.ok:
            report.merge(sub_report, location_prefix=f"node {index}")


def _check_scrub(machine: TargetMachine, report: Report, bus_hz: int) -> None:
    """The ECC/scrub envelope: how long a line can sit unverified."""
    from repro.memories.ecc import DEFAULT_SCRUB_INTERVAL, DEFAULT_SETS_PER_PASS

    report.ran("ecc")
    if bus_hz <= 0:
        report.error("ecc", f"cannot analyse scrub cadence for bus_hz={bus_hz}")
        return
    worst_hours = 0.0
    worst_index = 0
    for index, spec in enumerate(machine.nodes):
        num_sets = spec.config.num_sets
        passes = (num_sets + DEFAULT_SETS_PER_PASS - 1) // DEFAULT_SETS_PER_PASS
        hours = passes * DEFAULT_SCRUB_INTERVAL / bus_hz / _SECONDS_PER_HOUR
        if hours > worst_hours:
            worst_hours, worst_index = hours, index
        if hours > SCRUB_PASS_WARN_HOURS:
            report.warning(
                "ecc",
                f"a full directory scrub pass takes {hours:.2f} h of bus "
                f"time at the default cadence ({num_sets:,} sets, "
                f"{DEFAULT_SETS_PER_PASS}/pass every "
                f"{DEFAULT_SCRUB_INTERVAL:.0f} cycles); shorten the scrub "
                f"interval so corrected flips cannot pair up into "
                f"uncorrectable ones",
                location=f"node {index}",
            )
    if worst_hours <= SCRUB_PASS_WARN_HOURS:
        report.info(
            "ecc",
            f"slowest full scrub pass is {worst_hours * _SECONDS_PER_HOUR:.1f} s "
            f"of bus time (node {worst_index}); every line is re-verified "
            f"well inside the {SCRUB_PASS_WARN_HOURS:.0f} h budget",
        )


def _check_mapping(machine: TargetMachine, report: Report) -> None:
    report.ran("mapping")
    if 0 not in machine.all_cpus():
        report.warning(
            "mapping",
            "host CPU 0 is not mapped to any node; the console self-test "
            "and warm-up traffic originate there and would bypass emulation",
        )
    for group, indices in machine.groups().items():
        if len(indices) == 1 and len(machine.groups()) > 1:
            report.info(
                "mapping",
                f"coherence group {group} contains a single node; it will "
                f"see no inter-node coherence traffic",
                location=f"node {indices[0]}",
            )
