"""Determinism analyzer: AST rules that keep replay bit-identical.

The emulator's contract is that one seed plus one trace produces one
bit-identical result — across the scalar, batched and sharded engines,
across hosts, and across process restarts.  The rules here flag the code
shapes that silently break that contract:

``unsorted-serialization`` (DT201)
    Iterating a ``set`` (whose order varies with ``PYTHONHASHSEED`` and
    insertion history) inside a serialization routine — anything that
    writes JSONL journals, checkpoints, Prometheus exposition or
    ``statistics()`` payloads.  Dict iteration is *not* flagged:
    insertion order is a language guarantee and the repo relies on it.
    Wrap the iterable in ``sorted(...)``.
``wallclock-escape`` (DT202)
    Host wall-clock reads (``time.monotonic``/``time_ns``/
    ``process_time``, ``datetime.now`` & co.) outside the timing shim.
    ``time.perf_counter`` is exempt everywhere — it only ever *measures*
    the simulator (telemetry keeps such readings under the ``"wall"``
    key, segregated from replayable state) and never drives it.
    ``time.time()`` itself is the long-standing RP102 rule and is not
    double-flagged here.
``unseeded-entropy`` (DT203)
    Entropy sources that ignore the run seed: ``os.urandom``,
    ``uuid.uuid4``, anything from ``secrets``, and
    ``numpy.random.default_rng()`` *without* a seed argument.
``hash-order-dependence`` (DT204)
    Builtin ``hash()`` results reaching emulation or serialized state.
    String/bytes hashes are salted per process (``PYTHONHASHSEED``), so
    any decision or artifact derived from ``hash()`` differs between a
    run and its replay.  Use ``hashlib`` for stable digests.
``unordered-float-reduction`` (DT205)
    ``sum()``/``math.fsum()`` over a set: float addition is not
    associative, so an iteration order that varies run-to-run yields a
    result that varies in the last bits.  Reductions over lists, tuples
    and dict views keep a stable order and are fine.
``worker-closure-capture`` (DT206)
    A ``lambda`` or nested function handed to a multiprocessing pool /
    ``Process`` target.  Closures capture enclosing mutable state by
    reference; under ``fork`` each worker gets a silently diverging copy
    and under ``spawn`` the submission fails outright.  Workers must be
    module-level functions taking explicit picklable arguments (the
    :mod:`repro.supervisor.worker` pattern).
``unseeded-backoff`` (DT207)
    Process-global entropy — any ``random.*`` call, or a draw on the
    legacy ``numpy.random`` module-level RNG — inside the
    ``supervisor/`` or ``service/`` trees.  Restart/retry backoff there
    is journaled and replayed on resume: jitter must come from the run's
    seeded stream (:func:`repro.supervisor.backoff_delay` derives it
    from ``SeedSequence([seed, tag, attempt])``), or a drained run's
    timeline can never be reproduced from its journal.  Scoped by path,
    not by function name, so no helper rename can smuggle entropy in.
``wallclock-in-recorder`` (DT208)
    Any host-clock read — *including* ``time.perf_counter``, exempt
    everywhere else — inside the flight-recorder tree (``obs/``) or the
    histogram type (``telemetry/histogram.py``).  These paths promise
    byte-identical reconstruction from a run directory: every number
    they emit must be a pure function of recorded inputs.  Wall time is
    measured where it happens (spans, the service plane) and stored
    under the segregated ``"wall"`` key; the recorder only *reads* it
    back.

All rules report through the :class:`repro.verify.lint.FileLint` context,
so profiles and ``# repro: ignore[rule]`` suppressions apply uniformly.
"""

from __future__ import annotations

import ast
import re
from typing import Optional, Set, Union

#: Files allowed to read the host wall clock (beyond perf_counter).
WALLCLOCK_ALLOWLIST = frozenset({"sim/timing.py"})

#: ``time`` module attributes that read the host clock.  ``time.time``
#: is excluded (RP102 owns it); ``perf_counter``/``perf_counter_ns``
#: are exempt by design (benchmarking only).
_WALLCLOCK_TIME_ATTRS = frozenset(
    {
        "monotonic",
        "monotonic_ns",
        "time_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: ``datetime``-class methods that read the host clock.
_WALLCLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Function-name fragments that mark a serialization routine — the
#: context in which set iteration order becomes externally visible.
_SERIAL_NAME_RE = re.compile(
    r"(to_dict|to_json|serial|dump|write|render|expose|export|emit"
    r"|checkpoint|statistic|payload|digest|snapshot)",
    re.IGNORECASE,
)

#: Pool/executor methods whose callable argument runs in another process.
_WORKER_DISPATCH_ATTRS = frozenset(
    {
        "map",
        "map_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
        "apply",
        "apply_async",
        "submit",
    }
)

#: Path prefixes (relative to the lint root) where DT207 applies: the
#: trees whose retry/backoff timing is journaled and replayed on resume.
BACKOFF_SCOPE = ("supervisor/", "service/")

#: Where DT208 applies: code that must be a pure function of recorded
#: inputs so reconstruction from a run directory is byte-identical.
RECORDER_SCOPE = ("obs/",)
RECORDER_FILES = frozenset({"telemetry/histogram.py"})

#: Clock reads DT208 forbids beyond the DT202 set: in recorder scope
#: even the benchmarking clock (and RP102's ``time.time``) is banned.
_RECORDER_EXTRA_TIME_ATTRS = frozenset(
    {"perf_counter", "perf_counter_ns", "time"}
)

#: Draw functions of the legacy module-level numpy RNG (seeded only via
#: hidden global state, which a resumed process does not share).
_NP_GLOBAL_DRAWS = frozenset(
    {
        "random",
        "random_sample",
        "rand",
        "randn",
        "randint",
        "uniform",
        "normal",
        "standard_normal",
        "exponential",
        "poisson",
        "beta",
        "gamma",
        "choice",
        "shuffle",
        "permutation",
    }
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def lint_tree(tree: ast.AST, ctx) -> None:
    """Run every determinism rule over one parsed file.

    ``ctx`` is the per-file :class:`~repro.verify.lint.FileLint`; profile
    filtering and suppressions happen inside its emit methods.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            _lint_wallclock(node, ctx)
            _lint_entropy(node, ctx)
            _lint_hash(node, ctx)
            _lint_float_reduction(node, ctx)
            _lint_worker_dispatch(node, ctx)
            _lint_backoff_entropy(node, ctx)
            _lint_recorder_wallclock(node, ctx)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _lint_serialization_order(node, ctx)
            _lint_nested_workers(node, ctx)


# ---------------------------------------------------------------------- #
# DT202 wallclock-escape
# ---------------------------------------------------------------------- #

def _lint_wallclock(node: ast.Call, ctx) -> None:
    if ctx.relative in WALLCLOCK_ALLOWLIST:
        return
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    owner = func.value
    if (
        isinstance(owner, ast.Name)
        and owner.id == "time"
        and func.attr in _WALLCLOCK_TIME_ATTRS
    ):
        ctx.error(
            "wallclock-escape",
            f"time.{func.attr}() reads the host clock; emulated time comes "
            f"from bus cycles and wall time belongs only in the telemetry "
            f"'wall' key (use time.perf_counter for benchmarking)",
            node.lineno,
        )
        return
    if (
        isinstance(owner, ast.Name)
        and owner.id in ("datetime", "date")
        and func.attr in _WALLCLOCK_DATETIME_ATTRS
    ):
        ctx.error(
            "wallclock-escape",
            f"{owner.id}.{func.attr}() reads the host calendar clock; "
            f"runs must be reproducible independent of when they execute",
            node.lineno,
        )
        return
    # datetime.datetime.now(...) spelled through the module.
    if (
        isinstance(owner, ast.Attribute)
        and isinstance(owner.value, ast.Name)
        and owner.value.id == "datetime"
        and owner.attr in ("datetime", "date")
        and func.attr in _WALLCLOCK_DATETIME_ATTRS
    ):
        ctx.error(
            "wallclock-escape",
            f"datetime.{owner.attr}.{func.attr}() reads the host calendar "
            f"clock; runs must be reproducible independent of when they "
            f"execute",
            node.lineno,
        )


# ---------------------------------------------------------------------- #
# DT203 unseeded-entropy
# ---------------------------------------------------------------------- #

def _lint_entropy(node: ast.Call, ctx) -> None:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    owner = func.value
    owner_name = owner.id if isinstance(owner, ast.Name) else None
    if owner_name == "os" and func.attr == "urandom":
        ctx.error(
            "unseeded-entropy",
            "os.urandom() draws kernel entropy that can never be replayed; "
            "derive randomness from the run seed via repro.common.rng",
            node.lineno,
        )
    elif owner_name == "uuid" and func.attr in ("uuid1", "uuid4"):
        ctx.error(
            "unseeded-entropy",
            f"uuid.{func.attr}() is host/entropy-dependent; derive stable "
            f"identifiers from the run seed or configuration digest",
            node.lineno,
        )
    elif owner_name == "secrets":
        ctx.error(
            "unseeded-entropy",
            f"secrets.{func.attr}() draws unseeded CSPRNG output; the "
            f"emulator has no secrets — use seed-derived streams",
            node.lineno,
        )
    elif func.attr == "default_rng" and not node.args and not node.keywords:
        ctx.error(
            "unseeded-entropy",
            "default_rng() without a seed draws OS entropy; pass a "
            "seed-derived value so the stream replays",
            node.lineno,
        )


# ---------------------------------------------------------------------- #
# DT204 hash-order-dependence
# ---------------------------------------------------------------------- #

def _lint_hash(node: ast.Call, ctx) -> None:
    if isinstance(node.func, ast.Name) and node.func.id == "hash":
        ctx.error(
            "hash-order-dependence",
            "builtin hash() is salted per process (PYTHONHASHSEED); any "
            "decision or artifact derived from it differs on replay — use "
            "hashlib for stable digests",
            node.lineno,
        )


# ---------------------------------------------------------------------- #
# DT205 unordered-float-reduction
# ---------------------------------------------------------------------- #

def _lint_float_reduction(node: ast.Call, ctx) -> None:
    func = node.func
    is_sum = isinstance(func, ast.Name) and func.id == "sum"
    is_fsum = (
        isinstance(func, ast.Attribute)
        and func.attr == "fsum"
        and isinstance(func.value, ast.Name)
        and func.value.id == "math"
    )
    if not (is_sum or is_fsum) or not node.args:
        return
    if _is_set_expression(node.args[0]):
        name = "math.fsum" if is_fsum else "sum"
        ctx.error(
            "unordered-float-reduction",
            f"{name}() over a set: float addition is not associative and "
            f"set order varies run-to-run — reduce over sorted(...) so the "
            f"accumulation order is fixed",
            node.lineno,
        )


def _is_set_expression(node: ast.expr) -> bool:
    """Syntactically set-typed: literal, comprehension, or set()/frozenset()."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


# ---------------------------------------------------------------------- #
# DT201 unsorted-serialization
# ---------------------------------------------------------------------- #

def _lint_serialization_order(node: _FunctionNode, ctx) -> None:
    """Flag set iteration inside a serialization routine.

    Scope is intentionally name-based (``to_dict``, ``write_*``,
    ``statistics`` ...): only there does iteration order leak into
    journals, checkpoints and exposition payloads.  Set-typed values are
    recognised syntactically and through single-assignment local names.
    """
    if not _SERIAL_NAME_RE.search(node.name):
        return
    set_names: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Assign) and _is_set_expression(child.value):
            set_names.update(
                target.id for target in child.targets
                if isinstance(target, ast.Name)
            )
    for child in ast.walk(node):
        iterables = []
        if isinstance(child, (ast.For, ast.AsyncFor)):
            iterables.append(child.iter)
        elif isinstance(
            child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            iterables.extend(gen.iter for gen in child.generators)
        for iterable in iterables:
            if _is_set_expression(iterable) or (
                isinstance(iterable, ast.Name) and iterable.id in set_names
            ):
                ctx.error(
                    "unsorted-serialization",
                    f"serialization routine {node.name!r} iterates a set; "
                    f"set order varies with PYTHONHASHSEED so the emitted "
                    f"bytes differ between identical runs — iterate "
                    f"sorted(...) instead",
                    iterable.lineno,
                )


# ---------------------------------------------------------------------- #
# DT207 unseeded-backoff
# ---------------------------------------------------------------------- #

def _lint_backoff_entropy(node: ast.Call, ctx) -> None:
    """Flag process-global entropy inside the supervisor/service trees.

    Restart and retry backoff in these trees is journaled (the delay
    rides on the ``restart`` record) and re-derived on resume; drawing
    it from the stdlib ``random`` module or the legacy module-level
    ``numpy.random`` RNG makes the journaled timeline unreproducible.
    The rule is path-scoped: anywhere else, RP101/DT203 already govern
    entropy use.
    """
    if not ctx.relative.startswith(BACKOFF_SCOPE):
        return
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    owner = func.value
    # random.<anything>(...) — the process-global stdlib RNG.
    if isinstance(owner, ast.Name) and owner.id == "random":
        ctx.error(
            "unseeded-backoff",
            f"random.{func.attr}() draws the process-global stdlib RNG; "
            f"backoff jitter in supervisor/service code must replay from "
            f"the run seed — use repro.supervisor.backoff_delay",
            node.lineno,
        )
        return
    # np.random.<draw>(...) / numpy.random.<draw>(...) — the legacy
    # module-level numpy RNG (global hidden state).
    if (
        isinstance(owner, ast.Attribute)
        and owner.attr == "random"
        and isinstance(owner.value, ast.Name)
        and owner.value.id in ("np", "numpy")
        and func.attr in _NP_GLOBAL_DRAWS
    ):
        ctx.error(
            "unseeded-backoff",
            f"{owner.value.id}.random.{func.attr}() draws the legacy "
            f"module-level numpy RNG; backoff jitter in supervisor/service "
            f"code must replay from the run seed — use "
            f"repro.supervisor.backoff_delay",
            node.lineno,
        )


# ---------------------------------------------------------------------- #
# DT208 wallclock-in-recorder
# ---------------------------------------------------------------------- #

def _lint_recorder_wallclock(node: ast.Call, ctx) -> None:
    """Flag any host-clock read inside the recorder scope.

    The flight recorder (``obs/``) and the histogram type promise that
    re-running them over the same files yields the same bytes; a single
    ``perf_counter()`` call breaks that silently.  Wall durations enter
    the system where they are *measured* — spans and the service plane
    store them under the ``"wall"`` key — and the recorder only reads
    them back, so there is never a legitimate clock call here.
    """
    in_scope = ctx.relative.startswith(RECORDER_SCOPE) or (
        ctx.relative in RECORDER_FILES
    )
    if not in_scope:
        return
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    owner = func.value
    if (
        isinstance(owner, ast.Name)
        and owner.id == "time"
        and (
            func.attr in _WALLCLOCK_TIME_ATTRS
            or func.attr in _RECORDER_EXTRA_TIME_ATTRS
        )
    ):
        ctx.error(
            "wallclock-in-recorder",
            f"time.{func.attr}() inside recorder scope: flight-recorder "
            f"and histogram output must be a pure function of recorded "
            f"inputs — take wall durations from span/service records, "
            f"never from the live clock",
            node.lineno,
        )


# ---------------------------------------------------------------------- #
# DT206 worker-closure-capture
# ---------------------------------------------------------------------- #

def _lint_worker_dispatch(node: ast.Call, ctx) -> None:
    """Flag lambdas / nested defs handed to another process."""
    func = node.func
    candidates = []
    if isinstance(func, ast.Attribute) and func.attr in _WORKER_DISPATCH_ATTRS:
        if node.args:
            candidates.append(node.args[0])
    elif _is_process_constructor(func):
        for keyword in node.keywords:
            if keyword.arg == "target":
                candidates.append(keyword.value)
    for candidate in candidates:
        if isinstance(candidate, ast.Lambda):
            ctx.error(
                "worker-closure-capture",
                "lambda passed to a worker dispatch; closures capture "
                "enclosing state by reference and do not pickle — use a "
                "module-level function with explicit arguments",
                node.lineno,
            )


def _lint_nested_workers(node: _FunctionNode, ctx) -> None:
    """Flag nested functions handed to a worker dispatch by name.

    ``def run(): def work(x): ...; pool.map(work, items)`` has the same
    closure-capture problem as a lambda: ``work`` closes over ``run``'s
    locals and is not picklable under spawn.
    """
    nested = {
        child.name
        for child in ast.walk(node)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child is not node
    }
    if not nested:
        return
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        candidates = []
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _WORKER_DISPATCH_ATTRS
            and child.args
        ):
            candidates.append(child.args[0])
        elif _is_process_constructor(func):
            candidates.extend(
                keyword.value for keyword in child.keywords
                if keyword.arg == "target"
            )
        for candidate in candidates:
            if isinstance(candidate, ast.Name) and candidate.id in nested:
                ctx.error(
                    "worker-closure-capture",
                    f"nested function {candidate.id!r} passed to a worker "
                    f"dispatch; it closes over enclosing-scope state by "
                    f"reference and does not pickle — move it to module "
                    f"level with explicit arguments",
                    child.lineno,
                )


def _is_process_constructor(func: ast.expr) -> Optional[bool]:
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    return name in ("Process", "Thread")
