"""AST-based lint of repository-wide invariants.

Reproducibility and a single error-handling contract are properties of
the whole codebase, not of any one module, so they are enforced by
walking every source file under ``src/repro`` with :mod:`ast`:

``rng-discipline``
    The stdlib :mod:`random` module must not be imported outside
    :mod:`repro.common.rng`; every consumer draws from the named,
    seed-derived streams so a run is reproducible from one seed.
``time-discipline``
    ``time.time()`` must not be called outside the designated timing
    shim (:mod:`repro.sim.timing`); emulated time comes from bus cycles,
    and wall-clock reads sprinkled through the model would silently make
    results host-dependent.  (``time.perf_counter`` is fine — it is only
    ever used to *benchmark* the simulator, never to drive it.)
``exception-hierarchy``
    Every exception raised by the library derives from
    :class:`repro.common.errors.ReproError`: raising bare builtins
    (``ValueError`` & co.) is flagged, as is defining an ``...Error``
    class without a ``ReproError`` base.  ``NotImplementedError`` on
    abstract methods and the control-flow exceptions are exempt.
``mutable-default``
    No function parameter defaults to a mutable literal (``[]``, ``{}``,
    ``set()`` ...); the shared instance aliases across calls.
``call-replication``
    No ``[make_thing()] * n`` (or tuple equivalent): the call runs once
    and the list holds ``n`` references to the *same* object, so mutating
    one slot mutates them all.  Replicating per-set/per-way metadata this
    way silently couples every cache set (the bug class fixed in
    :class:`~repro.memories.cache_model.TagStateDirectory`).  Use a
    comprehension — ``[make_thing() for _ in range(n)]`` — instead.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.verify.findings import Report

#: Builtin exceptions whose direct raising the lint flags.
BANNED_RAISES = frozenset(
    {
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "AttributeError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OSError",
        "IOError",
        "Exception",
        "BaseException",
    }
)

#: Exceptions that are fine to raise anywhere (abstract methods,
#: control flow, test plumbing).
EXEMPT_RAISES = frozenset(
    {
        "NotImplementedError",
        "StopIteration",
        "StopAsyncIteration",
        "SystemExit",
        "KeyboardInterrupt",
        "AssertionError",
    }
)

#: Files (relative to the package root, posix separators) allowed to
#: import the stdlib ``random`` module.
RNG_ALLOWLIST = frozenset({"common/rng.py"})

#: Files allowed to call ``time.time()``.
TIME_ALLOWLIST = frozenset({"sim/timing.py"})

#: Call targets that build a fresh mutable object per call-site — banned
#: as parameter defaults just like the literal forms.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def check_repo(root: Optional[Union[str, Path]] = None) -> Report:
    """Lint every Python source below ``root`` (default: the repro package)."""
    root_path = Path(root).resolve() if root is not None else default_root()
    report = Report(subject=f"repo {root_path}")
    for check in ("rng-discipline", "time-discipline",
                  "exception-hierarchy", "mutable-default",
                  "call-replication"):
        report.ran(check)

    sources = sorted(root_path.rglob("*.py"))
    if not sources:
        report.error("structure", f"no Python sources under {root_path}")
        return report

    trees: List[Tuple[Path, ast.AST]] = []
    for path in sources:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        except SyntaxError as exc:
            report.error(
                "structure",
                f"source does not parse: {exc.msg}",
                location=f"{_relative(path, root_path)}:{exc.lineno}",
            )
            continue
        trees.append((path, tree))

    derived = _repro_error_classes(tree for _, tree in trees)
    for path, tree in trees:
        _lint_file(tree, _relative(path, root_path), derived, report)
    report.info(
        "structure",
        f"linted {len(trees)} file(s), "
        f"{len(derived)} ReproError-derived class(es) known",
    )
    return report


def _relative(path: Path, root: Path) -> str:
    return path.relative_to(root).as_posix()


# ---------------------------------------------------------------------- #
# Pass 1: resolve the ReproError class hierarchy by name
# ---------------------------------------------------------------------- #

def _repro_error_classes(trees: Iterable[ast.AST]) -> Set[str]:
    """Names of classes transitively derived from ReproError.

    Resolution is purely by name (the repo has a single flat exception
    module, so name collisions are not a concern worth an import graph).
    """
    bases: Dict[str, Set[str]] = {}
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases.setdefault(node.name, set()).update(
                    name for name in map(_base_name, node.bases) if name
                )
    derived = {"ReproError"}
    changed = True
    while changed:
        changed = False
        for name, base_names in bases.items():
            if name not in derived and base_names & derived:
                derived.add(name)
                changed = True
    return derived


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ---------------------------------------------------------------------- #
# Pass 2: per-file rules
# ---------------------------------------------------------------------- #

def _lint_file(
    tree: ast.AST, relative: str, derived: Set[str], report: Report
) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    _flag_random(relative, node.lineno, report)
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "random":
                _flag_random(relative, node.lineno, report)
        elif isinstance(node, ast.Call):
            _lint_time_call(node, relative, report)
        elif isinstance(node, ast.BinOp):
            _lint_replication(node, relative, report)
        elif isinstance(node, ast.Raise):
            _lint_raise(node, relative, derived, report)
        elif isinstance(node, ast.ClassDef):
            _lint_class(node, relative, derived, report)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _lint_defaults(node, relative, report)


def _flag_random(relative: str, lineno: int, report: Report) -> None:
    if relative in RNG_ALLOWLIST:
        return
    report.error(
        "rng-discipline",
        "stdlib 'random' imported; draw from repro.common.rng streams so "
        "runs stay reproducible from a single seed",
        location=f"{relative}:{lineno}",
    )


def _lint_time_call(node: ast.Call, relative: str, report: Report) -> None:
    func = node.func
    is_time_time = (
        isinstance(func, ast.Attribute)
        and func.attr == "time"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    )
    if is_time_time and relative not in TIME_ALLOWLIST:
        report.error(
            "time-discipline",
            "time.time() called outside the timing shim; emulated time "
            "must come from bus cycles, not the host wall clock",
            location=f"{relative}:{node.lineno}",
        )


def _lint_raise(
    node: ast.Raise, relative: str, derived: Set[str], report: Report
) -> None:
    target = node.exc
    if target is None:  # bare re-raise
        return
    if isinstance(target, ast.Call):
        target = target.func
    name = _base_name(target)
    if name is None or name in EXEMPT_RAISES:
        return
    if name in BANNED_RAISES:
        report.error(
            "exception-hierarchy",
            f"raises builtin {name}; raise a ReproError subclass (e.g. "
            f"ValidationError) so callers can catch one library root",
            location=f"{relative}:{node.lineno}",
        )
    elif name.endswith(("Error", "Exception")) and name not in derived:
        # Unknown ...Error names (e.g. from third-party modules) are left
        # alone; only classes defined in this repo are held to the rule.
        pass


def _lint_class(
    node: ast.ClassDef, relative: str, derived: Set[str], report: Report
) -> None:
    if not node.name.endswith(("Error", "Exception")):
        return
    if node.name in derived or node.name == "ReproError":
        return
    base_names = {name for name in map(_base_name, node.bases) if name}
    # Only flag classes that are actually exception types.
    if base_names & (BANNED_RAISES | EXEMPT_RAISES | {"Warning"}) or not base_names:
        report.error(
            "exception-hierarchy",
            f"exception class {node.name} does not derive from ReproError; "
            f"add it to the repro.common.errors hierarchy",
            location=f"{relative}:{node.lineno}",
        )


def _lint_defaults(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
    relative: str,
    report: Report,
) -> None:
    args = node.args
    for default in list(args.defaults) + [
        d for d in args.kw_defaults if d is not None
    ]:
        if _is_mutable_default(default):
            report.error(
                "mutable-default",
                f"function {node.name!r} has a mutable default argument; "
                f"the shared instance aliases across calls — default to "
                f"None (or a tuple) instead",
                location=f"{relative}:{default.lineno}",
            )


def _lint_replication(node: ast.BinOp, relative: str, report: Report) -> None:
    """Flag ``[expr()] * n``: n references to one shared call result."""
    if not isinstance(node.op, ast.Mult):
        return
    for operand in (node.left, node.right):
        if not isinstance(operand, (ast.List, ast.Tuple)):
            continue
        if any(
            isinstance(element, ast.Call) for element in operand.elts
        ):
            report.error(
                "call-replication",
                "sequence-of-calls replicated with '*': every slot shares "
                "the one object the call produced, so mutating any slot "
                "mutates all — build per-slot instances with a "
                "comprehension instead",
                location=f"{relative}:{node.lineno}",
            )
            return


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
        and not node.args
        and not node.keywords
    )
