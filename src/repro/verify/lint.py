"""AST-based lint of repository-wide invariants.

Reproducibility and a single error-handling contract are properties of
the whole codebase, not of any one module, so they are enforced by
walking every source file under a root (default ``src/repro``) with
:mod:`ast`:

``rng-discipline`` (RP101)
    The stdlib :mod:`random` module must not be imported outside
    :mod:`repro.common.rng`; every consumer draws from the named,
    seed-derived streams so a run is reproducible from one seed.
``time-discipline`` (RP102)
    ``time.time()`` must not be called outside the designated timing
    shim (:mod:`repro.sim.timing`); emulated time comes from bus cycles,
    and wall-clock reads sprinkled through the model would silently make
    results host-dependent.  (``time.perf_counter`` is fine — it is only
    ever used to *benchmark* the simulator, never to drive it.)
``exception-hierarchy`` (RP103)
    Every exception raised by the library derives from
    :class:`repro.common.errors.ReproError`: raising bare builtins
    (``ValueError`` & co.) is flagged, as is defining an ``...Error``
    class without a ``ReproError`` base.  ``NotImplementedError`` on
    abstract methods and the control-flow exceptions are exempt.
``mutable-default`` (RP104)
    No function parameter defaults to a mutable literal (``[]``, ``{}``,
    ``set()`` ...); the shared instance aliases across calls.
``call-replication`` (RP105)
    No ``[make_thing()] * n`` (or tuple equivalent): the call runs once
    and the list holds ``n`` references to the *same* object, so mutating
    one slot mutates them all.  Replicating per-set/per-way metadata this
    way silently couples every cache set (the bug class fixed in
    :class:`~repro.memories.cache_model.TagStateDirectory`).  The same
    aliasing hides in ``dict.fromkeys(keys, mutable)`` (one value object
    shared by every key) and in ``[instance] * n`` where ``instance``
    was built once from a class constructor.  Use a comprehension —
    ``[make_thing() for _ in range(n)]`` — instead.

The determinism rules (DT2xx — unsorted serialization, wall-clock
escapes, unseeded entropy, ``hash()`` order dependence, unordered float
reductions, worker closure capture) live in
:mod:`repro.verify.determinism` and run from the same
:func:`check_repo` walk.

Findings can be suppressed inline with a trailing comment naming the
rule ID or check slug::

    order = list(seen)  # repro: ignore[unsorted-serialization]
    value = hash(key)   # repro: ignore[DT204, DT205]
    anything_goes()     # repro: ignore

and rule sets are selected per tree with *profiles* (``library`` for
``src/repro``, relaxed ``tests``/``tools`` profiles for the test suite
and the CI scripts; see :data:`PROFILES`).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.verify.findings import Report, Severity
from repro.verify.rules import RULE_OF_CHECK, RULES, resolve_rule

#: Builtin exceptions whose direct raising the lint flags.
BANNED_RAISES = frozenset(
    {
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "AttributeError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OSError",
        "IOError",
        "Exception",
        "BaseException",
    }
)

#: Exceptions that are fine to raise anywhere (abstract methods,
#: control flow, test plumbing).
EXEMPT_RAISES = frozenset(
    {
        "NotImplementedError",
        "StopIteration",
        "StopAsyncIteration",
        "SystemExit",
        "KeyboardInterrupt",
        "AssertionError",
    }
)

#: Files (relative to the package root, posix separators) allowed to
#: import the stdlib ``random`` module.
RNG_ALLOWLIST = frozenset({"common/rng.py"})

#: Files allowed to call ``time.time()`` (and the other wall-clock reads
#: covered by the determinism rule DT202).
TIME_ALLOWLIST = frozenset({"sim/timing.py"})

#: Call targets that build a fresh mutable object per call-site — banned
#: as parameter defaults just like the literal forms.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})

#: Every check slug the repo walk can evaluate, in documentation order.
ALL_CHECKS: Tuple[str, ...] = (
    "rng-discipline",
    "time-discipline",
    "exception-hierarchy",
    "mutable-default",
    "call-replication",
    "unsorted-serialization",
    "wallclock-escape",
    "unseeded-entropy",
    "hash-order-dependence",
    "unordered-float-reduction",
    "worker-closure-capture",
    "unseeded-backoff",
    "wallclock-in-recorder",
)

#: Named rule sets.  ``library`` is the full set (``src/repro``);
#: ``tools`` relaxes the exception hierarchy for stand-alone CI scripts
#: (they print and exit, they do not export catchable errors); ``tests``
#: additionally drops the rng/time discipline (tests drive fixed seeds
#: through public APIs and may legitimately measure wall time) and the
#: hash rule (hashability assertions are normal test material).
PROFILES: Dict[str, frozenset] = {
    "library": frozenset(ALL_CHECKS),
    "tools": frozenset(ALL_CHECKS) - {"exception-hierarchy"},
    "tests": frozenset(ALL_CHECKS)
    - {
        "exception-hierarchy",
        "rng-discipline",
        "time-discipline",
        "hash-order-dependence",
    },
}

#: ``# repro: ignore`` / ``# repro: ignore[rule-a, rule-b]``.
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([^\]]*)\])?")


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def default_targets() -> List[Tuple[Path, str]]:
    """The (root, profile) pairs ``verify repo`` lints by default.

    The library package always; the repository's ``tests``, ``tools``
    and ``benchmarks`` trees when present next to ``src`` (an installed
    wheel has no such trees — then only the package is linted).
    """
    package = default_root()
    targets: List[Tuple[Path, str]] = [(package, "library")]
    repo = package.parent.parent
    for name, profile in (
        ("tests", "tests"),
        ("tools", "tools"),
        ("benchmarks", "tools"),
    ):
        candidate = repo / name
        if candidate.is_dir():
            targets.append((candidate, profile))
    return targets


class FileLint:
    """Per-file finding emitter: profile filtering + inline suppression.

    Rules report through :meth:`error` / :meth:`warning`; a finding is
    dropped when its check is outside the active profile or its line
    carries a matching ``# repro: ignore`` comment (counted, and
    surfaced as one INFO finding per file).
    """

    def __init__(
        self,
        report: Report,
        relative: str,
        enabled: frozenset,
        suppressions: Dict[int, Optional[Set[str]]],
    ) -> None:
        self.report = report
        self.relative = relative
        self.enabled = enabled
        self.suppressions = suppressions
        self.suppressed = 0

    def _emit(
        self, severity: Severity, check: str, message: str, lineno: int
    ) -> None:
        if check not in self.enabled:
            return
        rule = RULE_OF_CHECK.get(check, "")
        rules_ignored = self.suppressions.get(lineno)
        if rules_ignored is not None:  # a bare ignore stores an empty set
            if not rules_ignored or rule in rules_ignored:
                self.suppressed += 1
                return
        self.report.add(
            check,
            severity,
            message,
            location=f"{self.relative}:{lineno}",
            rule=rule,
        )

    def error(self, check: str, message: str, lineno: int) -> None:
        self._emit(Severity.ERROR, check, message, lineno)

    def warning(self, check: str, message: str, lineno: int) -> None:
        self._emit(Severity.WARNING, check, message, lineno)

    def finish(self) -> None:
        if self.suppressed:
            self.report.info(
                "suppression",
                f"{self.suppressed} finding(s) suppressed inline",
                location=self.relative,
                rule="RP100",
            )


def _suppression_comments(source: str) -> List[Tuple[int, str]]:
    """(line, comment-text) pairs for real ``#`` comments only.

    Tokenizing (rather than regex over raw lines) keeps the suppression
    syntax inert inside strings and docstrings — documentation may quote
    ``# repro: ignore[...]`` without suppressing anything.
    """
    import io
    import tokenize

    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenizeError, SyntaxError):  # pragma: no cover
        pass  # unparsable files are reported separately (RP100)
    return comments


def _parse_suppressions(
    source: str, relative: str, report: Report
) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule IDs (empty set = all rules)."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, comment in _suppression_comments(source):
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        names = match.group(1)
        if names is None:
            suppressions[lineno] = set()
            continue
        rules: Set[str] = set()
        for name in names.split(","):
            name = name.strip()
            if not name:
                continue
            rule = resolve_rule(name)
            if rule is None:
                report.warning(
                    "structure",
                    f"suppression names unknown rule {name!r} (known: "
                    f"rule IDs {', '.join(sorted(RULES))} or their check "
                    f"slugs)",
                    location=f"{relative}:{lineno}",
                    rule="RP100",
                )
                continue
            rules.add(rule)
        suppressions[lineno] = rules
    return suppressions


def check_repo(
    root: Optional[Union[str, Path]] = None,
    profile: str = "library",
) -> Report:
    """Lint every Python source below ``root`` (default: the repro package).

    ``profile`` names the rule set (see :data:`PROFILES`).
    """
    from repro.common.errors import ValidationError

    if profile not in PROFILES:
        raise ValidationError(
            f"unknown lint profile {profile!r}; expected one of "
            f"{', '.join(sorted(PROFILES))}"
        )
    enabled = PROFILES[profile]
    root_path = Path(root).resolve() if root is not None else default_root()
    subject = f"repo {root_path}"
    if profile != "library":
        subject += f" [{profile}]"
    report = Report(subject=subject)
    for check in ALL_CHECKS:
        if check in enabled:
            report.ran(check)

    sources = sorted(root_path.rglob("*.py"))
    if not sources:
        report.error(
            "structure", f"no Python sources under {root_path}", rule="RP100"
        )
        return report

    trees: List[Tuple[Path, ast.AST, str]] = []
    for path in sources:
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            report.error(
                "structure",
                f"source does not parse: {exc.msg}",
                location=f"{_relative(path, root_path)}:{exc.lineno}",
                rule="RP100",
            )
            continue
        trees.append((path, tree, text))

    derived = _repro_error_classes(tree for _, tree, _ in trees)
    for path, tree, text in trees:
        relative = _relative(path, root_path)
        ctx = FileLint(
            report,
            relative,
            enabled,
            _parse_suppressions(text, relative, report),
        )
        _lint_file(tree, ctx, derived)
        from repro.verify.determinism import lint_tree

        lint_tree(tree, ctx)
        ctx.finish()
    report.info(
        "structure",
        f"linted {len(trees)} file(s) [{profile} profile], "
        f"{len(derived)} ReproError-derived class(es) known",
        rule="RP100",
    )
    return report


def _relative(path: Path, root: Path) -> str:
    return path.relative_to(root).as_posix()


# ---------------------------------------------------------------------- #
# Pass 1: resolve the ReproError class hierarchy by name
# ---------------------------------------------------------------------- #

def _repro_error_classes(trees: Iterable[ast.AST]) -> Set[str]:
    """Names of classes transitively derived from ReproError.

    Resolution is purely by name (the repo has a single flat exception
    module, so name collisions are not a concern worth an import graph).
    """
    bases: Dict[str, Set[str]] = {}
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases.setdefault(node.name, set()).update(
                    name for name in map(_base_name, node.bases) if name
                )
    derived = {"ReproError"}
    changed = True
    while changed:
        changed = False
        for name, base_names in bases.items():
            if name not in derived and base_names & derived:
                derived.add(name)
                changed = True
    return derived


def _base_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ---------------------------------------------------------------------- #
# Pass 2: per-file rules
# ---------------------------------------------------------------------- #

def _lint_file(tree: ast.AST, ctx: FileLint, derived: Set[str]) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random":
                    _flag_random(ctx, node.lineno)
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "random":
                _flag_random(ctx, node.lineno)
        elif isinstance(node, ast.Call):
            _lint_time_call(node, ctx)
            _lint_fromkeys(node, ctx)
        elif isinstance(node, ast.BinOp):
            _lint_replication(node, ctx)
        elif isinstance(node, ast.Raise):
            _lint_raise(node, ctx, derived)
        elif isinstance(node, ast.ClassDef):
            _lint_class(node, ctx, derived)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _lint_defaults(node, ctx)
            _lint_instance_replication(node, ctx)


def _flag_random(ctx: FileLint, lineno: int) -> None:
    if ctx.relative in RNG_ALLOWLIST:
        return
    ctx.error(
        "rng-discipline",
        "stdlib 'random' imported; draw from repro.common.rng streams so "
        "runs stay reproducible from a single seed",
        lineno,
    )


def _lint_time_call(node: ast.Call, ctx: FileLint) -> None:
    func = node.func
    is_time_time = (
        isinstance(func, ast.Attribute)
        and func.attr == "time"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    )
    if is_time_time and ctx.relative not in TIME_ALLOWLIST:
        ctx.error(
            "time-discipline",
            "time.time() called outside the timing shim; emulated time "
            "must come from bus cycles, not the host wall clock",
            node.lineno,
        )


def _lint_raise(node: ast.Raise, ctx: FileLint, derived: Set[str]) -> None:
    target = node.exc
    if target is None:  # bare re-raise
        return
    if isinstance(target, ast.Call):
        target = target.func
    name = _base_name(target)
    if name is None or name in EXEMPT_RAISES:
        return
    if name in BANNED_RAISES:
        ctx.error(
            "exception-hierarchy",
            f"raises builtin {name}; raise a ReproError subclass (e.g. "
            f"ValidationError) so callers can catch one library root",
            node.lineno,
        )
    elif name.endswith(("Error", "Exception")) and name not in derived:
        # Unknown ...Error names (e.g. from third-party modules) are left
        # alone; only classes defined in this repo are held to the rule.
        pass


def _lint_class(node: ast.ClassDef, ctx: FileLint, derived: Set[str]) -> None:
    if not node.name.endswith(("Error", "Exception")):
        return
    if node.name in derived or node.name == "ReproError":
        return
    base_names = {name for name in map(_base_name, node.bases) if name}
    # Only flag classes that are actually exception types.
    if base_names & (BANNED_RAISES | EXEMPT_RAISES | {"Warning"}) or not base_names:
        ctx.error(
            "exception-hierarchy",
            f"exception class {node.name} does not derive from ReproError; "
            f"add it to the repro.common.errors hierarchy",
            node.lineno,
        )


def _lint_defaults(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef], ctx: FileLint
) -> None:
    args = node.args
    for default in list(args.defaults) + [
        d for d in args.kw_defaults if d is not None
    ]:
        if _is_mutable_default(default):
            ctx.error(
                "mutable-default",
                f"function {node.name!r} has a mutable default argument; "
                f"the shared instance aliases across calls — default to "
                f"None (or a tuple) instead",
                default.lineno,
            )


def _lint_replication(node: ast.BinOp, ctx: FileLint) -> None:
    """Flag ``[expr()] * n``: n references to one shared call result."""
    if not isinstance(node.op, ast.Mult):
        return
    for operand in (node.left, node.right):
        if not isinstance(operand, (ast.List, ast.Tuple)):
            continue
        if any(
            isinstance(element, ast.Call) for element in operand.elts
        ):
            ctx.error(
                "call-replication",
                "sequence-of-calls replicated with '*': every slot shares "
                "the one object the call produced, so mutating any slot "
                "mutates all — build per-slot instances with a "
                "comprehension instead",
                node.lineno,
            )
            return


def _lint_fromkeys(node: ast.Call, ctx: FileLint) -> None:
    """Flag ``dict.fromkeys(keys, mutable)``: one value shared by all keys."""
    func = node.func
    if not (isinstance(func, ast.Attribute) and func.attr == "fromkeys"):
        return
    if len(node.args) < 2:
        return
    value = node.args[1]
    is_mutable = (
        isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                           ast.DictComp, ast.SetComp))
        or isinstance(value, ast.Call)
    )
    if is_mutable:
        ctx.error(
            "call-replication",
            "dict.fromkeys(keys, <mutable>) binds every key to the *same* "
            "value object, so mutating one entry mutates all — use a dict "
            "comprehension ({k: make() for k in keys}) instead",
            node.lineno,
        )


def _lint_instance_replication(
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef], ctx: FileLint
) -> None:
    """Flag ``[obj] * n`` where ``obj`` was built once from a constructor.

    ``obj = Meta(); rows = [obj] * n`` aliases the one dataclass instance
    across every slot exactly like ``[Meta()] * n`` — the comprehension-free
    spelling of the per-set metadata bug.  Constructor detection is by
    convention: a call to a CapWord callable in the same function body.
    """
    instance_names: Set[str] = set()
    statements = sorted(
        (child for child in ast.walk(node)
         if isinstance(child, (ast.Assign, ast.AnnAssign, ast.BinOp))),
        key=lambda child: (child.lineno, child.col_offset),
    )
    for child in statements:
        if isinstance(child, (ast.Assign, ast.AnnAssign)):
            value = child.value
            targets = (
                child.targets if isinstance(child, ast.Assign)
                else [child.target]
            )
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            if value is not None and _is_constructor_call(value):
                instance_names.update(names)
            else:
                instance_names.difference_update(names)
        elif isinstance(child, ast.BinOp) and isinstance(child.op, ast.Mult):
            for operand in (child.left, child.right):
                if not isinstance(operand, (ast.List, ast.Tuple)):
                    continue
                shared = [
                    element.id for element in operand.elts
                    if isinstance(element, ast.Name)
                    and element.id in instance_names
                ]
                if shared:
                    ctx.error(
                        "call-replication",
                        f"[{shared[0]}] * n replicates references to the one "
                        f"instance {shared[0]!r} built above — every slot "
                        f"aliases it; build per-slot instances with a "
                        f"comprehension instead",
                        child.lineno,
                    )
                    break


def _is_constructor_call(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _base_name(node.func)
    return bool(name) and name[:1].isupper()


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
        and not node.args
        and not node.keywords
    )
