"""Static model checking of coherence-protocol map files.

A malformed state table silently corrupts an entire emulation run: the real
board only catches it at self-test, but the map file is a finite artifact,
so we can do strictly better and *prove* properties before power-up.  The
checker operates on the JSON-level map structure (what
:meth:`repro.memories.protocol_table.ProtocolTable.to_map` produces and the
console uploads), so even tables too broken to construct a
``ProtocolTable`` still get precise findings instead of a load-time crash.

Invariants, in checking order:

``structure``
    The map parses: known operation / state names, INVALID never declared,
    no duplicate entries, well-formed fill rules.
``completeness``
    Every ``(operation, declared state)`` pair has a transition — the FPGA
    lookup must never fall off the table mid-run.
``fill-consistency``
    Fill rules agree with what the snoop responses imply: a read fill with
    peers holding the line must be SHARED (never an exclusive or dirty
    claim), a read fill alone must be clean, a write fill must be dirty.
``dirty-writeback``
    Modified data is never dropped: any transition that takes a dirty
    state clean or invalid must supply the data (``is_hit``), so the line
    has a write-back path out of every dirty state.
``reachability``
    No transition produces an undeclared state, and every declared state
    is actually reachable in the exhaustive model — a dead state (e.g.
    OWNED pasted into an MSI table) is a latent table-editing mistake.
``swmr``
    Single-writer/multiple-reader, proved by exhaustive exploration of
    2..N emulated nodes: no reachable state has two dirty copies of a
    line, or an EXCLUSIVE/MODIFIED copy coexisting with any other valid
    copy.  Violations come with a shortest concrete event trace.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.common.errors import ProtocolError
from repro.memories.protocol_table import (
    CacheOp,
    FillRules,
    LineState,
    ProtocolTable,
    Transition,
)
from repro.verify.findings import Report
from repro.verify.model import Exploration, ModelState, ProtocolModel

#: States a single node may legitimately hold alongside other valid copies.
_EXCLUSIVE_STATES = (LineState.EXCLUSIVE, LineState.MODIFIED)

#: Model sizes explored by default: pairwise interactions plus one size
#: with a third observer node (catches invariants that only break with an
#: extra sharer in the mix).
DEFAULT_NODE_COUNTS = (2, 3)

_FILL_LABELS = ("read_shared", "read_alone", "write")


def check_protocol(
    source: Union[str, Mapping, ProtocolTable],
    node_counts: Iterable[int] = DEFAULT_NODE_COUNTS,
) -> Report:
    """Statically verify one protocol table.

    Args:
        source: a builtin protocol name ("msi"), a map-file dict, or an
            already-constructed :class:`ProtocolTable`.
        node_counts: emulated node counts to model-check (each in 2..4).

    Returns:
        A :class:`Report`; ``report.ok`` means every invariant holds.
    """
    data = _as_map(source)
    name = str(data.get("name", "?")) if isinstance(data, Mapping) else "?"
    report = Report(subject=f"protocol {name!r}")

    parsed = _parse_structure(data, report)
    report.ran("structure")
    if parsed is None:
        return report
    states, transitions, fill = parsed

    complete = _check_completeness(states, transitions, report)
    _check_fill_consistency(states, transitions, fill, report)
    _check_dirty_writeback(states, transitions, report)
    _check_declared_targets(states, transitions, report)

    if complete and report.ok:
        model = ProtocolModel(transitions, fill)
        explorations = [model.explore(n) for n in sorted(set(node_counts))]
        _check_swmr(explorations, report)
        _check_reachability(states, explorations, report)
    else:
        report.info(
            "model",
            "model checking skipped: table is incomplete or structurally "
            "broken; fix the findings above first",
        )
    return report


def certify_builtin(name: str) -> Report:
    """Check a firmware-builtin table, memoised (builtins are immutable)."""
    cached = _BUILTIN_REPORTS.get(name)
    if cached is None:
        from repro.memories.protocol_table import load_protocol

        cached = check_protocol(load_protocol(name))
        _BUILTIN_REPORTS[name] = cached
    return cached


_BUILTIN_REPORTS: Dict[str, Report] = {}


# ---------------------------------------------------------------------- #
# Structure
# ---------------------------------------------------------------------- #

def _as_map(source: Union[str, Mapping, ProtocolTable]) -> Mapping:
    if isinstance(source, ProtocolTable):
        return source.to_map()
    if isinstance(source, str):
        from repro.memories.protocol_table import load_protocol

        return load_protocol(source).to_map()
    return source


def _parse_structure(
    data: Mapping, report: Report
) -> Optional[
    Tuple[
        Tuple[LineState, ...],
        Dict[Tuple[CacheOp, LineState], Transition],
        FillRules,
    ]
]:
    """Parse the map dict, reporting malformations; None when unusable."""
    if not isinstance(data, Mapping):
        report.error("structure", f"map file is not an object: {type(data).__name__}")
        return None
    for key in ("states", "fill", "transitions"):
        if key not in data:
            report.error("structure", f"map file is missing the {key!r} section")
    if not report.ok:
        return None

    states = []
    for entry in data["states"]:
        state = _state_named(entry, report, context="states")
        if state is None:
            continue
        if state is LineState.INVALID:
            report.error(
                "structure",
                "INVALID must not be declared; it is the absence of a line",
            )
            continue
        if state in states:
            report.warning("structure", f"state {state.name} declared twice")
            continue
        states.append(state)
    if not states:
        report.error("structure", "no usable states declared")
        return None

    transitions: Dict[Tuple[CacheOp, LineState], Transition] = {}
    for entry in data["transitions"]:
        if not isinstance(entry, Mapping):
            report.error("structure", f"transition entry is not an object: {entry!r}")
            continue
        op = _op_named(entry.get("op"), report)
        state = _state_named(entry.get("state"), report, context="transitions")
        next_state = _state_named(entry.get("next"), report, context="transitions")
        if op is None or state is None or next_state is None:
            continue
        key = (op, state)
        if key in transitions:
            report.warning(
                "structure",
                "duplicate transition entry; the last one wins on load",
                location=f"({op.name}, {state.name})",
            )
        transitions[key] = Transition(
            next_state=next_state, is_hit=bool(entry.get("hit", False))
        )

    fill_section = data["fill"]
    fill_states = {}
    for label in _FILL_LABELS:
        if not isinstance(fill_section, Mapping) or label not in fill_section:
            report.error("structure", f"fill rules are missing {label!r}")
            continue
        state = _state_named(fill_section[label], report, context="fill")
        if state is not None:
            fill_states[label] = state
    if len(fill_states) != len(_FILL_LABELS):
        return None
    fill = FillRules(**fill_states)
    if not report.ok:
        return None
    return tuple(states), transitions, fill


def _state_named(name: object, report: Report, context: str) -> Optional[LineState]:
    try:
        return LineState[str(name)]
    except KeyError:
        report.error(
            "structure",
            f"unknown state name {name!r} in {context}; "
            f"expected one of {[s.name for s in LineState]}",
        )
        return None


def _op_named(name: object, report: Report) -> Optional[CacheOp]:
    try:
        return CacheOp[str(name)]
    except KeyError:
        report.error(
            "structure",
            f"unknown operation name {name!r}; "
            f"expected one of {[o.name for o in CacheOp]}",
        )
        return None


# ---------------------------------------------------------------------- #
# Per-entry invariants
# ---------------------------------------------------------------------- #

def _check_completeness(states, transitions, report: Report) -> bool:
    """Every (op, declared state) pair defined."""
    report.ran("completeness")
    complete = True
    for op in CacheOp:
        for state in states:
            if (op, state) not in transitions:
                complete = False
                report.error(
                    "completeness",
                    f"no transition for ({op.name}, {state.name}); the "
                    f"node controller would fault mid-run on this lookup",
                    location=f"({op.name}, {state.name})",
                )
    return complete


def _check_fill_consistency(states, transitions, fill: FillRules,
                            report: Report) -> None:
    """Fill rules agree with the snoop responses that select them."""
    report.ran("fill-consistency")
    for label in _FILL_LABELS:
        state = getattr(fill, label)
        if state not in states:
            report.error(
                "fill-consistency",
                f"fill rule {label} uses undeclared state {state.name}",
                location=f"fill.{label}",
            )
    if fill.read_shared in _EXCLUSIVE_STATES or fill.read_shared.is_dirty:
        report.error(
            "fill-consistency",
            f"read_shared={fill.read_shared.name}: the snoop response said "
            f"another node holds the line, so the fill must be SHARED — an "
            f"exclusive or dirty claim breaks single-writer",
            location="fill.read_shared",
        )
    if fill.read_alone.is_dirty:
        report.error(
            "fill-consistency",
            f"read_alone={fill.read_alone.name}: a read miss installs clean "
            f"data; a dirty fill would later write back data the node never "
            f"produced",
            location="fill.read_alone",
        )
    if not fill.write.is_dirty:
        report.error(
            "fill-consistency",
            f"write={fill.write.name}: a write miss installs freshly "
            f"modified data; a clean fill state loses it on eviction",
            location="fill.write",
        )


def _check_dirty_writeback(states, transitions, report: Report) -> None:
    """No transition silently drops the only up-to-date copy."""
    report.ran("dirty-writeback")
    for state in states:
        if not state.is_dirty:
            continue
        for op in (CacheOp.REMOTE_READ, CacheOp.REMOTE_WRITE):
            transition = transitions.get((op, state))
            if transition is None:
                continue  # reported by completeness
            loses_data = (
                transition.next_state is LineState.INVALID
                or not transition.next_state.is_dirty
            )
            if loses_data and not transition.is_hit:
                report.error(
                    "dirty-writeback",
                    f"({op.name}, {state.name}) -> "
                    f"{transition.next_state.name} without supplying data: "
                    f"the only modified copy is dropped with no write-back "
                    f"path",
                    location=f"({op.name}, {state.name})",
                )
        local_read = transitions.get((CacheOp.LOCAL_READ, state))
        if local_read is not None and not local_read.next_state.is_dirty:
            report.warning(
                "dirty-writeback",
                f"(LOCAL_READ, {state.name}) demotes a dirty line to "
                f"{local_read.next_state.name}; the dirty bit (and its "
                f"eviction write-back) is silently lost",
                location=f"(LOCAL_READ, {state.name})",
            )
        castout = transitions.get((CacheOp.LOCAL_CASTOUT, state))
        if castout is not None and not castout.next_state.is_dirty:
            report.warning(
                "dirty-writeback",
                f"(LOCAL_CASTOUT, {state.name}) receives write-back data "
                f"but leaves the line clean in {castout.next_state.name}",
                location=f"(LOCAL_CASTOUT, {state.name})",
            )


def _check_declared_targets(states, transitions, report: Report) -> None:
    """Transitions may only produce declared states (or INVALID)."""
    report.ran("reachability")
    for (op, state), transition in sorted(transitions.items()):
        target = transition.next_state
        if target is not LineState.INVALID and target not in states:
            report.error(
                "reachability",
                f"({op.name}, {state.name}) transitions into {target.name}, "
                f"a state this protocol never declares or allocates",
                location=f"({op.name}, {state.name})",
            )


# ---------------------------------------------------------------------- #
# Model-checked invariants
# ---------------------------------------------------------------------- #

def _swmr_violation(lines: Tuple[LineState, ...]) -> Optional[str]:
    """Reason this line-state vector breaks SWMR, or None."""
    dirty = [s for s in lines if s.is_dirty]
    exclusive = [s for s in lines if s in _EXCLUSIVE_STATES]
    valid = [s for s in lines if s is not LineState.INVALID]
    if len(dirty) > 1:
        return (
            f"{len(dirty)} dirty copies of the line coexist "
            f"({'/'.join(s.name for s in dirty)}); writes diverge"
        )
    if exclusive and len(valid) > 1:
        return (
            f"an {exclusive[0].name} copy coexists with "
            f"{len(valid) - 1} other valid cop"
            f"{'y' if len(valid) == 2 else 'ies'}; the exclusive owner "
            f"writes while peers read stale data"
        )
    return None


def _check_swmr(explorations, report: Report) -> None:
    report.ran("swmr")
    for exploration in explorations:
        violation = _first_violation(exploration)
        if violation is None:
            continue
        state, reason = violation
        report.error(
            "swmr",
            f"single-writer/multiple-reader violated on "
            f"{exploration.n_nodes} nodes: {reason}",
            location=f"state ({', '.join(s.name for s in state[0])})",
            trace=exploration.trace_to(state),
        )
        return  # one counterexample is enough; avoid near-duplicates


def _first_violation(
    exploration: Exploration,
) -> Optional[Tuple[ModelState, str]]:
    # parents preserves BFS discovery order, so the first hit has a
    # shortest counterexample trace.
    for state in exploration.parents:
        reason = _swmr_violation(state[0])
        if reason is not None:
            return state, reason
    return None


def _check_reachability(states, explorations, report: Report) -> None:
    # "ran" already recorded by _check_declared_targets.
    reached = set()
    for exploration in explorations:
        reached.update(exploration.line_states_seen)
    for state in states:
        if state not in reached:
            report.error(
                "reachability",
                f"declared state {state.name} is dead: no fill rule or "
                f"reachable transition ever allocates it (checked "
                f"exhaustively on "
                f"{'/'.join(str(e.n_nodes) for e in explorations)} nodes)",
                location=state.name,
            )


# ---------------------------------------------------------------------- #
# Gate used by the console
# ---------------------------------------------------------------------- #

def require_verified(table: ProtocolTable,
                     node_counts: Iterable[int] = DEFAULT_NODE_COUNTS) -> Report:
    """Check a table and raise :class:`ProtocolError` when it fails.

    The console's upload path uses this so an unverified table never
    reaches a node controller FPGA unless explicitly forced.
    """
    if table.name in _BUILTIN_REPORTS:
        report = _BUILTIN_REPORTS[table.name]
    else:
        report = check_protocol(table, node_counts)
    if not report.ok:
        details = "\n".join(f.render() for f in report.errors)
        raise ProtocolError(
            f"protocol {table.name!r} failed verification "
            f"(pass force=True to load it anyway):\n{details}"
        )
    return report
