"""Findings and reports produced by the static verifiers.

Every analyser in :mod:`repro.verify` returns a :class:`Report` — an ordered
collection of :class:`Finding` objects, each naming the violated invariant
(``check``), a severity, a human message, the location of the defect and,
for model-checked properties, the concrete counterexample trace that
demonstrates the violation.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, List, Tuple


class Severity(enum.IntEnum):
    """How bad a finding is.

    ``ERROR`` findings make a report fail (the console refuses to program
    the board); ``WARNING`` findings are surfaced but do not block;
    ``INFO`` findings are purely informational.

    The enum totally orders severities (``ERROR > WARNING > INFO``), so
    findings sort most-severe-first via :meth:`Finding.sort_key`.
    """

    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Finding:
    """One verification result.

    Attributes:
        check: invariant / rule identifier (``"swmr"``, ``"completeness"``,
            ``"mutable-default"`` ...).
        severity: see :class:`Severity`.
        message: human explanation of the defect.
        location: where it was found — a ``(op, state)`` pair for protocol
            findings, ``node X`` for machine findings, ``path:line`` for
            lint findings.
        trace: counterexample event trace for model-checked invariants;
            each entry is one step ("event -> resulting system state").
        rule: stable rule ID (``RP105``, ``DT201`` ...) for suppression,
            baseline and SARIF keying; empty for analysers that predate
            rule IDs (the protocol/machine checkers key on ``check``).
    """

    check: str
    severity: Severity
    message: str
    location: str = ""
    trace: Tuple[str, ...] = ()
    rule: str = ""

    def render(self) -> str:
        """One- or multi-line rendering used by reports and the CLI."""
        label = f"{self.check}[{self.rule}]" if self.rule else self.check
        prefix = f"[{self.severity.name}] {label}: {self.message}"
        if self.location:
            prefix += f"  ({self.location})"
        if not self.trace:
            return prefix
        steps = "\n".join(
            f"    {index}. {step}" for index, step in enumerate(self.trace, 1)
        )
        return f"{prefix}\n  counterexample:\n{steps}"

    @property
    def path(self) -> str:
        """The file part of a ``path:line`` location ('' if not file-shaped)."""
        head, _, tail = self.location.rpartition(":")
        if head and tail.isdigit():
            return head
        return ""

    @property
    def line(self) -> int:
        """The line part of a ``path:line`` location (0 if not file-shaped)."""
        _, _, tail = self.location.rpartition(":")
        return int(tail) if self.path else 0

    def sort_key(self) -> tuple:
        """Most-severe-first, then by location/rule for stable output."""
        return (-int(self.severity), self.path, self.line,
                self.rule or self.check, self.message)

    def fingerprint(self) -> str:
        """Stable identity for baseline matching.

        Deliberately excludes the line number so findings survive
        unrelated edits above them; a defect is identified by its rule,
        its file and its message.
        """
        basis = "\x1f".join(
            (self.rule or self.check, self.path or self.location, self.message)
        )
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict:
        """JSON-ready form (the ``verify repo --format json`` record)."""
        data = {
            "rule": self.rule,
            "check": self.check,
            "severity": self.severity.name,
            "message": self.message,
            "location": self.location,
            "fingerprint": self.fingerprint(),
        }
        if self.trace:
            data["trace"] = list(self.trace)
        return data


@dataclass
class Report:
    """Outcome of one verification run over one subject.

    Attributes:
        subject: what was verified ("protocol 'mesi'", "machine 'split-2x4'",
            "repo src/repro" ...).
        findings: everything the analysers reported, in discovery order.
        checks_run: names of the invariants that were evaluated — so a
            clean report still documents what it proved.
    """

    subject: str
    findings: List[Finding] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Building
    # ------------------------------------------------------------------ #

    def add(
        self,
        check: str,
        severity: Severity,
        message: str,
        location: str = "",
        trace: Iterable[str] = (),
        rule: str = "",
    ) -> Finding:
        """Record one finding and return it."""
        finding = Finding(
            check=check,
            severity=severity,
            message=message,
            location=location,
            trace=tuple(trace),
            rule=rule,
        )
        self.findings.append(finding)
        return finding

    def error(self, check: str, message: str, location: str = "",
              trace: Iterable[str] = (), rule: str = "") -> Finding:
        return self.add(check, Severity.ERROR, message, location, trace, rule)

    def warning(self, check: str, message: str, location: str = "",
                rule: str = "") -> Finding:
        return self.add(check, Severity.WARNING, message, location, rule=rule)

    def info(self, check: str, message: str, location: str = "",
             rule: str = "") -> Finding:
        return self.add(check, Severity.INFO, message, location, rule=rule)

    def ran(self, check: str) -> None:
        """Record that an invariant was evaluated (even if it held)."""
        if check not in self.checks_run:
            self.checks_run.append(check)

    def merge(self, other: "Report", location_prefix: str = "") -> None:
        """Fold another report's findings into this one."""
        for finding in other.findings:
            location = finding.location
            if location_prefix:
                location = (
                    f"{location_prefix}: {location}" if location
                    else location_prefix
                )
            self.findings.append(
                Finding(
                    check=finding.check,
                    severity=finding.severity,
                    message=finding.message,
                    location=location,
                    trace=finding.trace,
                    rule=finding.rule,
                )
            )
        for check in other.checks_run:
            self.ran(check)

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity finding was recorded."""
        return not self.errors

    def by_check(self, check: str) -> List[Finding]:
        """Findings for one invariant."""
        return [f for f in self.findings if f.check == check]

    def by_rule(self, rule: str) -> List[Finding]:
        """Findings for one rule ID."""
        return [f for f in self.findings if f.rule == rule]

    def sorted_findings(self) -> List[Finding]:
        """Findings ordered most-severe-first (then by file, line, rule).

        Discovery order is kept in :attr:`findings`; serialized output
        (JSON, SARIF, baselines) uses this ordering so two runs over the
        same tree emit byte-identical artifacts regardless of analyser
        scheduling.
        """
        return sorted(self.findings, key=Finding.sort_key)

    def to_dict(self) -> dict:
        """JSON-ready form of the whole report, findings most-severe-first."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "checks_run": list(self.checks_run),
            "findings": [f.to_dict() for f in self.sorted_findings()],
        }

    def summary(self) -> str:
        """One-line verdict."""
        verdict = "PASS" if self.ok else "FAIL"
        return (
            f"{self.subject}: {verdict} "
            f"({len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.checks_run)} check(s) run)"
        )

    def render(self, verbose: bool = False) -> str:
        """Full human-readable report (what the CLI prints)."""
        lines = [f"=== verify {self.subject} ==="]
        shown = [
            f for f in self.findings
            if verbose or f.severity is not Severity.INFO
        ]
        for finding in shown:
            lines.append(finding.render())
        if not shown:
            lines.append("no findings")
        if self.checks_run:
            lines.append(f"checks run: {', '.join(self.checks_run)}")
        lines.append(self.summary())
        return "\n".join(lines)
