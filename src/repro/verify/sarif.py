"""SARIF 2.1.0 output for verify reports.

CI code-scanning services ingest SARIF (Static Analysis Results
Interchange Format); emitting it lets ``verify repo`` findings annotate
pull requests directly.  The document here is deliberately minimal — one
``run`` with the rule table from :mod:`repro.verify.rules`, one
``result`` per finding, locations mapped from the ``path:line`` finding
locations, and the repo's baseline fingerprint carried under
``partialFingerprints`` so scanning services track findings across
commits the same way the committed baseline file does.

Output is fully canonical: findings are ordered by
:meth:`~repro.verify.findings.Finding.sort_key` and keys are sorted at
serialization time, so identical trees produce byte-identical SARIF.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.verify.findings import Finding, Report, Severity
from repro.verify.rules import RULES

#: SARIF schema pin.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Severity -> SARIF result level.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _result(finding: Finding) -> dict:
    result = {
        "ruleId": finding.rule or finding.check,
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "partialFingerprints": {
            "reproFingerprint/v1": finding.fingerprint(),
        },
    }
    if finding.path:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": finding.line},
                }
            }
        ]
    elif finding.location:
        result["locations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.location},
                }
            }
        ]
    return result


def to_sarif(reports: Iterable[Report]) -> dict:
    """One SARIF document covering every report."""
    findings: List[Finding] = []
    for report in reports:
        findings.extend(report.sorted_findings())
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-verify",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static-analysis"
                        ),
                        "rules": [
                            {
                                "id": info.rule,
                                "name": info.check,
                                "shortDescription": {"text": info.summary},
                            }
                            for info in RULES.values()
                        ],
                    }
                },
                "results": [_result(finding) for finding in findings],
            }
        ],
    }


def render_sarif(reports: Iterable[Report]) -> str:
    """Serialized SARIF (sorted keys, newline-terminated)."""
    return json.dumps(to_sarif(reports), indent=2, sort_keys=True) + "\n"
