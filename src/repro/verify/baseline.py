"""Finding baselines: accept today's debt, fail on anything new.

A baseline file records the fingerprints of every known (grandfathered)
finding.  CI runs the analyzers, subtracts the baseline, and fails only
on findings that are *not* in it — so a rule can be introduced (or
tightened) without first fixing every historical hit, while any newly
written defect still breaks the build.

Fingerprints (:meth:`repro.verify.findings.Finding.fingerprint`) hash
the rule, the file and the message but *not* the line number, so a
baseline survives unrelated edits above a grandfathered finding.  Fixing
a finding leaves a stale entry behind; runs report stale entries so the
baseline can be re-recorded (``--update-baseline``) and monotonically
shrink.

File format (JSON, sorted, newline-terminated — diff-friendly)::

    {
      "version": 1,
      "findings": {
        "<fingerprint>": {"rule": "...", "location": "...", "message": "..."}
      }
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.common.errors import ValidationError
from repro.verify.findings import Finding, Report, Severity

#: Current baseline file schema version.
BASELINE_VERSION = 1


def _baselined(report: Report) -> List[Finding]:
    """The findings a baseline tracks: ERROR and WARNING only."""
    return [
        finding
        for finding in report.sorted_findings()
        if finding.severity is not Severity.INFO
    ]


def baseline_payload(reports: Iterable[Report]) -> dict:
    """The JSON-ready baseline document for a set of reports."""
    findings: Dict[str, dict] = {}
    for report in reports:
        for finding in _baselined(report):
            findings[finding.fingerprint()] = {
                "rule": finding.rule or finding.check,
                "location": finding.location,
                "message": finding.message,
            }
    return {
        "version": BASELINE_VERSION,
        "findings": {key: findings[key] for key in sorted(findings)},
    }


def write_baseline(
    reports: Iterable[Report], path: Union[str, Path]
) -> int:
    """Record the reports' findings as the new baseline; returns count."""
    payload = baseline_payload(reports)
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(payload["findings"])


def load_baseline(path: Union[str, Path]) -> Dict[str, dict]:
    """Load a baseline file, returning fingerprint -> recorded entry."""
    source = Path(path)
    try:
        payload = json.loads(source.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ValidationError(f"baseline file not found: {source}")
    except json.JSONDecodeError as exc:
        raise ValidationError(f"baseline file {source} is not JSON: {exc}")
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValidationError(
            f"baseline file {source} has no 'findings' object"
        )
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise ValidationError(
            f"baseline file {source} has version {version!r}; this tool "
            f"reads version {BASELINE_VERSION} — re-record it with "
            f"--update-baseline"
        )
    findings = payload["findings"]
    if not isinstance(findings, dict):
        raise ValidationError(
            f"baseline file {source}: 'findings' must be an object"
        )
    return findings


def apply_baseline(report: Report, baseline: Dict[str, dict]) -> Report:
    """Subtract baselined findings from a report.

    Returns a new report containing only findings absent from the
    baseline (plus the original INFO notes), with bookkeeping notes for
    how many findings the baseline absorbed.  Stale-entry detection is
    cross-report, so it lives in :func:`stale_fingerprints`.
    """
    filtered = Report(subject=report.subject)
    absorbed = 0
    for finding in report.findings:
        if (
            finding.severity is not Severity.INFO
            and finding.fingerprint() in baseline
        ):
            absorbed += 1
            continue
        filtered.findings.append(finding)
    for check in report.checks_run:
        filtered.ran(check)
    if absorbed:
        filtered.info(
            "baseline",
            f"{absorbed} known finding(s) absorbed by baseline",
            rule="RP100",
        )
    return filtered


def stale_fingerprints(
    reports: Iterable[Report], baseline: Dict[str, dict]
) -> List[str]:
    """Baseline entries no current finding matches (fixed debt).

    Stale entries do not fail a run, but surfacing them lets the
    baseline be re-recorded and shrink toward empty.
    """
    seen = {
        finding.fingerprint()
        for report in reports
        for finding in _baselined(report)
    }
    return [key for key in sorted(baseline) if key not in seen]
