"""Static verification of MemorIES programming artifacts.

The real board is programmable in three places — coherence-protocol state
tables, the target-machine description uploaded by the console, and the
reproduction's own source tree — and a mistake in any of them silently
corrupts days of emulation.  All three are finite, statically analysable
artifacts, so this package proves properties about them *before* power-up:

* :mod:`repro.verify.protocol` — exhaustive model checking of a protocol
  table over 2–4 emulated nodes (single-writer/multiple-reader,
  completeness, reachability, dirty write-back, fill consistency).
* :mod:`repro.verify.machine` — validation of a target-machine
  programming against the hardware envelope, the 40-bit counter wrap
  horizon and the protocol checker.
* :mod:`repro.verify.lint` — AST lint of repository invariants
  (rng/time discipline, the ReproError hierarchy, mutable defaults,
  call replication) with per-tree profiles and inline suppressions.
* :mod:`repro.verify.determinism` — determinism analyzer (unsorted
  serialization, wall-clock/entropy escapes, ``hash()`` dependence,
  unordered float reductions, worker closure capture).
* :mod:`repro.verify.baseline` / :mod:`repro.verify.sarif` — the
  grandfathering baseline and the SARIF/JSON CI output formats.

Results are uniform :class:`repro.verify.findings.Report` objects; the
console's :meth:`~repro.memories.console.MemoriesConsole.power_up`
refuses to program the board from a failing report unless forced.
Every rule carries a stable ID (:mod:`repro.verify.rules`) documented
in ``docs/static-analysis.md``.
"""

from repro.verify.baseline import (
    apply_baseline,
    load_baseline,
    stale_fingerprints,
    write_baseline,
)
from repro.verify.findings import Finding, Report, Severity
from repro.verify.lint import PROFILES, check_repo, default_targets
from repro.verify.rules import RULES, RuleInfo, resolve_rule
from repro.verify.sarif import render_sarif, to_sarif
from repro.verify.machine import check_machine
from repro.verify.model import Exploration, ProtocolModel
from repro.verify.protocol import (
    certify_builtin,
    check_protocol,
    require_verified,
)

__all__ = [
    "Exploration",
    "Finding",
    "PROFILES",
    "ProtocolModel",
    "Report",
    "RULES",
    "RuleInfo",
    "Severity",
    "apply_baseline",
    "certify_builtin",
    "check_machine",
    "check_protocol",
    "check_repo",
    "default_targets",
    "load_baseline",
    "render_sarif",
    "require_verified",
    "resolve_rule",
    "stale_fingerprints",
    "to_sarif",
    "write_baseline",
]
