"""Crash-safe run orchestration for long emulation campaigns.

The paper's headline runs are multi-day live monitoring sessions; this
package is what lets the reproduction survive the failures such runs
actually hit — console crashes, hung workers, a corrupt stretch of trace,
a directory bank gone bad — without losing committed work or silently
producing wrong counters.

* :mod:`repro.supervisor.journal` — the append-only run journal (JSONL
  WAL with per-line CRCs and torn-tail recovery).
* :mod:`repro.supervisor.spec` — the serialisable run recipe
  (:class:`SupervisedRunSpec`) and the deterministic chaos schedule
  (:class:`ChaosPlan`) the chaos harness uses.
* :mod:`repro.supervisor.worker` — the worker-shard process: restores a
  checkpoint, replays segments, checkpoints durably, reports commits.
* :mod:`repro.supervisor.supervisor` — :class:`RunSupervisor`: watchdog,
  bounded restarts with backoff, and the degradation ladder (quarantine
  corrupt segments, offline ECC-failing nodes).

The core guarantee: SIGKILL a supervised run at any moment, ``open()`` +
``run()`` the same directory, and the final counters are bit-identical
to an uninterrupted run; zero-fault supervised runs are bit-identical to
bare ``board.replay_words``.
"""

from repro.supervisor.journal import RunJournal
from repro.supervisor.spec import (
    ChaosPlan,
    SupervisedRunSpec,
    statistics_digest,
)
from repro.supervisor.supervisor import (
    RunSupervisor,
    SupervisedRunResult,
    SupervisorAbort,
    SupervisorError,
    backoff_delay,
    render_status,
)

__all__ = [
    "ChaosPlan",
    "RunJournal",
    "RunSupervisor",
    "SupervisedRunResult",
    "SupervisedRunSpec",
    "SupervisorAbort",
    "SupervisorError",
    "backoff_delay",
    "render_status",
    "statistics_digest",
]
