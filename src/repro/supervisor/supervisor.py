"""The run supervisor: watchdog, restarts, degradation, and the journal.

:class:`RunSupervisor` owns one *run directory*::

    run_dir/
      spec.json        — the SupervisedRunSpec (rebuilt on every resume)
      trace.seg.mies   — the staged v5 segmented trace (per-segment CRCs)
      journal.jsonl    — the append-only run journal (the WAL)
      checkpoints/     — rotated atomic checkpoints (ckpt-<segment>.json)
      supervisor.jsonl — telemetry spans + supervisor events (append-only)

The commit protocol: the worker makes a segment's checkpoint durable
*before* reporting it, and the supervisor journals the commit *after*
receiving the report — so the journal never references state that could
be lost, and anything after the last journaled commit is redone
deterministically on resume.  ``run()`` is therefore idempotent: kill the
process anywhere (including SIGKILL, including mid-checkpoint), call
``run()`` again, and the final counters are bit-identical to an
uninterrupted run.

The degradation ladder, in order of escalation:

1. **restart** — worker hang (watchdog deadline) or crash: kill, restore
   the last committed checkpoint, exponential backoff, bounded by
   ``max_restarts``.
2. **quarantine** — a trace segment failing its CRC is accounted as
   skipped (``board.segments_quarantined`` / ``records_skipped``) and the
   run continues; the gap is explicit in the journal and statistics.
3. **offline** — a node failing its ECC directory self-check is taken out
   of service (``board.offline_node``), bounded by ``max_offline_nodes``.
4. **fail** — anything beyond those budgets raises
   :class:`SupervisorError`; the journal still records how far the run got.

Watchdog deadlines are derived from emulated-cycle throughput: the
supervisor tracks cycles/second from worker heartbeats (sent by the
telemetry sampler) and allows each segment a generous multiple of its
expected time, floored by the spec's hard ``segment_deadline``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.bus.trace import BusTrace, TraceReader, TraceWriter
from repro.common.errors import ReproError, TraceFormatError, ValidationError
from repro.faults.checkpoint import (
    checkpoint_generation,
    load_checkpoint_payload,
)
from repro.supervisor.journal import RunJournal
from repro.supervisor.spec import (
    ChaosPlan,
    SupervisedRunSpec,
    statistics_digest,
)
from repro.supervisor.worker import worker_main
from repro.telemetry.histogram import Histogram
from repro.telemetry.sink import JsonlSink
from repro.telemetry.spans import RunTrace, derive_trace_id

#: Watchdog slack: a segment may take this multiple of its expected wall
#: time (from the cycle-throughput EMA) before the worker is declared hung.
DEADLINE_SCALE = 4.0

#: Throughput EMA smoothing (weight of the newest observation).
_EMA_ALPHA = 0.3

#: Poll slice while an abort event is armed: the supervisor notices an
#: abort request within this many seconds even mid-watchdog-wait.
_ABORT_POLL = 0.05

#: Fractional spread of the seeded restart-backoff jitter: the n-th
#: restart sleeps ``base * 2**(n-1) * (1 + JITTER * u)`` with ``u`` drawn
#: from the run's seed (see :func:`backoff_delay`).
BACKOFF_JITTER = 0.25

#: Domain tag separating the backoff jitter stream from every other
#: consumer of the run seed (workloads, replacement policy, faults).
_BACKOFF_STREAM_TAG = 0xB0FF


class SupervisorError(ReproError):
    """A supervised run failed beyond its degradation budgets."""


class SupervisorAbort(ReproError):
    """The run was aborted by its controlling service (drain/deadline).

    Not a failure of the run itself: everything up to the last journaled
    commit stays durable, and ``RunSupervisor.open(run_dir).run()``
    continues the run bit-identically.  ``reason`` carries the structured
    cause (``"drain"``, ``"wall-deadline"``, ``"cycle-deadline"``).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"run aborted: {reason}")
        self.reason = reason


def backoff_delay(
    seed: int,
    base: float,
    attempt: int,
    jitter: float = BACKOFF_JITTER,
) -> float:
    """Deterministic exponential backoff with seed-derived jitter.

    Jitter decorrelates retry storms when many sessions share a host, but
    it must never make a kill-resume chaos run diverge — so the jitter for
    restart ``attempt`` of a run is a pure function of (run seed, attempt)
    and is captured in the journal's ``restart`` record.  Unseeded
    ``random`` in a backoff path is flagged by determinism rule DT207.
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([int(seed) & 0x7FFF_FFFF,
                                _BACKOFF_STREAM_TAG, int(attempt)])
    )
    return float(base * 2 ** (attempt - 1) * (1.0 + jitter * rng.random()))


class _WorkerFailure(Exception):
    """Internal: the worker crashed or hung; restartable."""


@dataclass
class SupervisedRunResult:
    """Outcome of a completed supervised run.

    ``degraded`` is the flag analysis must check before trusting absolute
    counts: a degraded run completed, but its counters under-represent
    the trace (quarantined segments) or the machine (offlined nodes).
    """

    digest: str
    statistics: dict
    offline_nodes: List[int] = field(default_factory=list)
    segments_quarantined: int = 0
    records_skipped: int = 0
    emulated_seconds: float = 0.0
    miss_ratios: dict = field(default_factory=dict)
    fault_counts: dict = field(default_factory=dict)
    restarts: int = 0

    @property
    def degraded(self) -> bool:
        return self.segments_quarantined > 0 or bool(self.offline_nodes)

    def to_dict(self) -> dict:
        return {
            "digest": self.digest,
            "statistics": self.statistics,
            "offline_nodes": list(self.offline_nodes),
            "segments_quarantined": self.segments_quarantined,
            "records_skipped": self.records_skipped,
            "emulated_seconds": self.emulated_seconds,
            "miss_ratios": {str(k): v for k, v in self.miss_ratios.items()},
            "fault_counts": dict(self.fault_counts),
            "restarts": self.restarts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SupervisedRunResult":
        return cls(
            digest=data["digest"],
            statistics=data["statistics"],
            offline_nodes=[int(n) for n in data.get("offline_nodes", [])],
            segments_quarantined=int(data.get("segments_quarantined", 0)),
            records_skipped=int(data.get("records_skipped", 0)),
            emulated_seconds=float(data.get("emulated_seconds", 0.0)),
            miss_ratios={
                int(k): float(v)
                for k, v in data.get("miss_ratios", {}).items()
            },
            fault_counts=data.get("fault_counts", {}),
            restarts=int(data.get("restarts", 0)),
        )


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class RunSupervisor:
    """Crash-safe orchestration of one segmented replay run.

    Build with :meth:`create` (stages a new run directory) or :meth:`open`
    (attaches to an existing one — the resume path).  :meth:`run` always
    continues from whatever the journal proves was committed, so "resume"
    is simply ``open`` + ``run``.
    """

    TRACE_NAME = "trace.seg.mies"
    SPEC_NAME = "spec.json"
    JOURNAL_NAME = "journal.jsonl"
    EVENTS_NAME = "supervisor.jsonl"

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)
        self.spec = SupervisedRunSpec.load(self.run_dir / self.SPEC_NAME)
        self.journal = RunJournal(self.run_dir / self.JOURNAL_NAME)
        start = self.journal.last("run_start")
        if start is None:
            raise ValidationError(
                f"{self.run_dir}: journal has no run_start record; "
                f"not a supervised run directory"
            )
        self.n_segments = int(start["segments"])
        self.total_records = int(start["records"])
        #: Deterministic trace identity: stamped into the journal's
        #: run_start by :meth:`create`; older journals fall back to the
        #: same derivation, so resumed runs rejoin their original trace.
        self.trace_id: str = str(
            start.get("trace")
            or derive_trace_id(
                start.get("machine", ""), self.spec.seed, self.run_dir.name
            )
        )
        #: Span ID of the enclosing service-session span, when this run
        #: belongs to a service (set by the service, never serialized).
        self.trace_parent: Optional[str] = None
        #: Latency histograms at the run's choke points.  Cycle-domain
        #: entries ride worker checkpoints (sampler-cursor style) so they
        #: stay bit-identical across kill/resume; restart backoff is
        #: rebuilt from the journal's deterministic ``delay`` records.
        self.histograms: Dict[str, Histogram] = {
            "restart_backoff": Histogram("restart_backoff", domain="wall"),
        }
        for record in self.journal.entries("restart"):
            self.histograms["restart_backoff"].observe(
                float(record.get("delay", 0.0))
            )
        self._launches = 0
        self._bad_generations: set = set()
        self._cycle = 0.0
        self._cycles_per_sec: Optional[float] = None
        self._last_cycle_wall: Optional[float] = None
        self._events: Optional[JsonlSink] = None
        self._trace: Optional[RunTrace] = None
        #: Service plumbing (set by the owning service, never serialized):
        #: when ``abort_event`` is set the supervisor reaps its worker at
        #: the next poll slice and raises :class:`SupervisorAbort` with
        #: ``abort_reason``; ``heartbeat_hook`` sees every worker
        #: heartbeat payload (cycle, transactions) — the service uses it
        #: for cycle-deadline enforcement and live telemetry fan-out.
        self.abort_event: Optional[threading.Event] = None
        self.abort_reason: str = "abort"
        self.heartbeat_hook: Optional[Callable[[dict], None]] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        spec: SupervisedRunSpec,
        trace: Union[np.ndarray, BusTrace, str, Path],
        run_dir: Union[str, Path],
    ) -> "RunSupervisor":
        """Stage a new run directory and journal its start.

        ``trace`` may be packed words, a :class:`BusTrace`, or a path to
        any readable trace file — it is re-staged into the run directory
        as a v5 segmented file so every segment is independently
        CRC-checked and random-accessible.
        """
        run_dir = Path(run_dir)
        if (run_dir / cls.JOURNAL_NAME).exists():
            raise ValidationError(
                f"{run_dir} already holds a supervised run; "
                f"open() it instead of create()"
            )
        run_dir.mkdir(parents=True, exist_ok=True)
        if isinstance(trace, (str, Path)):
            words = TraceReader(trace).load().words
        elif isinstance(trace, BusTrace):
            words = trace.words
        else:
            words = trace
        writer = TraceWriter(capacity=max(1, int(words.shape[0])))
        writer.extend_words(words)
        writer.save(
            run_dir / cls.TRACE_NAME,
            segment_records=spec.segment_records,
        )
        spec.save(run_dir / cls.SPEC_NAME)
        journal = RunJournal(run_dir / cls.JOURNAL_NAME)
        count = int(words.shape[0])
        segments = -(-count // spec.segment_records) if count else 0
        fingerprint = spec.machine.fingerprint()
        journal.append(
            "run_start",
            machine=fingerprint,
            records=count,
            segments=segments,
            segment_records=spec.segment_records,
            trace=derive_trace_id(fingerprint, spec.seed, run_dir.name),
        )
        journal.close()
        return cls(run_dir)

    @classmethod
    def open(cls, run_dir: Union[str, Path]) -> "RunSupervisor":
        """Attach to an existing run directory (the resume path)."""
        return cls(run_dir)

    def close(self) -> None:
        """Release the journal handle (safe after run(), which closes it)."""
        self.journal.close()

    # ------------------------------------------------------------------ #
    # Status
    # ------------------------------------------------------------------ #

    def committed_segment(self) -> int:
        """Highest journaled segment commit, or -1 before the first."""
        newest = -1
        for record in self.journal.entries("segment_commit"):
            newest = max(newest, int(record["segment"]))
        return newest

    def status(self) -> dict:
        """Journal-derived progress summary (also the CLI's ``status``)."""
        commits = self.journal.entries("segment_commit")
        quarantined = {
            int(r["segment"]) for r in commits if r.get("quarantined")
        }
        offlined = sorted(
            {int(r["node"]) for r in self.journal.entries("node_offlined")}
        )
        complete = self.journal.last("run_complete")
        return {
            "run_dir": str(self.run_dir),
            "segments": self.n_segments,
            "records": self.total_records,
            "committed": self.committed_segment() + 1,
            "quarantined_segments": sorted(quarantined),
            "offline_nodes": offlined,
            "restarts": len(self.journal.entries("restart")),
            "complete": complete is not None,
            "degraded": bool(quarantined or offlined),
            "torn_tail_recovered": self.journal.torn_tail,
        }

    # ------------------------------------------------------------------ #
    # The run loop
    # ------------------------------------------------------------------ #

    def run(self, chaos: Optional[ChaosPlan] = None) -> SupervisedRunResult:
        """Execute (or resume) the run to completion; returns the result.

        Idempotent: a completed run returns its journaled result without
        spawning anything.  ``chaos`` applies to the first worker launch
        only — restarted workers always run clean.
        """
        existing = self.journal.last("run_complete")
        if existing is not None:
            return SupervisedRunResult.from_dict(existing["result"])

        events_handle = open(self.run_dir / self.EVENTS_NAME, "a")
        self._events = JsonlSink(events_handle)
        # The journal seq at entry is a deterministic, strictly growing
        # incarnation tag: span IDs from a resumed supervisor never
        # collide with those an earlier (killed) incarnation emitted.
        epoch = self.journal.next_seq
        self._trace = RunTrace(
            sink=self._events,
            clock=lambda: self._cycle,
            label="supervisor",
            trace_id=self.trace_id,
            parent_id=self.trace_parent,
            span_prefix=f"supervisor-e{epoch}",
        )
        chaos = chaos if chaos is not None else self.spec.chaos
        restarts = len(self.journal.entries("restart"))
        try:
            with self._trace.span("run", epoch=epoch):
                while True:
                    try:
                        result = self._drive(chaos)
                        result.restarts = restarts
                        self.journal.append(
                            "run_complete", result=result.to_dict()
                        )
                        return result
                    except _WorkerFailure as failure:
                        chaos = None
                        restarts += 1
                        delay = backoff_delay(
                            self.spec.seed, self.spec.backoff_base, restarts
                        )
                        self._event(
                            "restart", reason=str(failure), n=restarts,
                            delay=delay,
                        )
                        self.journal.append(
                            "restart", reason=str(failure), n=restarts,
                            delay=delay,
                        )
                        self.histograms["restart_backoff"].observe(delay)
                        if restarts > self.spec.max_restarts:
                            raise SupervisorError(
                                f"restart budget exhausted after "
                                f"{restarts - 1} restarts: {failure}"
                            ) from failure
                        with self._trace.span("restart_backoff", n=restarts):
                            self._sleep(delay)
        finally:
            self._events.close()
            events_handle.close()
            self._events = None
            self._trace = None
            self.journal.close()

    # -- one worker lifetime ------------------------------------------- #

    def _drive(self, chaos: Optional[ChaosPlan]) -> SupervisedRunResult:
        start_segment, checkpoint = self._resume_point()
        proc, conn = self._spawn(chaos, start_segment, checkpoint)
        self._event(
            "worker_started",
            pid=proc.pid,
            start_segment=start_segment,
            checkpoint=str(checkpoint) if checkpoint else None,
        )
        try:
            ready = self._await(conn, proc, ("ready",))
            self._check_ready_digest(checkpoint, ready[2])
            self._reapply_offline(conn, proc)
            segment = start_segment
            while segment < self.n_segments:
                with self._trace.span("segment", index=segment):
                    self._run_segment(conn, proc, segment)
                segment += 1
            self._send(conn, ("finish",))
            final = self._await(conn, proc, ("final",))
            return SupervisedRunResult.from_dict(final[1])
        finally:
            self._reap(conn, proc)

    def _resume_point(self):
        """(start segment, checkpoint path) proven safe by the journal.

        Prefers the newest on-disk checkpoint generation that (a) fully
        validates, (b) has a matching journaled commit, and (c) has not
        been condemned by a ready-digest mismatch this run.  With no such
        generation the run restarts from scratch — the journal keeps the
        full history either way.
        """
        commits = {
            int(r["segment"]): r
            for r in self.journal.entries("segment_commit")
        }
        directory = self.run_dir / "checkpoints"
        candidates = sorted(directory.glob("ckpt-*.json"), reverse=True)
        for path in candidates:
            generation = checkpoint_generation(path)
            if generation is None or generation in self._bad_generations:
                continue
            if generation not in commits:
                # Durable but never journaled: the crash hit between
                # checkpoint write and journal append.  The commit never
                # happened; the segment will be redone.
                continue
            try:
                load_checkpoint_payload(path)
            except TraceFormatError:
                continue
            return generation + 1, path
        return 0, None

    def _check_ready_digest(self, checkpoint, digest: str) -> None:
        """Cross-check a restored worker against the journaled commit."""
        if checkpoint is None:
            return
        generation = checkpoint_generation(checkpoint)
        commit = None
        for record in reversed(self.journal.entries("segment_commit")):
            if int(record["segment"]) == generation:
                commit = record
                break
        if commit is not None and commit["digest"] != digest:
            self._bad_generations.add(generation)
            self._event(
                "checkpoint_digest_mismatch",
                segment=generation,
                expected=commit["digest"],
                got=digest,
            )
            raise _WorkerFailure(
                f"checkpoint ckpt-{generation:08d} restored to different "
                f"counters than journaled; falling back a generation"
            )

    def _reapply_offline(self, conn, proc) -> None:
        """Re-assert journaled node offlines (idempotent on the board).

        Covers the crash window between a journaled ``node_offlined`` and
        the next committed checkpoint: the WAL wins.
        """
        for record in self.journal.entries("node_offlined"):
            self._send(conn, ("offline", int(record["node"])))
            self._await(conn, proc, ("offlined",))

    def _run_segment(self, conn, proc, segment: int) -> None:
        """Drive one segment to its journaled commit (degrading as needed)."""
        parent_span = self._current_span_id()
        self._send(conn, ("segment", segment, False, parent_span))
        while True:
            message = self._await(conn, proc, ("commit", "error"))
            if message[0] == "commit":
                _, index, path, digest, info = message
                self.journal.append(
                    "segment_commit",
                    segment=int(index),
                    checkpoint=str(path),
                    digest=digest,
                    records=int(info.get("records", 0)),
                    quarantined=bool(info.get("quarantined", False)),
                    span=parent_span,
                )
                self._absorb_histograms(info.get("histograms"))
                return
            _, index, kind, detail = message
            if kind == "trace":
                self._quarantine(conn, int(index), str(detail))
            elif kind == "node":
                self._offline(conn, proc, int(index), detail)
                self._send(conn, ("segment", segment, False, parent_span))
            else:
                raise SupervisorError(
                    f"worker reported unknown error kind {kind!r}"
                )

    def _quarantine(self, conn, segment: int, detail: str) -> None:
        """Degradation rung 2: skip a trace segment that failed its CRC."""
        already = any(
            int(r["segment"]) == segment
            for r in self.journal.entries("quarantine")
        )
        if not already:
            self.journal.append("quarantine", segment=segment, reason=detail)
        self._event("quarantine", segment=segment, reason=detail)
        self._send(conn, ("segment", segment, True, self._current_span_id()))

    def _offline(self, conn, proc, segment: int, nodes) -> None:
        """Degradation rung 3: take ECC-failing nodes out of service."""
        offlined = {
            int(r["node"]) for r in self.journal.entries("node_offlined")
        }
        for node in nodes:
            node = int(node)
            if node in offlined:
                continue
            if len(offlined) >= self.spec.max_offline_nodes:
                raise SupervisorError(
                    f"node {node} failed its ECC self-check but the "
                    f"offline budget ({self.spec.max_offline_nodes}) is "
                    f"spent; run failed at segment {segment}"
                )
            self.journal.append("node_offlined", node=node, segment=segment)
            self._event("node_offlined", node=node, segment=segment)
            offlined.add(node)
            self._send(conn, ("offline", node))
            self._await(conn, proc, ("offlined",))

    # -- plumbing ------------------------------------------------------- #

    def _current_span_id(self) -> Optional[str]:
        return self._trace.current_span_id if self._trace else None

    def _absorb_histograms(self, states: Optional[dict]) -> None:
        """Adopt the worker's checkpoint-carried histogram snapshots."""
        if not states:
            return
        for domain in ("cycle", "wall"):
            for name, state in (states.get(domain) or {}).items():
                self.histograms[str(name)] = Histogram.from_state(state)

    def _spawn(self, chaos, start_segment: int, checkpoint):
        ctx = _mp_context()
        parent_conn, child_conn = ctx.Pipe()
        # Unique per worker lifetime (epoch x launch): a restarted
        # worker's span IDs never collide with its predecessor's.
        self._launches += 1
        prefix = f"worker-e{self.journal.next_seq}-{self._launches}"
        proc = ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                str(self.run_dir),
                self.spec.to_dict(),
                chaos.to_dict() if chaos else None,
                start_segment,
                str(checkpoint) if checkpoint else None,
                self.trace_id,
                prefix,
            ),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    def _send(self, conn, message) -> None:
        """Send one directive; a dead worker becomes a restartable failure.

        A SIGKILLed worker can be noticed either here (broken pipe on the
        next directive) or in :meth:`_await` (EOF on the reply) depending
        on timing; both must fold into the same restart path.
        """
        try:
            conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerFailure(f"worker died: {exc}") from exc

    def _await(self, conn, proc, kinds):
        """Next message of one of ``kinds``, absorbing heartbeats.

        Raises :class:`_WorkerFailure` when the worker dies or stays
        silent past the watchdog deadline, and :class:`SupervisorError`
        when it reports a fatal (deterministic, non-restartable) error.
        """
        while True:
            deadline = self._deadline()
            try:
                if not self._poll(conn, deadline):
                    raise _WorkerFailure(
                        f"watchdog: no worker progress within "
                        f"{deadline:.1f}s"
                    )
                message = conn.recv()
            except (EOFError, OSError) as exc:
                raise _WorkerFailure(f"worker died: {exc}") from exc
            tag = message[0]
            if tag == "heartbeat":
                self._note_heartbeat(message[1])
                continue
            if tag == "span":
                # A worker child span closed: persist it alongside the
                # supervisor's own spans so the run's whole tree lives in
                # one events file.
                if self._events is not None:
                    self._events.emit(message[1])
                continue
            if tag == "fatal":
                raise SupervisorError(
                    f"worker fatal error {message[1]}: {message[2]}"
                )
            if tag in kinds:
                return message
            raise _WorkerFailure(
                f"protocol error: unexpected worker message {tag!r}"
            )

    def _poll(self, conn, deadline: float) -> bool:
        """``conn.poll(deadline)``, sliced so an armed abort fires promptly.

        Without an abort event this is a single poll — byte-identical
        behaviour to the pre-service supervisor.  With one, the wait is
        chopped into :data:`_ABORT_POLL` slices and a set event raises
        :class:`SupervisorAbort` (the caller's ``finally`` reaps the
        worker; everything after the last journaled commit is redone on
        resume, deterministically).
        """
        if self.abort_event is None:
            return conn.poll(deadline)
        waited = 0.0
        while True:
            if self.abort_event.is_set():
                raise SupervisorAbort(self.abort_reason)
            remaining = deadline - waited
            if remaining <= 0:
                return False
            step = min(_ABORT_POLL, remaining)
            if conn.poll(step):
                return True
            waited += step

    def _sleep(self, delay: float) -> None:
        """Backoff sleep that an armed abort event can interrupt."""
        if self.abort_event is None:
            time.sleep(delay)
            return
        slept = 0.0
        while slept < delay:
            if self.abort_event.is_set():
                raise SupervisorAbort(self.abort_reason)
            step = min(_ABORT_POLL, delay - slept)
            time.sleep(step)
            slept += step

    def _note_heartbeat(self, payload: dict) -> None:
        if self.heartbeat_hook is not None:
            self.heartbeat_hook(payload)
        cycle = float(payload.get("cycle", 0.0))
        now = time.perf_counter()
        if (
            self._last_cycle_wall is not None
            and cycle > self._cycle
            and now > self._last_cycle_wall
        ):
            rate = (cycle - self._cycle) / (now - self._last_cycle_wall)
            if self._cycles_per_sec is None:
                self._cycles_per_sec = rate
            else:
                self._cycles_per_sec = (
                    _EMA_ALPHA * rate
                    + (1.0 - _EMA_ALPHA) * self._cycles_per_sec
                )
        self._cycle = max(self._cycle, cycle)
        self._last_cycle_wall = now

    def _deadline(self) -> float:
        """Per-segment watchdog deadline, throughput-derived when possible.

        Expected segment wall time = segment cycles / observed cycles per
        second; the worker gets :data:`DEADLINE_SCALE` times that, floored
        by the spec's hard ``segment_deadline`` so a cold EMA or a tiny
        segment never produces a hair-trigger kill.
        """
        base = self.spec.segment_deadline
        if self._cycles_per_sec and self._cycles_per_sec > 0:
            from repro.bus.bus import ADDRESS_TENURE_CYCLES

            cycles_per_tenure = (
                ADDRESS_TENURE_CYCLES / self.spec.assumed_utilization
            )
            expected = (
                self.spec.segment_records * cycles_per_tenure
                / self._cycles_per_sec
            )
            return max(base, DEADLINE_SCALE * expected)
        return base

    def _event(self, event: str, **fields) -> None:
        if self._events is not None:
            self._events.emit(
                {
                    "type": "supervisor",
                    "event": event,
                    "cycle": self._cycle,
                    **fields,
                }
            )

    def _reap(self, conn, proc) -> None:
        try:
            conn.close()
        except OSError:
            pass
        proc.join(timeout=2.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=2.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2.0)


def render_status(status: dict) -> str:
    """Console rendering of :meth:`RunSupervisor.status`."""
    lines = [
        f"supervised run {status['run_dir']}",
        f"  progress : {status['committed']}/{status['segments']} segments "
        f"({status['records']} records)",
        f"  restarts : {status['restarts']}",
    ]
    state = "complete" if status["complete"] else "in progress"
    if status["degraded"]:
        state += " (DEGRADED)"
    lines.append(f"  state    : {state}")
    if status["quarantined_segments"]:
        lines.append(
            f"  quarantined segments: "
            f"{', '.join(str(s) for s in status['quarantined_segments'])}"
        )
    if status["offline_nodes"]:
        lines.append(
            f"  offline nodes: "
            f"{', '.join(str(n) for n in status['offline_nodes'])}"
        )
    if status["torn_tail_recovered"]:
        lines.append("  journal  : torn tail dropped (crash mid-append)")
    return "\n".join(lines)
