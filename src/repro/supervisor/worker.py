"""The supervised worker shard: one process, one board, one directive loop.

:func:`worker_main` is the entry point the supervisor spawns (via
``multiprocessing``).  The worker rebuilds the board from the run spec,
restores the checkpoint it was handed, and then executes directives from
the supervisor over a duplex pipe:

``("segment", i, quarantine[, parent_span])``
    Replay trace segment ``i`` (or, with ``quarantine`` set, account it as
    skipped instead), checkpoint into the rotation, and report a commit.
    ``parent_span`` is the supervisor's open segment span ID: the
    worker's ``replay``/``checkpoint`` child spans attach under it.
``("offline", node)``
    Take one emulated node out of service (degradation rung 2).
``("finish",)``
    Emit the final sampler window and the run result, then exit.

The worker never writes the journal — that is the supervisor's log — but
it *does* own the checkpoint files: a checkpoint is made durable before
the commit message is sent, so by the time the supervisor journals the
commit, the state it references already survives a crash.  Anything the
worker did after its last acknowledged commit is redone after a restart;
the emulation is deterministic, so the redo is invisible in the counters.

Heartbeats ride the telemetry sampler: a pipe-backed sink receives every
sample record, so watchdog liveness comes from the same cadence machinery
(and the same checkpointed cursor) as the run's time series.  The same
pipe sink carries the worker's closed trace spans back to the supervisor
(tee-style: one channel, two record kinds), which persists them next to
its own spans — so a session's span tree spans processes without any
extra plumbing.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path
from typing import Optional

from repro.bus.trace import TraceReader
from repro.common.errors import ReproError, TraceFormatError
from repro.faults.checkpoint import CheckpointRotation, restore_checkpoint
from repro.supervisor.spec import (
    ChaosPlan,
    SupervisedRunSpec,
    statistics_digest,
)
from repro.telemetry.histogram import Histogram, split_histogram_states
from repro.telemetry.sampler import CounterSampler
from repro.telemetry.spans import RunTrace

#: Records replayed per chunk when a chaos kill must land mid-segment.
_CHAOS_CHUNK = 256


class _HeartbeatSink:
    """Forwards sampler records (as heartbeats) and spans to the supervisor.

    The worker's single back-channel: sample/final records become
    ``("heartbeat", …)`` liveness messages carrying the wrap-corrected
    deltas (so the service can render per-session counters without
    touching the run directory), and closed span records become
    ``("span", …)`` messages the supervisor persists into its events
    file.
    """

    def __init__(self, conn) -> None:
        self.conn = conn

    def emit(self, record: dict) -> None:
        try:
            if record.get("type") == "span":
                self.conn.send(("span", record))
                return
            self.conn.send(
                (
                    "heartbeat",
                    {
                        "seq": record.get("seq", 0),
                        "cycle": record.get("cycle", 0.0),
                        "transactions": record.get("transactions", 0),
                        "deltas": dict(record.get("deltas", {})),
                        "window": dict(record.get("window", {})),
                    },
                )
            )
        except (BrokenPipeError, OSError):
            # The supervisor is gone; the watchdog will reap us shortly.
            pass

    def close(self) -> None:
        pass


def _die_now() -> None:
    """Chaos hook: die the way a crashed process dies (no cleanup)."""
    os.kill(os.getpid(), signal.SIGKILL)


# --------------------------------------------------------------------- #
# Set-interleaved shard worker (sharded replay)
# --------------------------------------------------------------------- #


def shard_worker_main(task: dict) -> dict:
    """Replay one address shard on a private board; return reduced state.

    Entry point for :func:`repro.experiments.pipeline.sharded_replay` —
    importable at module top level so it survives pickling under the
    ``spawn`` start method.  ``task`` carries the target machine, the
    board parameters, and this shard's packed records (original bus
    order preserved within the shard).

    The per-shard board engine comes from the registry's capability
    prover (the same selection point as
    :meth:`~repro.memories.board.MemoriesBoard.replay_words`), so a
    worker can never run an engine the configuration does not grant.
    """
    from repro.engines.registry import select_board_engine
    from repro.memories.board import board_for_machine

    board = board_for_machine(
        task["machine"],
        seed=task["seed"],
        assumed_utilization=task["assumed_utilization"],
    )
    select_board_engine(board).replay(board, task["words"])
    return shard_payload(board)


def shard_payload(board) -> dict:
    """Reduce a shard board to the mergeable counter state.

    Everything :meth:`MemoriesBoard.statistics` reads, in raw
    (un-wrapped) form: raw counter values sum across shards and wrap
    only at read time, so merged 40-bit readouts alias exactly like a
    serial run's.
    """
    stats = board.address_filter.stats
    return {
        "filter_stats": {
            "observed": stats.observed,
            "forwarded": stats.forwarded,
            "filtered_io": stats.filtered_io,
            "filtered_interrupts": stats.filtered_interrupts,
            "filtered_sync": stats.filtered_sync,
            "filtered_retried": stats.filtered_retried,
        },
        "filter_buffer": _buffer_stats(board.address_filter.buffer),
        "global": board.global_counter.counters.state_dict(),
        "nodes": [
            {
                "counters": node.counters.state_dict(),
                "resilience": node.resilience.state_dict(),
                "buffer": _buffer_stats(node.buffer),
            }
            for node in board.firmware.nodes
        ],
        "retries_posted": board.retries_posted,
        "snoop_losses": board.snoop_losses,
    }


def _buffer_stats(buffer) -> dict:
    stats = buffer.stats
    return {
        "accepted": stats.accepted,
        "rejected": stats.rejected,
        "high_water": stats.high_water,
        "injected": stats.injected,
    }


def merge_shard_payloads(board, payloads) -> None:
    """Fold shard payloads into a fresh board, in place.

    Counter banks sum raw values (wrap-aware: the 40-bit mask applies at
    read time, after summation, exactly as one serial bank would alias);
    buffer high-water marks merge by maximum.  The caller guarantees the
    sharding preconditions (see
    :func:`repro.experiments.pipeline.validate_sharding`) under which
    these reductions reproduce the serial run bit for bit.
    """
    stats = board.address_filter.stats
    for payload in payloads:
        for field, value in payload["filter_stats"].items():
            setattr(stats, field, getattr(stats, field) + value)
        _merge_buffer_stats(board.address_filter.buffer, payload["filter_buffer"])
        _merge_counts(board.global_counter.counters, payload["global"])
        for node, node_payload in zip(board.firmware.nodes, payload["nodes"]):
            _merge_counts(node.counters, node_payload["counters"])
            _merge_counts(node.resilience, node_payload["resilience"])
            _merge_buffer_stats(node.buffer, node_payload["buffer"])
        board.retries_posted += payload["retries_posted"]
        board.snoop_losses += payload["snoop_losses"]


def _merge_counts(bank, raw: dict) -> None:
    merged = bank.state_dict()
    for name, value in raw.items():
        merged[name] = merged.get(name, 0) + int(value)
    bank.load_state_dict(merged)


def _merge_buffer_stats(buffer, raw: dict) -> None:
    stats = buffer.stats
    stats.accepted += int(raw["accepted"])
    stats.rejected += int(raw["rejected"])
    stats.injected += int(raw["injected"])
    high_water = int(raw["high_water"])
    if high_water > stats.high_water:
        stats.high_water = high_water


def worker_main(
    conn,
    run_dir: str,
    spec_data: dict,
    chaos_data: Optional[dict],
    start_segment: int,
    checkpoint_path: Optional[str],
    trace_id: Optional[str] = None,
    span_prefix: str = "worker",
) -> None:
    """Run the worker shard loop; exits when told to finish.

    Args:
        conn: the worker end of the supervisor's duplex pipe.
        run_dir: the run directory (trace, checkpoints).
        spec_data: :meth:`SupervisedRunSpec.to_dict` form of the spec.
        chaos_data: optional :meth:`ChaosPlan.to_dict` failure schedule.
        start_segment: first segment this worker will be asked to run.
        checkpoint_path: checkpoint to restore before reporting ready, or
            None for a fresh board (segment 0).
        trace_id: the run's deterministic trace identity; worker spans
            carry it so they join the supervisor's span tree.
        span_prefix: unique span-ID prefix for this worker lifetime.
    """
    try:
        _worker_loop(
            conn, Path(run_dir), spec_data, chaos_data, start_segment,
            checkpoint_path, trace_id, span_prefix,
        )
    except ReproError as exc:
        try:
            conn.send(("fatal", type(exc).__name__, str(exc)))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _worker_loop(
    conn,
    run_dir: Path,
    spec_data: dict,
    chaos_data: Optional[dict],
    start_segment: int,
    checkpoint_path: Optional[str],
    trace_id: Optional[str] = None,
    span_prefix: str = "worker",
) -> None:
    spec = SupervisedRunSpec.from_dict(spec_data)
    chaos = ChaosPlan.from_dict(chaos_data) if chaos_data else None
    reader = TraceReader(run_dir / "trace.seg.mies")
    segment_records, n_segments, total_records = reader.segment_info()

    board = spec.build_board()
    backchannel = _HeartbeatSink(conn)
    sampler = CounterSampler(
        sink=backchannel,
        every_transactions=spec.heartbeat_every,
        label="supervised",
    )
    board.attach_telemetry(sampler=sampler)
    trace = RunTrace(
        sink=backchannel,
        clock=lambda: board.now_cycle,
        label="worker",
        trace_id=trace_id,
        span_prefix=span_prefix,
    )
    # Choke-point histograms.  The cycle-domain one is a pure function of
    # the replayed trace; riding the checkpoint (like the sampler cursor)
    # keeps it bit-identical across kill/resume — work redone after a
    # crash is never observed twice.
    histograms = {
        "segment_replay_cycles": Histogram(
            "segment_replay_cycles", domain="cycle"
        ),
        "segment_replay": Histogram("segment_replay", domain="wall"),
        "checkpoint_write": Histogram("checkpoint_write", domain="wall"),
    }
    injector = spec.build_injector(board)
    rotation = CheckpointRotation(
        run_dir / "checkpoints", keep=spec.keep_checkpoints
    )

    if checkpoint_path is not None:
        extra = restore_checkpoint(board, checkpoint_path)
        if injector is not None and extra and "injector" in extra:
            injector.load_state_dict(extra["injector"])
        for domain in ("cycle", "wall"):
            states = (extra or {}).get("histograms", {}).get(domain, {})
            for name, state in states.items():
                if name in histograms:
                    histograms[name].load_state_dict(state)

    conn.send(("ready", start_segment, statistics_digest(board.statistics())))

    kill_after = chaos.kill_after_records if chaos else None

    while True:
        directive = conn.recv()
        kind = directive[0]

        if kind == "finish":
            sampler.finish(board)
            result = {
                "digest": statistics_digest(board.statistics()),
                "statistics": board.statistics(),
                "offline_nodes": board.offline_nodes(),
                "segments_quarantined": board.segments_quarantined,
                "records_skipped": board.records_skipped,
                "emulated_seconds": board.emulated_seconds,
                "miss_ratios": {
                    node.index: node.miss_ratio()
                    for node in getattr(board.firmware, "nodes", [])
                },
                "fault_counts": (
                    injector.fault_counts() if injector else {}
                ),
            }
            conn.send(("final", result))
            return

        if kind == "offline":
            node = int(directive[1])
            board.offline_node(node)
            conn.send(("offlined", node))
            continue

        if kind != "segment":
            raise TraceFormatError(f"unknown supervisor directive {kind!r}")

        index = int(directive[1])
        quarantine = bool(directive[2])
        trace.parent_id = directive[3] if len(directive) > 3 else None
        records = min(segment_records, total_records - index * segment_records)

        if quarantine:
            board.note_segment_quarantined(records)
            _commit(
                conn, board, rotation, injector, index,
                {"quarantined": True, "records": records},
                trace, histograms,
            )
            continue

        # Chaos rung: plant an uncorrectable double bit flip so the
        # pre-segment self-check below reports this node as failing.
        if chaos and chaos.fail_node and chaos.fail_node[0] == index:
            _, node_index = chaos.fail_node
            chaos = ChaosPlan.from_dict({**chaos.to_dict(), "fail_node": None})
            _plant_uncorrectable(board, node_index)

        # Pre-segment directory health check.  On a clean board this is a
        # strict no-op (no counters, no line drops), so supervised runs
        # stay bit-identical to bare replays.
        failed = [
            node.index
            for node in getattr(board.firmware, "nodes", [])
            if node.index not in board.offline_nodes()
            and node.ecc_self_check() > 0
        ]
        if failed:
            conn.send(("error", index, "node", failed))
            continue

        try:
            words = reader.read_segment(index)
        except TraceFormatError as exc:
            conn.send(("error", index, "trace", str(exc)))
            continue

        replay = injector.replay_words if injector else board.replay_words
        begin_cycle = board.now_cycle
        begin_wall = time.perf_counter()
        with trace.span("replay", segment=index, records=records):
            if kill_after is not None and kill_after < records:
                # Replay up to the scheduled crash point, then die abruptly.
                done = 0
                while done < kill_after:
                    step = min(_CHAOS_CHUNK, kill_after - done)
                    replay(words[done : done + step])
                    done += step
                _die_now()
            replay(words)
        if kill_after is not None:
            kill_after -= records
        histograms["segment_replay_cycles"].observe(
            board.now_cycle - begin_cycle
        )
        histograms["segment_replay"].observe(
            time.perf_counter() - begin_wall
        )

        _commit(
            conn, board, rotation, injector, index, {"records": records},
            trace, histograms,
        )
        if chaos and chaos.kill_at_commit == index:
            _die_now()


def _commit(
    conn,
    board,
    rotation,
    injector,
    index: int,
    info: dict,
    trace: Optional[RunTrace] = None,
    histograms: Optional[dict] = None,
) -> None:
    """Make segment ``index`` durable, then report it to the supervisor."""
    extra = {"injector": injector.state_dict()} if injector else {}
    if histograms:
        cycle_states, wall_states = split_histogram_states(
            histograms.values()
        )
        # The cycle dict is the checkpointed cursor that keeps histogram
        # counts bit-identical across kill/resume; wall states ride along
        # for continuity but are inherently irreproducible.
        extra["histograms"] = {"cycle": cycle_states, "wall": wall_states}
    begin_wall = time.perf_counter()
    if trace is not None:
        with trace.span("checkpoint", segment=index):
            path = rotation.save(board, index, extra=extra or None)
    else:
        path = rotation.save(board, index, extra=extra or None)
    if histograms and "checkpoint_write" in histograms:
        histograms["checkpoint_write"].observe(
            time.perf_counter() - begin_wall
        )
        cycle_states, wall_states = split_histogram_states(
            histograms.values()
        )
        info = dict(info)
        info["histograms"] = {"cycle": cycle_states, "wall": wall_states}
    conn.send(
        (
            "commit",
            index,
            str(path),
            statistics_digest(board.statistics()),
            info,
        )
    )


def _plant_uncorrectable(board, node_index: int) -> None:
    """Chaos helper: make one node's directory fail its next self-check.

    Flips two data bits of one resident line without refreshing its check
    bits — beyond SECDED's single-bit correction, so verification reports
    UNCORRECTABLE.  Needs a resident line and an ECC directory; chaos
    tests arrange both.
    """
    node = board.firmware.nodes[node_index]
    directory = node.directory
    for set_index in range(directory.config.num_sets):
        if directory.ways_in_set(set_index) > 0:
            directory.inject_bit_flip(set_index, 0, 0)
            directory.inject_bit_flip(set_index, 0, 1)
            return
    raise TraceFormatError(
        f"chaos fail_node: node {node_index} has no resident lines to corrupt"
    )
