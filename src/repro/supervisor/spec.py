"""Supervised-run specification, board construction, and digests.

A :class:`SupervisedRunSpec` is the complete, JSON-serialisable recipe for
one supervised run: the target-machine programming, the (staged, v5
segmented) trace, segmentation and retention parameters, watchdog budgets,
and an optional fault plan.  It is written to ``spec.json`` in the run
directory when the run is created and re-read on every resume, so a
``supervise resume`` after a crash — or on a different console — rebuilds
exactly the same board.

:class:`ChaosPlan` is the test-only failure schedule the chaos harness
uses to make crashes deterministic (kill after N records, kill at a
commit boundary, corrupt one node's directory at a segment start).  It
lives here rather than in the tests so ``tools/chaos_smoke.py`` and CI
exercise the very same hooks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.common.errors import ValidationError
from repro.faults.plan import FaultPlan
from repro.memories.board import MemoriesBoard, board_for_machine
from repro.target.mapping import TargetMachine

#: Default records per replay segment (one commit per segment).
DEFAULT_SEGMENT_RECORDS = 100_000


def statistics_digest(statistics: dict) -> str:
    """Stable digest of a board statistics snapshot.

    The journal stores this per segment commit; resume cross-checks the
    restored board against it, so a checkpoint that restores into
    different counters is caught before any further replay.
    """
    canonical = json.dumps(statistics, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic failure schedule for chaos testing.

    Applied only to the *first* worker launch of a supervisor's run()
    (restarted workers run clean), so a test gets exactly one induced
    failure per scheduled site.

    Attributes:
        kill_after_records: SIGKILL the worker after replaying this many
            records of its first segment — a mid-segment crash.
        kill_at_commit: SIGKILL the worker immediately after committing
            segment N — a crash precisely on a commit boundary.
        fail_node: ``(segment, node)``: at the start of that segment,
            plant an uncorrectable double bit flip in that node's ECC
            directory so the per-segment self-check reports it.
    """

    kill_after_records: Optional[int] = None
    kill_at_commit: Optional[int] = None
    fail_node: Optional[Tuple[int, int]] = None

    def to_dict(self) -> dict:
        return {
            "kill_after_records": self.kill_after_records,
            "kill_at_commit": self.kill_at_commit,
            "fail_node": list(self.fail_node) if self.fail_node else None,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        fail_node = data.get("fail_node")
        return cls(
            kill_after_records=data.get("kill_after_records"),
            kill_at_commit=data.get("kill_at_commit"),
            fail_node=tuple(fail_node) if fail_node else None,
        )


@dataclass(frozen=True)
class SupervisedRunSpec:
    """Everything needed to (re)build and drive one supervised run.

    Attributes:
        machine: the target-machine programming (dict form rebuilds it).
        seed: board seed (replacement-policy RNG).
        ecc: protect directories with SECDED ECC (required for the
            node-offline rung of the degradation ladder to ever fire).
        segment_records: records per segment — the commit granularity.
        keep_checkpoints: checkpoint generations retained by rotation.
        max_restarts: restart budget before degradation kicks in.
        backoff_base: first restart delay, seconds (doubles per restart).
        heartbeat_every: worker heartbeat cadence, in replayed records.
        segment_deadline: hard per-segment wall deadline, seconds; the
            watchdog also derives a throughput-based deadline and uses
            whichever is larger.
        max_offline_nodes: how many nodes degradation may take offline
            before the run is declared failed rather than degraded.
        fault_plan: optional fault-injection overlay for the whole run.
        assumed_utilization: board clock model parameter.
    """

    machine: TargetMachine
    seed: int = 0
    ecc: bool = False
    segment_records: int = DEFAULT_SEGMENT_RECORDS
    keep_checkpoints: int = 3
    max_restarts: int = 3
    backoff_base: float = 0.05
    heartbeat_every: int = 10_000
    segment_deadline: float = 60.0
    max_offline_nodes: int = 1
    fault_plan: Optional[FaultPlan] = None
    assumed_utilization: float = 0.20
    chaos: Optional[ChaosPlan] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.segment_records < 1:
            raise ValidationError(
                f"segment_records must be >= 1, got {self.segment_records}"
            )
        if self.keep_checkpoints < 1:
            raise ValidationError(
                f"keep_checkpoints must be >= 1, got {self.keep_checkpoints}"
            )
        if self.max_restarts < 0:
            raise ValidationError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if self.heartbeat_every < 1:
            raise ValidationError(
                f"heartbeat_every must be >= 1, got {self.heartbeat_every}"
            )
        if self.segment_deadline <= 0:
            raise ValidationError(
                f"segment_deadline must be positive, got {self.segment_deadline}"
            )
        if self.fault_plan is not None:
            self.fault_plan.validate()

    # ------------------------------------------------------------------ #
    # Board construction
    # ------------------------------------------------------------------ #

    def build_board(self) -> MemoriesBoard:
        """A fresh board programmed exactly as this spec describes."""
        return board_for_machine(
            self.machine,
            seed=self.seed,
            assumed_utilization=self.assumed_utilization,
            ecc=self.ecc,
        )

    def build_injector(self, board: MemoriesBoard):
        """The fault overlay for ``board``, or None for clean runs."""
        if self.fault_plan is None or self.fault_plan.is_zero:
            return None
        from repro.faults.plan import FaultInjector

        return FaultInjector(board, self.fault_plan)

    # ------------------------------------------------------------------ #
    # Serialisation (spec.json in the run directory)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        data = {
            "machine": self.machine.to_dict(),
            "seed": self.seed,
            "ecc": self.ecc,
            "segment_records": self.segment_records,
            "keep_checkpoints": self.keep_checkpoints,
            "max_restarts": self.max_restarts,
            "backoff_base": self.backoff_base,
            "heartbeat_every": self.heartbeat_every,
            "segment_deadline": self.segment_deadline,
            "max_offline_nodes": self.max_offline_nodes,
            "assumed_utilization": self.assumed_utilization,
            "fault_plan": (
                self.fault_plan.to_dict() if self.fault_plan else None
            ),
        }
        # The chaos schedule deliberately does NOT serialise: it applies to
        # one launch of one process, never to a resumed run.
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SupervisedRunSpec":
        try:
            machine = TargetMachine.from_dict(data["machine"])
            fault_plan = (
                FaultPlan.from_dict(data["fault_plan"])
                if data.get("fault_plan")
                else None
            )
            return cls(
                machine=machine,
                seed=int(data.get("seed", 0)),
                ecc=bool(data.get("ecc", False)),
                segment_records=int(
                    data.get("segment_records", DEFAULT_SEGMENT_RECORDS)
                ),
                keep_checkpoints=int(data.get("keep_checkpoints", 3)),
                max_restarts=int(data.get("max_restarts", 3)),
                backoff_base=float(data.get("backoff_base", 0.05)),
                heartbeat_every=int(data.get("heartbeat_every", 10_000)),
                segment_deadline=float(data.get("segment_deadline", 60.0)),
                max_offline_nodes=int(data.get("max_offline_nodes", 1)),
                assumed_utilization=float(
                    data.get("assumed_utilization", 0.20)
                ),
                fault_plan=fault_plan,
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(f"malformed run spec: {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SupervisedRunSpec":
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValidationError(f"unreadable run spec {path}: {exc}") from exc
        return cls.from_dict(data)
