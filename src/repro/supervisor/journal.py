"""The append-only run journal: the supervisor's write-ahead log.

One JSONL file per supervised run.  Every line is a self-checking record::

    {"seq": 12, "crc": 309128375, "type": "segment_commit", ...}

``crc`` is the CRC32 of the record's canonical JSON encoding with the
``crc`` key removed; ``seq`` increments by one per line.  Appends are
fsynced, so once :meth:`RunJournal.append` returns, the record survives a
power cut.

The commit protocol the supervisor builds on this (checkpoint first, then
journal) means the journal is the single source of truth for resume: the
last ``segment_commit`` line names the checkpoint to restart from, and any
work the worker did after that line is simply redone — deterministically,
so the final counters cannot tell the difference.

Read-side tolerance is asymmetric, as a WAL's must be:

* a **torn tail** (partial last line, or a last line failing its CRC) is
  what a crash mid-append legitimately leaves behind — it is dropped, and
  :attr:`RunJournal.torn_tail` records that it happened;
* corruption **before** the tail means the log itself cannot be trusted
  and raises :class:`~repro.common.errors.TraceFormatError`.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import List, Optional, Union

from repro.common.errors import TraceFormatError


def _encode(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class _CorruptLine(ValueError):
    """Internal: a journal line failed validation (shape, CRC, or seq)."""


class RunJournal:
    """Append-only, CRC-per-line, fsync-per-append JSONL log.

    Args:
        path: the journal file; created empty on first append.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.records: List[dict] = []
        self.torn_tail = False
        self._handle = None
        self._load()

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #

    def _load(self) -> None:
        if not self.path.exists():
            return
        raw_lines = self.path.read_text().splitlines()
        for number, line in enumerate(raw_lines, start=1):
            line = line.strip()
            if not line:
                continue
            is_tail = number == len(raw_lines)
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise _CorruptLine("not an object")
                recorded_crc = int(record.pop("crc"))
                if zlib.crc32(_encode(record).encode("utf-8")) & 0xFFFFFFFF != recorded_crc:
                    raise _CorruptLine("CRC mismatch")
                if int(record["seq"]) != len(self.records):
                    raise _CorruptLine(
                        f"sequence gap: expected {len(self.records)}, "
                        f"got {record['seq']}"
                    )
            except (ValueError, KeyError, TypeError) as exc:
                if is_tail:
                    # A crash mid-append tears exactly the last line; that
                    # record was never acknowledged, so dropping it is the
                    # correct (and only safe) recovery.
                    self.torn_tail = True
                    return
                raise TraceFormatError(
                    f"{self.path}: journal line {number} is corrupt "
                    f"({exc}) and is not the tail — the log cannot be "
                    f"trusted"
                ) from exc
            self.records.append(record)

    def entries(self, record_type: Optional[str] = None) -> List[dict]:
        """All records, or just those of one ``type``, in append order."""
        if record_type is None:
            return list(self.records)
        return [r for r in self.records if r.get("type") == record_type]

    def last(self, record_type: str) -> Optional[dict]:
        """Newest record of one ``type``, or None."""
        for record in reversed(self.records):
            if record.get("type") == record_type:
                return record
        return None

    @property
    def next_seq(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #

    def append(self, record_type: str, **fields) -> dict:
        """Durably append one record; returns it (with seq filled in).

        The line only exists on disk in full or not at all from the
        reader's perspective: a torn write fails the line CRC and is
        dropped as tail damage on the next open.
        """
        record = {"type": record_type, "seq": len(self.records), **fields}
        line = _encode(record)
        crc = zlib.crc32(line.encode("utf-8")) & 0xFFFFFFFF
        full = _encode({**record, "crc": crc})
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # If the previous incarnation tore its tail, truncate it away
            # before appending so the file holds only validated records.
            if self.torn_tail:
                rewrite = "".join(
                    _encode(
                        {
                            **r,
                            "crc": zlib.crc32(_encode(r).encode("utf-8"))
                            & 0xFFFFFFFF,
                        }
                    )
                    + "\n"
                    for r in self.records
                )
                self.path.write_text(rewrite)
                self.torn_tail = False
            self._handle = open(self.path, "a")
        self._handle.write(full + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records.append(record)
        return record

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
