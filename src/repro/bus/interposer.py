"""The interposer card: measuring hosts with a different bus architecture.

Section 3 of the paper: the board "has the ability to plug directly into
the 6xx bus of the host machine at a maximum speed of 100MHz, or connect to
an **interposer card** to take measurements from systems with a different
bus architecture, such as an Intel X86 platform.  Different bus
architecture measurements require protocol conversion on the interposer
card, reprogramming of the FPGA, or changing the command map file if the
protocol is similar."

This module is that card: a :class:`CommandMap` (loadable, like the
protocol map files) translates a foreign bus's transaction encoding into
6xx commands, the :class:`InterposerCard` applies it plus agent-ID and
address translation, and forwards the converted stream to any MemorIES
board.  A P6-style front-side-bus command set ships as the built-in
``x86`` map.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

from repro.bus.bus import Monitor
from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import ConfigurationError, TraceFormatError


class ForeignCommand(enum.IntEnum):
    """A P6/FSB-style transaction encoding (the 'different bus').

    * ``BRL`` — burst read line (a code/data line fill).
    * ``BRIL`` — burst read invalidate line (read for ownership).
    * ``BWL`` — burst write line (dirty line write-back).
    * ``BIL`` — bus invalidate line (ownership upgrade, no data).
    * ``MEM_PARTIAL`` — partial (non-burst) memory access.
    * ``IO_IN`` / ``IO_OUT`` — I/O port accesses.
    * ``INT_ACK`` — interrupt acknowledge.
    * ``SPECIAL`` — fence/special cycles.
    """

    BRL = 0
    BRIL = 1
    BWL = 2
    BIL = 3
    MEM_PARTIAL = 4
    IO_IN = 5
    IO_OUT = 6
    INT_ACK = 7
    SPECIAL = 8


class CommandMap:
    """A loadable foreign-to-6xx command translation table.

    Entries map each :class:`ForeignCommand` either to a
    :class:`~repro.bus.transaction.BusCommand` or to ``None``, meaning the
    interposer drops the transaction before it reaches the board (the board
    would only filter it anyway).

    Args:
        name: map name, reported in statistics.
        entries: the translation table; must cover every foreign command.
    """

    def __init__(
        self,
        name: str,
        entries: Mapping[ForeignCommand, Optional[BusCommand]],
    ) -> None:
        missing = [cmd.name for cmd in ForeignCommand if cmd not in entries]
        if missing:
            raise ConfigurationError(
                f"command map {name!r} does not translate: {', '.join(missing)}"
            )
        self.name = name
        self._entries: Dict[int, Optional[BusCommand]] = {
            int(foreign): native for foreign, native in entries.items()
        }

    def translate(self, command: ForeignCommand) -> Optional[BusCommand]:
        """The 6xx command for a foreign one (None = dropped)."""
        return self._entries[int(command)]

    def to_map(self) -> dict:
        """Serialise to the JSON-compatible map-file structure."""
        return {
            "name": self.name,
            "entries": {
                ForeignCommand(foreign).name: (
                    native.name if native is not None else None
                )
                for foreign, native in sorted(self._entries.items())
            },
        }

    @classmethod
    def from_map(cls, data: Mapping) -> "CommandMap":
        """Deserialise a map file produced by :meth:`to_map`."""
        try:
            entries = {
                ForeignCommand[foreign]: (
                    BusCommand[native] if native is not None else None
                )
                for foreign, native in data["entries"].items()
            }
            return cls(str(data["name"]), entries)
        except (KeyError, TypeError) as exc:
            raise TraceFormatError(f"malformed command map file: {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        """Write the map file to disk."""
        Path(path).write_text(json.dumps(self.to_map(), indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CommandMap":
        """Read a map file from disk."""
        return cls.from_map(json.loads(Path(path).read_text()))


def x86_command_map() -> CommandMap:
    """The built-in P6-FSB-to-6xx command map."""
    return CommandMap(
        "x86",
        {
            ForeignCommand.BRL: BusCommand.READ,
            ForeignCommand.BRIL: BusCommand.RWITM,
            ForeignCommand.BWL: BusCommand.CASTOUT,
            ForeignCommand.BIL: BusCommand.DCLAIM,
            # Partial accesses are uncached traffic; model as reads so the
            # emulated caches snoop them, as uncached reads do on the 6xx.
            ForeignCommand.MEM_PARTIAL: BusCommand.READ,
            ForeignCommand.IO_IN: BusCommand.IO_READ,
            ForeignCommand.IO_OUT: BusCommand.IO_WRITE,
            ForeignCommand.INT_ACK: BusCommand.INTERRUPT,
            ForeignCommand.SPECIAL: BusCommand.SYNC,
        },
    )


@dataclass
class InterposerStats:
    """Conversion statistics the card's own counters keep."""

    observed: int = 0
    converted: int = 0
    dropped: int = 0
    remapped_agents: int = 0


class InterposerCard:
    """Protocol conversion between a foreign bus and a MemorIES board.

    Args:
        board: any board (or monitor) to forward converted tenures to.
        command_map: the translation table; defaults to the x86 map.
        agent_map: optional foreign-agent-ID -> CPU-ID remapping (foreign
            buses number their agents differently; the S7A-side board
            expects processors at IDs 0..15).  Unmapped agents pass
            through unchanged.
        address_offset: added to every converted address — lets a foreign
            machine's memory map coexist with host-side address
            expectations.
    """

    def __init__(
        self,
        board: Monitor,
        command_map: Optional[CommandMap] = None,
        agent_map: Optional[Mapping[int, int]] = None,
        address_offset: int = 0,
    ) -> None:
        self.board = board
        self.command_map = command_map if command_map is not None else x86_command_map()
        self.agent_map = dict(agent_map) if agent_map else {}
        self.address_offset = address_offset
        self.stats = InterposerStats()

    def observe_foreign(
        self,
        agent_id: int,
        command: ForeignCommand,
        address: int,
        snoop_response: SnoopResponse = SnoopResponse.NULL,
    ) -> SnoopResponse:
        """Convert one foreign transaction and forward it to the board."""
        self.stats.observed += 1
        native = self.command_map.translate(command)
        if native is None:
            self.stats.dropped += 1
            return SnoopResponse.NULL
        cpu_id = self.agent_map.get(agent_id, agent_id)
        if cpu_id != agent_id:
            self.stats.remapped_agents += 1
        self.stats.converted += 1
        return self.board.observe(
            BusTransaction(
                cpu_id=cpu_id,
                command=native,
                address=address + self.address_offset,
                snoop_response=snoop_response,
            )
        )

    def snapshot(self) -> dict:
        """Counter-style statistics dict."""
        return {
            "interposer.map": self.command_map.name,
            "interposer.observed": self.stats.observed,
            "interposer.converted": self.stats.converted,
            "interposer.dropped": self.stats.dropped,
            "interposer.remapped_agents": self.stats.remapped_agents,
        }
