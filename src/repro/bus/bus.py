"""The 6xx system bus: snoop combining, ordering and utilization accounting.

The bus connects *active* devices (host L2 caches and the memory controller,
which respond to tenures) and *passive* monitors (the MemorIES board), which
observe tenures but, per Section 3.4 of the paper, normally cannot stop or
inject them.  The one exception the paper allows — the address filter posting
a retry when its transaction buffers are completely full — is modeled via the
monitor's ``observe`` return value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol

from repro.bus.transaction import (
    BusCommand,
    BusTransaction,
    SnoopResponse,
    combine_snoop_responses,
)

#: Address-tenure occupancy in bus cycles.  The 6xx bus is split-transaction;
#: an address tenure occupies the address bus for a small fixed number of
#: cycles regardless of the data transfer size.
ADDRESS_TENURE_CYCLES = 2

#: Idle cycles charged between tenures when the bus is otherwise unoccupied.
#: Together with the observed tenure count this produces the 2–20% bus
#: utilization regime reported in Section 3.3.
DEFAULT_IDLE_CYCLES_PER_TENURE = 8

#: How many times a master re-arbitrates for a retried tenure before giving
#: up.  The 6xx protocol itself retries indefinitely; the model bounds it so
#: an injected always-retry fault cannot livelock the emulation.
DEFAULT_MAX_RETRIES = 8

#: Backoff before the first re-issue of a retried tenure, in bus cycles.
#: Doubles per attempt (capped) so a full buffer gets time to drain.
DEFAULT_RETRY_BACKOFF_CYCLES = 4

#: Ceiling on the exponential retry backoff.
_MAX_BACKOFF_CYCLES = 256


class Snooper(Protocol):
    """An active bus device that participates in the snoop phase."""

    def snoop(self, txn: BusTransaction) -> SnoopResponse:
        """React to an address tenure issued by another master."""
        ...


class Monitor(Protocol):
    """A passive device (the MemorIES board) observing completed tenures."""

    def observe(self, txn: BusTransaction) -> SnoopResponse:
        """Observe a tenure; may return RETRY only when buffers are full."""
        ...


@dataclass
class BusStats:
    """Running statistics of bus activity, as a logic analyser would see.

    Attributes:
        tenures: total address tenures issued.
        memory_tenures: tenures carrying coherent-memory commands.
        reads / rwitms / dclaims / castouts: per-command counts.
        io_ops: I/O register tenures.
        retries: logical tenures whose *first* attempt received a combined
            RETRY response (per-command counts and ``tenures`` also count
            each logical tenure once, regardless of re-issues).
        retry_reissues: re-arbitrated attempts for retried tenures; their
            bus occupancy and backoff idle time fold into
            ``busy_cycles`` / ``total_cycles`` and thus into utilization.
        retries_abandoned: tenures still retried after the master's bounded
            re-issue budget (the livelock guard tripping).
        busy_cycles: cycles the address bus was occupied.
        total_cycles: total elapsed bus cycles (busy + idle).
    """

    tenures: int = 0
    memory_tenures: int = 0
    reads: int = 0
    rwitms: int = 0
    dclaims: int = 0
    castouts: int = 0
    io_ops: int = 0
    retries: int = 0
    retry_reissues: int = 0
    retries_abandoned: int = 0
    busy_cycles: int = 0
    total_cycles: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of cycles the address bus was occupied (0.0–1.0)."""
        if self.total_cycles == 0:
            return 0.0
        return self.busy_cycles / self.total_cycles


@dataclass
class SystemBus:
    """A split-transaction snooping bus.

    Active snoopers are registered with :meth:`attach_snooper`; passive
    monitors with :meth:`attach_monitor`.  :meth:`issue` runs one address
    tenure end-to-end: snoop phase, response combining, monitor observation
    and statistics update, and returns the completed transaction (with
    ``seq`` and ``snoop_response`` filled in).

    Args:
        clock_hz: bus clock frequency; the S7A's 6xx bus runs at 100 MHz.
        idle_cycles_per_tenure: idle gap modeled between tenures, which sets
            the synthetic bus utilization level.
        max_retries: bounded re-issue budget per retried tenure (0 disables
            master re-issue entirely).
        retry_backoff_cycles: initial idle backoff before a re-issue;
            doubles per attempt up to a fixed ceiling.
    """

    clock_hz: int = 100_000_000
    idle_cycles_per_tenure: int = DEFAULT_IDLE_CYCLES_PER_TENURE
    max_retries: int = DEFAULT_MAX_RETRIES
    retry_backoff_cycles: int = DEFAULT_RETRY_BACKOFF_CYCLES
    stats: BusStats = field(default_factory=BusStats)

    def __post_init__(self) -> None:
        self._snoopers: List[Snooper] = []
        self._monitors: List[Monitor] = []
        self._seq = 0
        self._telemetry = None

    def attach_snooper(self, snooper: Snooper) -> None:
        """Register an active device (host L2, memory controller)."""
        self._snoopers.append(snooper)

    def attach_monitor(self, monitor: Monitor) -> None:
        """Register a passive monitor (a MemorIES board)."""
        self._monitors.append(monitor)

    def detach_monitor(self, monitor: Monitor) -> None:
        """Unplug a passive monitor."""
        self._monitors.remove(monitor)

    def attach_telemetry(self, sampler) -> None:
        """Wire a :class:`repro.telemetry.CounterSampler` into the bus.

        The sampler observes every completed logical tenure (after retry
        resolution) and emits windowed bus statistics — the live
        utilization series of Section 3.3's 2–20% regime.  Like the
        board's sampler it is a pure observer.
        """
        self._telemetry = sampler

    def detach_telemetry(self) -> None:
        """Return :meth:`issue` to the uninstrumented fast path."""
        self._telemetry = None

    @property
    def now_cycle(self) -> float:
        """Cycle-domain clock for telemetry (elapsed bus cycles)."""
        return float(self.stats.total_cycles)

    def statistics(self) -> dict:
        """Key-sorted integer counter snapshot of :class:`BusStats`.

        The same shape the board's :meth:`~repro.memories.board.MemoriesBoard.statistics`
        has, so one sampler implementation serves both; window-level
        utilization is derived by the sampler from the cycle deltas.
        """
        stats = self.stats
        return {
            "bus.busy_cycles": stats.busy_cycles,
            "bus.castouts": stats.castouts,
            "bus.dclaims": stats.dclaims,
            "bus.io_ops": stats.io_ops,
            "bus.memory_tenures": stats.memory_tenures,
            "bus.reads": stats.reads,
            "bus.retries": stats.retries,
            "bus.retries_abandoned": stats.retries_abandoned,
            "bus.retry_reissues": stats.retry_reissues,
            "bus.rwitms": stats.rwitms,
            "bus.tenures": stats.tenures,
            "bus.total_cycles": stats.total_cycles,
        }

    def issue(
        self,
        txn: BusTransaction,
        issuer: Optional[Snooper] = None,
    ) -> BusTransaction:
        """Run one address tenure and return the completed transaction.

        Every snooper other than ``issuer`` sees the tenure and contributes
        a snoop response.  Monitors then observe the *completed* tenure
        (command, address, requester and combined response) exactly as the
        MemorIES board does from the bus pins.

        A tenure whose combined response is RETRY is re-issued by the
        master after an exponential backoff, up to ``max_retries`` times —
        the 6xx master behaviour the paper relies on when the board's
        transaction buffers overflow.  Statistics count the *logical*
        tenure once (``tenures``, per-command counts, ``retries``); each
        re-arbitration adds to ``retry_reissues`` and to the cycle
        accounting, and a tenure still refused at the budget's end bumps
        ``retries_abandoned`` (the livelock guard).  The returned
        transaction is the final attempt, so its response is RETRY only
        when the tenure was ultimately abandoned.
        """
        completed = self._attempt(txn, issuer)
        self._account(completed)
        if completed.snoop_response is SnoopResponse.RETRY:
            stats = self.stats
            backoff = self.retry_backoff_cycles
            for _ in range(self.max_retries):
                # The master backs off (bus idle), then re-arbitrates: one
                # more address tenure's worth of occupancy, folded into
                # utilization.
                stats.total_cycles += backoff
                backoff = min(backoff * 2, _MAX_BACKOFF_CYCLES)
                stats.retry_reissues += 1
                stats.busy_cycles += ADDRESS_TENURE_CYCLES
                stats.total_cycles += ADDRESS_TENURE_CYCLES + self.idle_cycles_per_tenure
                completed = self._attempt(txn, issuer)
                if completed.snoop_response is not SnoopResponse.RETRY:
                    break
            else:
                stats.retries_abandoned += 1
        # One sampling opportunity per *logical* tenure, after retry
        # resolution, so windowed utilization includes re-issue occupancy.
        if self._telemetry is not None:
            self._telemetry.maybe_sample(self)
        return completed

    def _attempt(
        self, txn: BusTransaction, issuer: Optional[Snooper]
    ) -> BusTransaction:
        """One arbitration: snoop phase, response combining, monitors."""
        self._seq += 1
        responses = [
            snooper.snoop(txn) for snooper in self._snoopers if snooper is not issuer
        ]
        combined = combine_snoop_responses(responses)
        completed = txn.with_response(self._seq, combined)

        for monitor in self._monitors:
            monitor_response = monitor.observe(completed)
            if monitor_response is SnoopResponse.RETRY and combined is not SnoopResponse.RETRY:
                combined = SnoopResponse.RETRY
                completed = txn.with_response(self._seq, combined)
        return completed

    def _account(self, txn: BusTransaction) -> None:
        stats = self.stats
        stats.tenures += 1
        stats.busy_cycles += ADDRESS_TENURE_CYCLES
        stats.total_cycles += ADDRESS_TENURE_CYCLES + self.idle_cycles_per_tenure
        if txn.command.is_memory:
            stats.memory_tenures += 1
        if txn.command is BusCommand.READ:
            stats.reads += 1
        elif txn.command is BusCommand.RWITM:
            stats.rwitms += 1
        elif txn.command is BusCommand.DCLAIM:
            stats.dclaims += 1
        elif txn.command is BusCommand.CASTOUT:
            stats.castouts += 1
        elif txn.command in (BusCommand.IO_READ, BusCommand.IO_WRITE):
            stats.io_ops += 1
        if txn.snoop_response is SnoopResponse.RETRY:
            stats.retries += 1

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock time represented by the cycles elapsed so far."""
        return self.stats.total_cycles / self.clock_hz
