"""6xx bus commands, transactions and snoop responses.

The command set is the subset of the 6xx protocol that a passive cache
emulator cares about (Section 3.1 of the paper): coherent reads, reads with
intent to modify, ownership claims, castouts (write-backs), and the
non-memory operations the address-filter FPGA discards (I/O register
accesses, interrupts, synchronisation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable


class BusCommand(enum.IntEnum):
    """Bus command of an address tenure on the 6xx bus.

    Memory-coherent commands (the emulator processes these):

    * ``READ`` — coherent read; the issuing L2 will hold the line Shared or
      Exclusive depending on the combined snoop response.
    * ``RWITM`` — read with intent to modify; the issuing L2 will hold the
      line Modified and every other cache must invalidate.
    * ``DCLAIM`` — data claim (upgrade): the issuer already holds the line
      Shared and wants ownership without a data transfer.
    * ``CASTOUT`` — write-back of a modified line being evicted.

    Non-memory commands (filtered out by the address-filter FPGA):

    * ``IO_READ`` / ``IO_WRITE`` — I/O register accesses.
    * ``INTERRUPT`` — interrupt delivery tenure.
    * ``SYNC`` — memory-barrier tenure.
    """

    READ = 0
    RWITM = 1
    DCLAIM = 2
    CASTOUT = 3
    IO_READ = 4
    IO_WRITE = 5
    INTERRUPT = 6
    SYNC = 7

    @property
    def is_memory(self) -> bool:
        """True for commands that reference coherent memory."""
        return self in _MEMORY_COMMANDS

    @property
    def is_write_intent(self) -> bool:
        """True when the issuer will end up with a modified copy."""
        return self in (BusCommand.RWITM, BusCommand.DCLAIM)


_MEMORY_COMMANDS = frozenset(
    {BusCommand.READ, BusCommand.RWITM, BusCommand.DCLAIM, BusCommand.CASTOUT}
)


class SnoopResponse(enum.IntEnum):
    """A single snooper's response to an address tenure.

    Responses are ordered by priority; combining takes the maximum
    (:func:`combine_snoop_responses`), mirroring the wired-OR combining of
    the real bus.
    """

    NULL = 0
    SHARED = 1
    MODIFIED = 2
    RETRY = 3


def combine_snoop_responses(responses: Iterable[SnoopResponse]) -> SnoopResponse:
    """Combine individual snoop responses into the bus-wide response.

    ``RETRY`` dominates everything, ``MODIFIED`` dominates ``SHARED``,
    ``SHARED`` dominates ``NULL`` — exactly the priority encoding of the
    response phase on the 6xx bus.
    """
    combined = SnoopResponse.NULL
    for response in responses:
        if response > combined:
            combined = response
        if combined is SnoopResponse.RETRY:
            break
    return combined


@dataclass(frozen=True, slots=True)
class BusTransaction:
    """One address tenure observed on the bus.

    Attributes:
        seq: monotonically increasing tenure sequence number (assigned by
            the bus when the transaction is issued; 0 before issue).
        cpu_id: bus ID of the requesting master.  Processors are 0..11 on
            an S7A-class host; I/O bridges use IDs above
            :data:`repro.host.smp.MAX_PROCESSOR_ID`.
        command: the :class:`BusCommand`.
        address: physical byte address of the access.
        snoop_response: combined snoop response, filled in by the bus after
            the response phase (``NULL`` before issue).
    """

    cpu_id: int
    command: BusCommand
    address: int
    seq: int = 0
    snoop_response: SnoopResponse = SnoopResponse.NULL

    def with_response(self, seq: int, response: SnoopResponse) -> "BusTransaction":
        """Return a copy carrying the bus-assigned sequence and response."""
        return BusTransaction(
            cpu_id=self.cpu_id,
            command=self.command,
            address=self.address,
            seq=seq,
            snoop_response=response,
        )
