"""Software model of the 6xx SMP memory bus.

The real MemorIES board plugs into the 6xx bus of an IBM S7A-class server and
passively observes every address tenure.  This package models the pieces of
that bus the board can see: the command set (:mod:`repro.bus.transaction`),
snoop-response combining, the bus itself with utilization accounting
(:mod:`repro.bus.bus`), and the 8-byte packed trace-record format used both
by the board's trace-collection firmware and by offline replay
(:mod:`repro.bus.trace`).
"""

from repro.bus.transaction import (
    BusCommand,
    BusTransaction,
    SnoopResponse,
    combine_snoop_responses,
)
from repro.bus.bus import BusStats, SystemBus
from repro.bus.interposer import (
    CommandMap,
    ForeignCommand,
    InterposerCard,
    x86_command_map,
)
from repro.bus.trace import (
    BusTrace,
    TraceReader,
    TraceWriter,
    decode_record,
    encode_record,
)

__all__ = [
    "BusCommand",
    "BusStats",
    "BusTrace",
    "BusTransaction",
    "CommandMap",
    "ForeignCommand",
    "InterposerCard",
    "SnoopResponse",
    "SystemBus",
    "TraceReader",
    "TraceWriter",
    "combine_snoop_responses",
    "decode_record",
    "encode_record",
    "x86_command_map",
]
