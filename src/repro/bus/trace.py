"""8-byte packed bus-trace records.

The MemorIES trace-collection firmware stores each observed tenure as one
8-byte word in on-board SDRAM (Section 2.3: "up to 1 billion 8-byte wide bus
references at a time").  This module defines that record layout, a vectorised
numpy codec, and file-backed reader/writer objects used for offline replay
into the trace-driven simulator and into re-configured emulator boards.

Record layout (64 bits)::

    bits 63..56   cpu_id           (8 bits)
    bits 55..54   snoop response   (2 bits)
    bits 53..50   command          (4 bits)
    bits 49..0    physical address (50 bits; 1 PB of physical address space)
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import TraceFormatError

ADDRESS_BITS = 50
_ADDRESS_MASK = (1 << ADDRESS_BITS) - 1
_CMD_SHIFT = 50
_RESP_SHIFT = 54
_CPU_SHIFT = 56
_CMD_MASK = 0xF
_RESP_MASK = 0x3
_CPU_MASK = 0xFF

#: Magic + version header for trace files.  Version 1 stores raw packed
#: records; version 2 stores a zlib-compressed payload — the console-side
#: disk format for the multi-gigabyte traces the board collects (addresses
#: are highly regular, so compression routinely reaches 3-6x).  Versions 3
#: and 4 are the same two layouts followed by a CRC32 trailer over the
#: stored payload bytes, so disk corruption or truncation is detected at
#: load time instead of silently skewing replayed statistics.  Version 5 is
#: the *segmented* layout used by crash-safe supervised runs
#: (:mod:`repro.supervisor`): fixed-size runs of raw records, each followed
#: by its own CRC32 trailer, so a reader can seek straight to segment *i*
#: and verify exactly the bytes it replays — one rotted segment is
#: quarantinable instead of poisoning the whole file.  Writers emit the
#: CRC formats by default; all five versions load.
FILE_MAGIC = b"MIES"
FILE_VERSION = 1
FILE_VERSION_COMPRESSED = 2
FILE_VERSION_CRC = 3
FILE_VERSION_COMPRESSED_CRC = 4
FILE_VERSION_SEGMENTED = 5
_HEADER = struct.Struct("<4sHHQ")  # magic, version, reserved, record count
_CRC_TRAILER = struct.Struct("<I")  # CRC32 of the stored payload bytes
_SEGMENT_HEADER = struct.Struct("<I")  # records per segment (v5 only)

#: On-board SDRAM capacity of the current board revision, in records.
BOARD_TRACE_CAPACITY = 1_000_000_000


def encode_record(txn: BusTransaction) -> int:
    """Pack one transaction into its 64-bit record."""
    address = txn.address & _ADDRESS_MASK
    if txn.address != address:
        raise TraceFormatError(
            f"address {txn.address:#x} exceeds the {ADDRESS_BITS}-bit record field"
        )
    if not 0 <= txn.cpu_id <= _CPU_MASK:
        raise TraceFormatError(f"cpu_id {txn.cpu_id} does not fit in 8 bits")
    return (
        (txn.cpu_id << _CPU_SHIFT)
        | (int(txn.snoop_response) << _RESP_SHIFT)
        | (int(txn.command) << _CMD_SHIFT)
        | address
    )


def decode_record(word: int, seq: int = 0) -> BusTransaction:
    """Unpack one 64-bit record into a transaction."""
    return BusTransaction(
        cpu_id=(word >> _CPU_SHIFT) & _CPU_MASK,
        command=BusCommand((word >> _CMD_SHIFT) & _CMD_MASK),
        address=word & _ADDRESS_MASK,
        seq=seq,
        snoop_response=SnoopResponse((word >> _RESP_SHIFT) & _RESP_MASK),
    )


def encode_arrays(
    cpu_ids: np.ndarray,
    commands: np.ndarray,
    addresses: np.ndarray,
    responses: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised record packing; all inputs broadcast to a common length."""
    cpu_ids = np.asarray(cpu_ids, dtype=np.uint64)
    commands = np.asarray(commands, dtype=np.uint64)
    addresses = np.asarray(addresses, dtype=np.uint64)
    if np.any(addresses > _ADDRESS_MASK):
        raise TraceFormatError(f"an address exceeds the {ADDRESS_BITS}-bit field")
    words = (
        (cpu_ids << np.uint64(_CPU_SHIFT))
        | (commands << np.uint64(_CMD_SHIFT))
        | addresses
    )
    if responses is not None:
        words |= np.asarray(responses, dtype=np.uint64) << np.uint64(_RESP_SHIFT)
    return words


def decode_arrays(words: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised unpack: returns (cpu_ids, commands, addresses, responses)."""
    words = np.asarray(words, dtype=np.uint64)
    cpu_ids = (words >> np.uint64(_CPU_SHIFT)) & np.uint64(_CPU_MASK)
    commands = (words >> np.uint64(_CMD_SHIFT)) & np.uint64(_CMD_MASK)
    addresses = words & np.uint64(_ADDRESS_MASK)
    responses = (words >> np.uint64(_RESP_SHIFT)) & np.uint64(_RESP_MASK)
    return cpu_ids, commands, addresses, responses


def iter_rows(*columns: np.ndarray) -> Iterator[tuple]:
    """Row-iterate parallel numpy columns as native Python scalars.

    ``zip(a.tolist(), b.tolist(), ...)`` is the fastest way to walk numpy
    columns from Python — one bulk conversion instead of a boxed scalar per
    element — but spelling it out at every replay loop invites drift.  All
    scalar per-record loops (board dispatch, fault injection, the trace
    simulator, the host SMP) go through here or :func:`iter_decoded`.
    """
    return zip(*(np.asarray(column).tolist() for column in columns))


def iter_decoded(words: np.ndarray) -> Iterator[Tuple[int, int, int, int]]:
    """Decode packed records and iterate ``(cpu_id, command, address,
    response)`` rows as plain Python ints.

    The single shared consumer-side decode loop: any change to the record
    layout or to the decode fast path lands in every replay consumer at
    once.  Command/response fields are raw ints; callers needing enums wrap
    them (``BusCommand(command)``) or index a lookup table.
    """
    return iter_rows(*decode_arrays(words))


@dataclass
class BusTrace:
    """An in-memory bus trace: a numpy array of packed 64-bit records.

    This is the currency of the offline pipeline: the trace-collection
    firmware produces one, and the trace-driven simulator and re-configured
    emulator boards consume it.
    """

    words: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.uint64)
    )

    def __post_init__(self) -> None:
        self.words = np.ascontiguousarray(self.words, dtype=np.uint64)

    def __len__(self) -> int:
        return int(self.words.shape[0])

    def __iter__(self) -> Iterator[BusTransaction]:
        for seq, word in enumerate(self.words, start=1):
            yield decode_record(int(word), seq=seq)

    def __getitem__(self, index: int) -> BusTransaction:
        return decode_record(int(self.words[index]), seq=index + 1)

    def head(self, n: int) -> "BusTrace":
        """The first ``n`` records — how 'short trace' variants are derived."""
        return BusTrace(self.words[:n].copy())

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Decoded (cpu_ids, commands, addresses, responses) arrays."""
        return decode_arrays(self.words)

    @classmethod
    def from_transactions(cls, txns: Iterable[BusTransaction]) -> "BusTrace":
        """Build a trace from transaction objects (slow path; tests/tools)."""
        return cls(np.fromiter((encode_record(t) for t in txns), dtype=np.uint64))

    def concat(self, other: "BusTrace") -> "BusTrace":
        """Concatenate two traces."""
        return BusTrace(np.concatenate([self.words, other.words]))


class TraceWriter:
    """Accumulates records and writes the MemorIES trace file format.

    Mirrors the board's trace buffer: records accumulate in memory (chunked)
    up to ``capacity`` and are dumped to the console machine's disk with
    :meth:`save`.
    """

    def __init__(self, capacity: int = BOARD_TRACE_CAPACITY) -> None:
        self._chunks: List[np.ndarray] = []
        self._pending: List[int] = []
        self._count = 0
        self._capacity = capacity

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        """Maximum number of records this writer will hold."""
        return self._capacity

    @property
    def full(self) -> bool:
        """True once the on-board buffer capacity is exhausted."""
        return self._count >= self._capacity

    def append(self, txn: BusTransaction) -> bool:
        """Record one transaction; returns False if the buffer is full."""
        if self.full:
            return False
        self._pending.append(encode_record(txn))
        self._count += 1
        return True

    def append_raw(
        self, cpu_id: int, command: int, address: int, response: int
    ) -> bool:
        """Record one tenure from raw fields (the live-capture hot path)."""
        if self.full:
            return False
        self._pending.append(
            (cpu_id << _CPU_SHIFT)
            | (response << _RESP_SHIFT)
            | (command << _CMD_SHIFT)
            | (address & _ADDRESS_MASK)
        )
        self._count += 1
        return True

    def _flush_pending(self) -> None:
        if self._pending:
            self._chunks.append(np.array(self._pending, dtype=np.uint64))
            self._pending = []

    def extend_words(self, words: np.ndarray) -> int:
        """Bulk-append packed records; returns how many were accepted."""
        self._flush_pending()
        room = self._capacity - self._count
        accepted = words[:room]
        if accepted.size:
            self._chunks.append(np.ascontiguousarray(accepted, dtype=np.uint64))
            self._count += int(accepted.size)
        return int(accepted.size)

    def to_trace(self) -> BusTrace:
        """Snapshot the buffered records as an in-memory trace."""
        self._flush_pending()
        if not self._chunks:
            return BusTrace()
        if len(self._chunks) == 1:
            return BusTrace(self._chunks[0].copy())
        return BusTrace(np.concatenate(self._chunks))

    def save(
        self,
        path: Union[str, Path],
        compress: bool = False,
        crc: bool = True,
        segment_records: Optional[int] = None,
    ) -> None:
        """Write the trace file (header + packed records, little-endian).

        Args:
            compress: write the zlib-compressed payload; readers detect the
                version automatically.
            crc: append the CRC32 trailer (the current on-disk format);
                pass False to emit the legacy v1/v2 layouts.
            segment_records: write the segmented v5 layout, ``segment_records``
                records per independently-CRC'd segment (raw only; the
                supervised-run on-disk format).
        """
        import zlib

        trace = self.to_trace()
        if segment_records is not None:
            if compress or not crc:
                raise TraceFormatError(
                    "the segmented trace format is raw with per-segment CRCs; "
                    "compress/crc options do not apply"
                )
            if not 1 <= segment_records <= 0xFFFFFFFF:
                raise TraceFormatError(
                    f"segment_records {segment_records} outside [1, 2^32)"
                )
            with open(path, "wb") as f:
                f.write(
                    _HEADER.pack(FILE_MAGIC, FILE_VERSION_SEGMENTED, 0, len(trace))
                )
                f.write(_SEGMENT_HEADER.pack(segment_records))
                for start in range(0, len(trace), segment_records):
                    payload = (
                        trace.words[start : start + segment_records]
                        .astype("<u8")
                        .tobytes()
                    )
                    f.write(payload)
                    f.write(_CRC_TRAILER.pack(zlib.crc32(payload) & 0xFFFFFFFF))
            return
        payload = trace.words.astype("<u8").tobytes()
        if compress:
            payload = zlib.compress(payload, level=6)
            version = FILE_VERSION_COMPRESSED_CRC if crc else FILE_VERSION_COMPRESSED
        else:
            version = FILE_VERSION_CRC if crc else FILE_VERSION
        with open(path, "wb") as f:
            f.write(_HEADER.pack(FILE_MAGIC, version, 0, len(trace)))
            f.write(payload)
            if crc:
                f.write(_CRC_TRAILER.pack(zlib.crc32(payload) & 0xFFFFFFFF))


class TraceReader:
    """Reads trace files written by :class:`TraceWriter`."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)

    def _read_header(self, f) -> Tuple[int, int]:
        """Parse the common header; returns (version, record count)."""
        header = f.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise TraceFormatError(f"{self._path}: truncated header")
        magic, version, _reserved, count = _HEADER.unpack(header)
        if magic != FILE_MAGIC:
            raise TraceFormatError(f"{self._path}: bad magic {magic!r}")
        return version, count

    def segment_info(self) -> Tuple[int, int, int]:
        """v5 layout parameters: (segment_records, n_segments, record count).

        Raises:
            TraceFormatError: when the file is not the segmented format.
        """
        with open(self._path, "rb") as f:
            version, count = self._read_header(f)
            if version != FILE_VERSION_SEGMENTED:
                raise TraceFormatError(
                    f"{self._path}: version {version} is not the segmented "
                    "(v5) format"
                )
            seg_header = f.read(_SEGMENT_HEADER.size)
            if len(seg_header) < _SEGMENT_HEADER.size:
                raise TraceFormatError(f"{self._path}: truncated segment header")
            (segment_records,) = _SEGMENT_HEADER.unpack(seg_header)
        if segment_records < 1:
            raise TraceFormatError(f"{self._path}: zero-record segments")
        n_segments = -(-count // segment_records) if count else 0
        return segment_records, n_segments, count

    def read_segment(self, index: int) -> np.ndarray:
        """Random-access read of one v5 segment, verifying its own CRC.

        A corrupt or truncated segment raises :class:`TraceFormatError`
        identifying the segment — the unit a supervised run quarantines —
        while every other segment of the file stays readable.
        """
        import zlib

        segment_records, n_segments, count = self.segment_info()
        if not 0 <= index < n_segments:
            raise TraceFormatError(
                f"{self._path}: segment {index} outside [0, {n_segments})"
            )
        records = min(segment_records, count - index * segment_records)
        offset = (
            _HEADER.size
            + _SEGMENT_HEADER.size
            + index * (segment_records * 8 + _CRC_TRAILER.size)
        )
        with open(self._path, "rb") as f:
            f.seek(offset)
            payload = f.read(records * 8)
            trailer = f.read(_CRC_TRAILER.size)
        if len(payload) != records * 8 or len(trailer) < _CRC_TRAILER.size:
            raise TraceFormatError(
                f"{self._path}: segment {index} is truncated"
            )
        (expected,) = _CRC_TRAILER.unpack(trailer)
        if zlib.crc32(payload) & 0xFFFFFFFF != expected:
            raise TraceFormatError(
                f"{self._path}: segment {index} CRC mismatch — segment is corrupt"
            )
        return np.frombuffer(payload, dtype="<u8").astype(np.uint64)

    def load(self) -> BusTrace:
        """Load the whole file into memory as a :class:`BusTrace`.

        Detects and decompresses the zlib versions transparently, and
        verifies the CRC32 trailer of v3/v4 files before decoding — a
        corrupted or truncated trace raises
        :class:`~repro.common.errors.TraceFormatError` rather than
        replaying garbage.
        """
        import zlib

        with open(self._path, "rb") as f:
            version, count = self._read_header(f)
            if version == FILE_VERSION_SEGMENTED:
                _seg_records, n_segments, _count = self.segment_info()
                if n_segments == 0:
                    return BusTrace()
                return BusTrace(
                    np.concatenate(
                        [self.read_segment(i) for i in range(n_segments)]
                    )
                )
            if version not in (
                FILE_VERSION,
                FILE_VERSION_COMPRESSED,
                FILE_VERSION_CRC,
                FILE_VERSION_COMPRESSED_CRC,
            ):
                raise TraceFormatError(f"{self._path}: unsupported version {version}")
            payload = f.read()
        if version in (FILE_VERSION_CRC, FILE_VERSION_COMPRESSED_CRC):
            if len(payload) < _CRC_TRAILER.size:
                raise TraceFormatError(f"{self._path}: truncated CRC trailer")
            payload, trailer = payload[: -_CRC_TRAILER.size], payload[-_CRC_TRAILER.size :]
            (expected,) = _CRC_TRAILER.unpack(trailer)
            if zlib.crc32(payload) & 0xFFFFFFFF != expected:
                raise TraceFormatError(
                    f"{self._path}: CRC mismatch — trace file is corrupt"
                )
        if version in (FILE_VERSION_COMPRESSED, FILE_VERSION_COMPRESSED_CRC):
            try:
                payload = zlib.decompress(payload)
            except zlib.error as exc:
                raise TraceFormatError(
                    f"{self._path}: corrupt compressed payload: {exc}"
                ) from exc
        if len(payload) != count * 8:
            raise TraceFormatError(
                f"{self._path}: expected {count} records, file is truncated"
            )
        words = np.frombuffer(payload, dtype="<u8").astype(np.uint64)
        return BusTrace(words)

    def iter_chunks(self, chunk_records: int = 1 << 20) -> Iterator[np.ndarray]:
        """Stream the file in chunks of packed records (replay path).

        Works on the raw formats (v1, v3 and segmented v5); v3's CRC is
        accumulated chunk-by-chunk and verified after the final chunk, so a
        corrupt tail raises before the caller treats the replay as
        complete, while v5 yields one verified segment at a time (a bad
        segment raises when reached).
        """
        import zlib

        with open(self._path, "rb") as f:
            version, count = self._read_header(f)
            if version == FILE_VERSION_SEGMENTED:
                _seg_records, n_segments, _count = self.segment_info()
                for index in range(n_segments):
                    yield self.read_segment(index)
                return
            if version not in (FILE_VERSION, FILE_VERSION_CRC):
                raise TraceFormatError(
                    f"{self._path}: chunked reads need a raw (v1/v3) format; "
                    "use load() for compressed files"
                )
            running_crc = 0
            remaining = count
            while remaining > 0:
                take = min(chunk_records, remaining)
                payload = f.read(take * 8)
                if len(payload) != take * 8:
                    raise TraceFormatError(f"{self._path}: truncated payload")
                if version == FILE_VERSION_CRC:
                    running_crc = zlib.crc32(payload, running_crc)
                yield np.frombuffer(payload, dtype="<u8").astype(np.uint64)
                remaining -= take
            if version == FILE_VERSION_CRC:
                trailer = f.read(_CRC_TRAILER.size)
                if len(trailer) < _CRC_TRAILER.size:
                    raise TraceFormatError(f"{self._path}: truncated CRC trailer")
                (expected,) = _CRC_TRAILER.unpack(trailer)
                if running_crc & 0xFFFFFFFF != expected:
                    raise TraceFormatError(
                        f"{self._path}: CRC mismatch — trace file is corrupt"
                    )
