"""Command-line console for driving a MemorIES lab session.

The paper's console is an interactive program on a PC.  This module gives
the reproduction the same feel::

    python -m repro.cli            # interactive prompt
    python -m repro.cli session.txt   # scripted session

Commands (also shown by ``help``)::

    host <n_cpus> <l2_size> <l2_assoc> [scale]   build the host machine
    program single <size> [assoc]                one node, all CPUs
    program split <size> <procs_per_node>        coherent split target
    program multi <size> [size ...]              one config per group
    program file <path>                          load a saved programming
    save-machine <path>                          save the current programming
    workload tpcc|tpch|web [footprint]           choose the workload
    run <n_refs>                                 drive references live
    sweep <n_records> <size> [size ...]          capture once, sweep caches
    stats | report | describe | reset            console operations
    miss-ratios                                  per-node miss ratios
    save-trace <path> <n_records>                capture and dump a trace
    verify                                       verify the current programming
    engines [shards]                             replay-engine capability decisions
    faults                                       resilience report for the board
    watch [every_transactions]                   live telemetry dashboard
    supervise <run_dir>                          supervised-run journal status
    service <service_root>                       service manifest status
    timeline <run_dir>                           flight-recorder timeline
    help | quit

Static verification also runs stand-alone, before any board exists::

    python -m repro.cli verify protocol [name|map.json ...]
    python -m repro.cli verify machine <programming.json> [run_hours]
    python -m repro.cli verify repo [dir ...] [--profile P]
        [--format text|json|sarif] [--output FILE]
        [--baseline FILE] [--update-baseline]
    python -m repro.cli verify engines [programming.json] [--shards N]
        [--cache SIZE] [--expect a,b]

So do seeded fault-injection campaigns (see :mod:`repro.faults`)::

    python -m repro.cli faults run [--records N] [--seed S] [--drop R]
        [--flip R] [--burst R] [--burst-ops N] [--saturate R]
        [--no-ecc] [--scrub-interval C] [--out FILE]
    python -m repro.cli faults report <campaign.json>

And counter time-series campaigns (see :mod:`repro.telemetry`)::

    python -m repro.cli telemetry run [--records N] [--seed S] [--cache SIZE]
        [--every-tx M] [--every-cycles C] [--out FILE] [--deterministic]
    python -m repro.cli telemetry report <series.jsonl>
    python -m repro.cli telemetry export <series.jsonl> --format prom|jsonl
        [--deterministic]

And crash-safe supervised runs (see :mod:`repro.supervisor`)::

    python -m repro.cli supervise run <run_dir> [--records N] [--seed S]
        [--cache SIZE] [--trace FILE] [--segment-records N] [--ecc]
        [--keep N] [--max-restarts N] [--deadline SECONDS]
    python -m repro.cli supervise resume <run_dir>
    python -m repro.cli supervise status <run_dir>

And the multi-session emulation service (see :mod:`repro.service` and
docs/service.md)::

    python -m repro.cli service serve <root> [--host H] [--port P]
        [--max-workers N] [--tenant-workers N] [--queue-depth N]
        [--tenant-queue N] [--wall-deadline S] [--ingest-buffer N]
    python -m repro.cli service submit <host:port> [--records N] [--seed S]
        [--cache SIZE] [--tenant T] [--priority 0|1|2] [--label L]
        [--wall-deadline S] [--cycle-deadline C] [--wait]
    python -m repro.cli service status <host:port> [session]
    python -m repro.cli service tail <host:port> <session> [--limit N]

And post-hoc run forensics (see :mod:`repro.obs` and
docs/observability.md)::

    python -m repro.cli obs timeline <run_dir>
        [--format text|json|trace-event] [--out FILE]
    python -m repro.cli obs spans <run_dir>

Exit codes are disciplined for unattended use: 0 success, 1 a check ran
and failed, 2 validation error, 3 runtime fault, 4 run completed but
degraded, 5 a structured resource refusal — quota denied, queue full,
deadline exceeded (see docs/resilience.md and docs/service.md).

Sizes accept the paper's notation (``64MB``, ``1GB``); everything the CLI
builds is scaled by the session's scale factor (default 1024) so runs
complete interactively.
"""

from __future__ import annotations

import shlex
import sys
from typing import Callable, Dict, List, Optional

from repro.common.errors import ReproError
from repro.common.units import format_size, parse_size
from repro.experiments.params import ExperimentScale
from repro.experiments.pipeline import capture_records
from repro.host.smp import HostConfig, HostSMP
from repro.memories.config import CacheNodeConfig
from repro.memories.console import MemoriesConsole
from repro.target.configs import (
    multi_config_machine,
    single_node_machine,
    split_smp_machine,
)
from repro.workloads.base import Workload
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpch import TpchWorkload
from repro.workloads.web import WebWorkload


class CliError(ReproError):
    """A command was malformed or issued out of order."""


#: Exit-code discipline for unattended (cron/CI) runs; documented in
#: docs/resilience.md.  1 is reserved for "a check ran and failed"
#: (verify reports, zero-fault mismatch), so wrappers can branch on the
#: *class* of failure without parsing output.
EXIT_OK = 0
EXIT_CHECK_FAILED = 1
EXIT_VALIDATION = 2
EXIT_RUNTIME = 3
EXIT_DEGRADED = 4
EXIT_RESOURCE = 5


def classify_error(error: ReproError) -> int:
    """Map an error to the exit-code taxonomy.

    Validation errors (bad arguments, malformed specs/programmings) exit
    :data:`EXIT_VALIDATION`; runtime faults (corrupt files, emulation or
    supervision failures) exit :data:`EXIT_RUNTIME`; structured service
    refusals — quota denied, queue full, deadline exceeded — exit
    :data:`EXIT_RESOURCE` so fleet drivers can distinguish "resubmit
    later" from "fix your input".
    """
    from repro.common.errors import (
        ConfigurationError,
        ResourceError,
        ValidationError,
    )

    if isinstance(error, ResourceError):
        return EXIT_RESOURCE
    if isinstance(error, (CliError, ValidationError, ConfigurationError)):
        return EXIT_VALIDATION
    return EXIT_RUNTIME


class ConsoleSession:
    """State of one console session: host, board, workload."""

    def __init__(self, scale: int = 1024, seed: int = 0) -> None:
        self.scale = ExperimentScale(scale=scale)
        self.seed = seed
        self.host: Optional[HostSMP] = None
        self.console = MemoriesConsole()
        self.workload: Optional[Workload] = None
        self._commands: Dict[str, Callable[[List[str]], str]] = {
            "host": self._cmd_host,
            "program": self._cmd_program,
            "workload": self._cmd_workload,
            "run": self._cmd_run,
            "stats": self._cmd_console_passthrough,
            "report": self._cmd_console_passthrough,
            "reset": self._cmd_console_passthrough,
            "describe": self._cmd_console_passthrough,
            "verify": self._cmd_console_passthrough,
            "engines": self._cmd_engines,
            "faults": self._cmd_console_passthrough,
            "watch": self._cmd_watch,
            "supervise": self._cmd_supervise,
            "service": self._cmd_service,
            "timeline": self._cmd_timeline,
            "miss-ratios": self._cmd_miss_ratios,
            "save-trace": self._cmd_save_trace,
            "save-machine": self._cmd_save_machine,
            "sweep": self._cmd_sweep,
            "help": self._cmd_help,
        }

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def execute(self, line: str) -> str:
        """Run one command line; returns its output text."""
        parts = shlex.split(line, comments=True)
        if not parts:
            return ""
        command, args = parts[0].lower(), parts[1:]
        handler = self._commands.get(command)
        if handler is None:
            raise CliError(f"unknown command {command!r}; try 'help'")
        if handler.__func__ is ConsoleSession._cmd_console_passthrough:
            return self.console.execute(command)
        return handler(args)

    # ------------------------------------------------------------------ #
    # Commands
    # ------------------------------------------------------------------ #

    def _cmd_host(self, args: List[str]) -> str:
        if len(args) < 3:
            raise CliError("usage: host <n_cpus> <l2_size> <l2_assoc> [scale]")
        n_cpus = int(args[0])
        if len(args) >= 4:
            self.scale = ExperimentScale(scale=int(args[3]), n_cpus=n_cpus)
        else:
            self.scale = ExperimentScale(scale=self.scale.scale, n_cpus=n_cpus)
        config = HostConfig(
            n_cpus=n_cpus,
            l2_size=self.scale.scaled_bytes(args[1]),
            l2_assoc=int(args[2]),
        )
        self.host = HostSMP(config)
        if self.console.board is not None:
            self.host.plug_in(self.console.board)
        return (
            f"host: {n_cpus} CPUs, {format_size(config.l2_size)} "
            f"{config.l2_assoc}-way L2 (scale 1/{self.scale.scale})"
        )

    def _require_host(self) -> HostSMP:
        if self.host is None:
            raise CliError("no host machine; run 'host ...' first")
        return self.host

    def _cmd_program(self, args: List[str]) -> str:
        if not args:
            raise CliError("usage: program single|split|multi ...")
        mode = args[0].lower()
        n_cpus = self.scale.n_cpus
        if mode == "single":
            if len(args) < 2:
                raise CliError("usage: program single <size> [assoc]")
            assoc = int(args[2]) if len(args) > 2 else 4
            machine = single_node_machine(
                self.scale.cache(args[1], assoc=assoc), n_cpus=n_cpus
            )
        elif mode == "split":
            if len(args) < 3:
                raise CliError("usage: program split <size> <procs_per_node>")
            machine = split_smp_machine(
                self.scale.cache(args[1]),
                n_cpus=n_cpus,
                procs_per_node=int(args[2]),
                truncate=True,
            )
        elif mode == "multi":
            if len(args) < 2:
                raise CliError("usage: program multi <size> [size ...]")
            machine = multi_config_machine(
                [self.scale.cache(size) for size in args[1:]], n_cpus=n_cpus
            )
        elif mode == "file":
            if len(args) < 2:
                raise CliError("usage: program file <path>")
            from repro.target.mapping import TargetMachine

            machine = TargetMachine.load(args[1])
        else:
            raise CliError(f"unknown programming mode {mode!r}")
        board = self.console.power_up(
            machine, seed=self.seed, enforce_envelope=False
        )
        if self.host is not None:
            self.host.plug_in(board)
        return machine.describe()

    def _cmd_workload(self, args: List[str]) -> str:
        if not args:
            raise CliError("usage: workload tpcc|tpch|web [footprint]")
        kind = args[0].lower()
        n_cpus = self.scale.n_cpus
        if kind == "tpcc":
            footprint = args[1] if len(args) > 1 else "150GB"
            self.workload = TpccWorkload(
                db_bytes=self.scale.scaled_bytes(footprint),
                n_cpus=n_cpus,
                private_bytes=self.scale.scaled_bytes("8MB"),
                seed=self.seed,
            )
        elif kind == "tpch":
            footprint = args[1] if len(args) > 1 else "100GB"
            total = self.scale.scaled_bytes(footprint)
            self.workload = TpchWorkload(
                fact_bytes=int(total * 0.85),
                dim_bytes=total - int(total * 0.85),
                n_cpus=n_cpus,
                seed=self.seed,
            )
        elif kind == "web":
            footprint = args[1] if len(args) > 1 else "16GB"
            self.workload = WebWorkload(
                fileset_bytes=self.scale.scaled_bytes(footprint),
                n_cpus=n_cpus,
                seed=self.seed,
            )
        else:
            raise CliError(f"unknown workload {kind!r}")
        return f"workload: {kind} ({footprint} at paper scale)"

    def _cmd_run(self, args: List[str]) -> str:
        if not args:
            raise CliError("usage: run <n_refs>")
        if self.workload is None:
            raise CliError("no workload selected; run 'workload ...' first")
        host = self._require_host()
        n_refs = int(args[0].replace("_", ""))
        executed = host.run(self.workload.chunks(n_refs), max_references=n_refs)
        return (
            f"ran {executed:,} references; bus utilization "
            f"{host.bus.stats.utilization:.1%}, host L2 miss ratio "
            f"{host.aggregate_miss_ratio():.3f}"
        )

    def _cmd_console_passthrough(self, args: List[str]) -> str:
        raise CliError("internal dispatch error")  # pragma: no cover

    def _cmd_watch(self, args: List[str]) -> str:
        """One frame of the console's live telemetry dashboard."""
        return self.console.execute(" ".join(["watch", *args]))

    def _cmd_engines(self, args: List[str]) -> str:
        """Replay-engine capability decisions for the attached board."""
        return self.console.execute(" ".join(["engines", *args]))

    def _cmd_supervise(self, args: List[str]) -> str:
        """Journal status of a supervised run directory."""
        return self.console.execute(" ".join(["supervise", *args]))

    def _cmd_service(self, args: List[str]) -> str:
        """Manifest status of a multi-session service root."""
        return self.console.execute(" ".join(["service", *args]))

    def _cmd_timeline(self, args: List[str]) -> str:
        """Flight-recorder timeline of a run directory."""
        return self.console.execute(" ".join(["timeline", *args]))

    def _cmd_miss_ratios(self, args: List[str]) -> str:
        ratios = self.console.miss_ratios()
        return "\n".join(
            f"node {index}: {ratio:.4f}" for index, ratio in enumerate(ratios)
        )

    def _cmd_save_trace(self, args: List[str]) -> str:
        if len(args) < 2:
            raise CliError("usage: save-trace <path> <n_records>")
        if self.workload is None:
            raise CliError("no workload selected; run 'workload ...' first")
        host = self._require_host()
        n_records = int(args[1].replace("_", ""))
        self.workload.reset()
        trace = capture_records(self.workload, n_records, host.config)
        from repro.bus.trace import TraceWriter

        writer = TraceWriter()
        writer.extend_words(trace.words)
        writer.save(args[0])
        return f"saved {len(trace):,} records to {args[0]}"

    def _cmd_save_machine(self, args: List[str]) -> str:
        """Write the current board programming to a file."""
        if not args:
            raise CliError("usage: save-machine <path>")
        from repro.memories.board import CacheEmulationFirmware

        board = self.console.board
        if board is None or not isinstance(board.firmware, CacheEmulationFirmware):
            raise CliError("no cache-emulation programming to save")
        board.firmware.machine.save(args[0])
        return f"saved programming to {args[0]}"

    def _cmd_sweep(self, args: List[str]) -> str:
        """Capture one trace and evaluate several cache sizes against it."""
        if len(args) < 2:
            raise CliError("usage: sweep <n_records> <size> [size ...]")
        if self.workload is None:
            raise CliError("no workload selected; run 'workload ...' first")
        host = self._require_host()
        from repro.experiments.pipeline import l3_size_sweep

        n_records = int(args[0].replace("_", ""))
        sizes = args[1:]
        self.workload.reset()
        trace = capture_records(self.workload, n_records, host.config)
        configs = [self.scale.cache(size) for size in sizes]
        ratios = l3_size_sweep(
            trace, configs, n_cpus=self.scale.n_cpus, seed=self.seed
        )
        lines = [f"swept {len(trace):,} records:"]
        lines.extend(
            f"  {size:>8s}  miss ratio {ratio:.4f}"
            for size, ratio in zip(sizes, ratios)
        )
        return "\n".join(lines)

    def _cmd_help(self, args: List[str]) -> str:
        return __doc__.split("Commands", 1)[1]


def _verify_repo_main(args: List[str]) -> int:
    """``verify repo``: lint + determinism analysis with CI output formats.

    With no directory arguments every default target is linted —
    ``src/repro`` under the full ``library`` profile and the repository's
    ``tests``/``tools``/``benchmarks`` trees under their relaxed
    profiles.  ``--format json|sarif`` emits the machine-readable
    document (to ``--output`` or stdout); ``--baseline`` subtracts the
    committed baseline so only *new* findings fail;
    ``--update-baseline`` re-records it.
    """
    import argparse
    from pathlib import Path

    from repro.verify import (
        apply_baseline,
        check_repo,
        default_targets,
        load_baseline,
        render_sarif,
        stale_fingerprints,
        write_baseline,
    )
    from repro.verify.lint import PROFILES

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli verify repo",
        description="lint + determinism analysis over the source trees",
    )
    parser.add_argument(
        "roots", nargs="*",
        help="directories to lint (default: src/repro, tests, tools, "
             "benchmarks)")
    parser.add_argument(
        "--profile", choices=sorted(PROFILES), default="library",
        help="rule profile for explicitly given roots (default library)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default text)")
    parser.add_argument(
        "--output", default=None,
        help="write json/sarif output to this file (text summary still "
             "prints to stdout)")
    parser.add_argument(
        "--baseline", default=None,
        help="baseline file of known findings; only new findings fail")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-record the --baseline file from the current findings")
    ns = parser.parse_args(args)

    if ns.roots:
        targets = [(root, ns.profile) for root in ns.roots]
    else:
        targets = default_targets()
    raw_reports = [check_repo(root, profile) for root, profile in targets]

    if ns.update_baseline:
        if ns.baseline is None:
            raise CliError("--update-baseline requires --baseline FILE")
        count = write_baseline(raw_reports, ns.baseline)
        print(f"baseline {ns.baseline} recorded with {count} finding(s)")

    reports = raw_reports
    if ns.baseline is not None:
        baseline = load_baseline(ns.baseline)
        reports = [apply_baseline(report, baseline) for report in raw_reports]
        for key in stale_fingerprints(raw_reports, baseline):
            print(
                f"note: baseline entry {key} no longer matches any finding "
                f"(fixed — re-record with --update-baseline)"
            )

    if ns.format == "json":
        import json

        document = json.dumps(
            {
                "ok": all(report.ok for report in reports),
                "reports": [report.to_dict() for report in reports],
            },
            indent=2,
            sort_keys=True,
        ) + "\n"
    elif ns.format == "sarif":
        document = render_sarif(reports)
    else:
        document = None

    if document is not None and ns.output:
        Path(ns.output).write_text(document, encoding="utf-8")
        print(f"wrote {ns.output}")
    status = EXIT_OK
    for report in reports:
        if document is None or ns.output:
            print(report.render() if document is None else report.summary())
        if not report.ok:
            status = EXIT_CHECK_FAILED
    if document is not None and not ns.output:
        sys.stdout.write(document)
    return status


def _verify_engines_main(args: List[str]) -> int:
    """``verify engines``: audit replay-engine capability decisions.

    Proves every registered engine's declared capability requirements
    against a board programming — a saved ``programming.json``, or the
    default single-node machine the replay benchmark uses — and prints
    each decision's report.  Exits 0 only when every engine is eligible,
    so CI can assert that the benchmarked configuration actually
    exercises all engines; pass ``--expect`` to assert a subset instead.
    """
    import argparse

    from repro.engines import decide_all

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli verify engines",
        description="static capability decisions for every replay engine",
    )
    parser.add_argument(
        "programming", nargs="?", default=None,
        help="saved board programming JSON (default: the bench machine)")
    parser.add_argument(
        "--shards", type=int, default=4,
        help="shard spec to prove the sharded engine against (default 4)")
    parser.add_argument(
        "--cache", default="64MB",
        help="paper-scale L3 size for the default machine (default 64MB)")
    parser.add_argument(
        "--expect", default=None,
        help="comma-separated engines that must be eligible "
             "(default: all registered)")
    ns = parser.parse_args(args)

    if ns.programming is not None:
        from repro.target.mapping import TargetMachine

        machine = TargetMachine.load(ns.programming)
    else:
        scale = ExperimentScale()
        machine = single_node_machine(
            scale.cache(ns.cache), n_cpus=scale.n_cpus
        )
    decisions = decide_all(machine=machine, shards=ns.shards)
    expected = (
        {name.strip() for name in ns.expect.split(",") if name.strip()}
        if ns.expect is not None
        else {decision.spec.name for decision in decisions}
    )
    unknown = expected - {decision.spec.name for decision in decisions}
    if unknown:
        raise CliError(
            f"--expect names unregistered engine(s): {', '.join(sorted(unknown))}"
        )
    status = EXIT_OK
    for decision in decisions:
        spec = decision.spec
        verdict = "eligible" if decision.eligible else "REJECTED"
        requires = (
            ", ".join(sorted(str(c) for c in spec.requires)) or "(nothing)"
        )
        print(f"engine {spec.name:8s} [{verdict}] requires {requires}")
        for finding in decision.report.findings:
            print(f"  {finding.render()}")
        if not decision.eligible and spec.name in expected:
            status = EXIT_CHECK_FAILED
    return status


def verify_main(argv: List[str]) -> int:
    """The ``verify`` subcommand: static analysis before power-up.

    ``verify protocol [name|map.json ...]`` model-checks protocol tables
    (all firmware builtins when no argument is given); ``verify machine
    <programming.json> [run_hours]`` validates a saved board programming;
    ``verify repo [dir ...]`` lints the source trees (see
    :func:`_verify_repo_main` for formats/baselines); ``verify engines``
    audits replay-engine capability decisions.  Exit status is 0 only
    when every report passes.
    """
    from pathlib import Path

    from repro.verify import check_machine, check_protocol

    def load_json(path: str) -> object:
        import json

        try:
            with open(path) as handle:
                return json.load(handle)
        except OSError as error:
            raise CliError(f"cannot read {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise CliError(f"{path} is not valid JSON: {error}") from None

    if not argv:
        raise CliError("usage: verify protocol|machine|repo ...")
    kind, args = argv[0].lower(), argv[1:]
    reports = []
    if kind == "protocol":
        from repro.memories.config import BUILTIN_PROTOCOLS

        targets = args if args else list(BUILTIN_PROTOCOLS)
        for target in targets:
            if Path(target).suffix == ".json" or Path(target).exists():
                reports.append(check_protocol(load_json(target)))
            else:
                reports.append(check_protocol(target))
    elif kind == "machine":
        if not args:
            raise CliError("usage: verify machine <programming.json> [run_hours]")
        data = load_json(args[0])
        try:
            run_hours = float(args[1]) if len(args) > 1 else None
        except ValueError:
            raise CliError(f"run_hours must be a number, got {args[1]!r}") from None
        if run_hours is not None:
            reports.append(check_machine(data, run_hours=run_hours))
        else:
            reports.append(check_machine(data))
    elif kind == "repo":
        return _verify_repo_main(args)
    elif kind == "engines":
        return _verify_engines_main(args)
    else:
        raise CliError(f"unknown verify target {kind!r}; "
                       f"expected protocol, machine, repo or engines")
    status = 0
    for report in reports:
        print(report.render())
        if not report.ok:
            status = 1
    return status


def faults_main(argv: List[str]) -> int:
    """The ``faults`` subcommand: seeded fault-injection campaigns.

    ``faults run`` captures a scaled TPC-C bus trace, replays it twice
    through identically programmed boards — once fault-free, once under
    the requested plan — and prints the campaign summary; ``--out`` writes
    the full report as JSON.  ``faults report <campaign.json>`` re-renders
    a saved report.  A zero-rate run whose statistics are not byte-identical
    to the baseline exits 1 (the CI smoke contract); otherwise 0.
    """
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli faults",
        description="seeded fault-injection campaigns against the board",
    )
    sub = parser.add_subparsers(dest="action")
    run_parser = sub.add_parser(
        "run", help="capture a trace and run one baseline-vs-faulted campaign"
    )
    run_parser.add_argument(
        "--records", type=int, default=20_000,
        help="bus records to capture (default 20000)")
    run_parser.add_argument(
        "--seed", type=int, default=0,
        help="seed shared by workload, replacement policy and fault plan")
    run_parser.add_argument(
        "--cache", default="64MB",
        help="paper-scale L3 size, scaled 1/1024 (default 64MB)")
    run_parser.add_argument(
        "--drop", type=float, default=0.0,
        help="per-tenure snoop-drop rate")
    run_parser.add_argument(
        "--flip", type=float, default=0.0,
        help="per-tenure directory bit-flip rate")
    run_parser.add_argument(
        "--burst", type=float, default=0.0,
        help="per-tenure transaction-buffer burst rate")
    run_parser.add_argument(
        "--burst-ops", type=int, default=64,
        help="operations per injected burst (default 64)")
    run_parser.add_argument(
        "--saturate", type=float, default=0.0,
        help="per-tenure counter-saturation rate")
    run_parser.add_argument(
        "--no-ecc", action="store_true",
        help="leave the tag/state directory unprotected")
    run_parser.add_argument(
        "--scrub-interval", type=float, default=None,
        help="patrol-scrubber cadence in bus cycles")
    run_parser.add_argument(
        "--out", default=None,
        help="write the full campaign report to this JSON file")
    report_parser = sub.add_parser(
        "report", help="re-render a saved campaign report"
    )
    report_parser.add_argument("path")
    ns = parser.parse_args(argv)

    if ns.action == "report":
        try:
            with open(ns.path) as handle:
                data = json.load(handle)
        except OSError as error:
            raise CliError(f"cannot read {ns.path}: {error}") from None
        except json.JSONDecodeError as error:
            raise CliError(f"{ns.path} is not valid JSON: {error}") from None
        from repro.faults import FaultPlan

        plan = FaultPlan.from_dict(data.get("plan", {}))
        print(f"campaign over {data.get('records', 0):,} records, plan {plan}")
        print(
            f"miss ratio {data.get('baseline_miss_ratio', 0.0):.4f} -> "
            f"{data.get('faulted_miss_ratio', 0.0):.4f} "
            f"(error {data.get('miss_ratio_error', 0.0):.4f})"
        )
        counts = data.get("fault_counts", {})
        print(
            "faults committed: "
            + (", ".join(f"{k}={v}" for k, v in sorted(counts.items())) or "none")
        )
        print(f"identical to baseline: {data.get('identical')}")
        return 0
    if ns.action != "run":
        parser.print_usage()
        return 2

    from repro.faults import FaultPlan, run_campaign

    plan = FaultPlan(
        seed=ns.seed,
        drop_snoop_rate=ns.drop,
        directory_flip_rate=ns.flip,
        buffer_burst_rate=ns.burst,
        buffer_burst_ops=ns.burst_ops,
        counter_saturate_rate=ns.saturate,
    )
    plan.validate()
    scale = ExperimentScale()
    workload = TpccWorkload(
        db_bytes=scale.scaled_bytes("150GB"),
        n_cpus=scale.n_cpus,
        private_bytes=scale.scaled_bytes("8MB"),
        seed=ns.seed,
    )
    print(f"capturing {ns.records:,} bus records (TPC-C, scale 1/{scale.scale})...")
    trace = capture_records(workload, ns.records, scale.host())
    machine = single_node_machine(scale.cache(ns.cache), n_cpus=scale.n_cpus)
    result = run_campaign(
        trace.words,
        machine,
        plan,
        seed=ns.seed,
        ecc=not ns.no_ecc,
        scrub_interval=ns.scrub_interval,
    )
    print(result.summary())
    if plan.is_zero:
        print(f"zero-fault run identical to baseline: {result.identical}")
    if ns.out:
        with open(ns.out, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"wrote {ns.out}")
    return 0 if (not plan.is_zero or result.identical) else 1


def telemetry_main(argv: List[str]) -> int:
    """The ``telemetry`` subcommand: counter time series end to end.

    ``telemetry run`` captures a scaled TPC-C bus trace and replays it
    through an instrumented board, writing the sampled series (and the
    capture/replay spans) as JSONL; ``telemetry report`` re-renders a
    saved series as the text dashboard; ``telemetry export`` re-emits it
    as canonical JSONL or as a Prometheus text exposition page whose
    counter totals are wrap-corrected sums of the recorded deltas.
    """
    import argparse

    from repro.memories.board import board_for_machine
    from repro.telemetry import (
        CounterSampler,
        JsonlSink,
        RunTrace,
        TelemetrySeries,
        encode_record,
        series_exposition,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli telemetry",
        description="counter time-series sampling and export",
    )
    sub = parser.add_subparsers(dest="action")
    run_parser = sub.add_parser(
        "run", help="capture a trace and replay it with the sampler on"
    )
    run_parser.add_argument(
        "--records", type=int, default=20_000,
        help="bus records to capture (default 20000)")
    run_parser.add_argument(
        "--seed", type=int, default=0,
        help="seed shared by workload and replacement policy")
    run_parser.add_argument(
        "--cache", default="64MB",
        help="paper-scale L3 size, scaled 1/1024 (default 64MB)")
    run_parser.add_argument(
        "--every-tx", type=int, default=None,
        help="sampling cadence in replayed transactions (default 1024)")
    run_parser.add_argument(
        "--every-cycles", type=float, default=None,
        help="sampling cadence in emulated bus cycles")
    run_parser.add_argument(
        "--out", default="telemetry.jsonl",
        help="JSONL series output path (default telemetry.jsonl)")
    run_parser.add_argument(
        "--deterministic", action="store_true",
        help="strip wall-clock fields so same-seed runs are byte-identical")
    report_parser = sub.add_parser(
        "report", help="render a saved series as the text dashboard"
    )
    report_parser.add_argument("path")
    export_parser = sub.add_parser(
        "export", help="re-emit a saved series for downstream consumers"
    )
    export_parser.add_argument("path")
    export_parser.add_argument(
        "--format", choices=("prom", "jsonl"), default="prom",
        help="prom: Prometheus text exposition; jsonl: canonical JSONL")
    export_parser.add_argument(
        "--deterministic", action="store_true",
        help="strip wall-clock fields from jsonl output")
    ns = parser.parse_args(argv)

    if ns.action == "report":
        series = TelemetrySeries.from_jsonl(ns.path)
        print(series.dashboard())
        return 0
    if ns.action == "export":
        series = TelemetrySeries.from_jsonl(ns.path)
        if ns.format == "prom":
            sys.stdout.write(series_exposition(series.records))
        else:
            for record in series.records:
                print(encode_record(record, deterministic=ns.deterministic))
        return 0
    if ns.action != "run":
        parser.print_usage()
        return 2

    scale = ExperimentScale()
    workload = TpccWorkload(
        db_bytes=scale.scaled_bytes("150GB"),
        n_cpus=scale.n_cpus,
        private_bytes=scale.scaled_bytes("8MB"),
        seed=ns.seed,
    )
    sink = JsonlSink(ns.out, deterministic=ns.deterministic)
    run_trace = RunTrace(sink, label="telemetry-run")
    sampler = CounterSampler(
        sink,
        every_transactions=ns.every_tx,
        every_cycles=ns.every_cycles,
        label="board",
    )
    print(
        f"capturing {ns.records:,} bus records (TPC-C, scale 1/{scale.scale})..."
    )
    trace = capture_records(
        workload, ns.records, scale.host(), run_trace=run_trace
    )
    machine = single_node_machine(scale.cache(ns.cache), n_cpus=scale.n_cpus)
    board = board_for_machine(machine, seed=ns.seed)
    board.attach_telemetry(sampler, run_trace=run_trace)
    board.replay(trace)
    sampler.finish(board)
    sink.close()
    series = TelemetrySeries.from_jsonl(ns.out)
    print(series.summary())
    ratios = ", ".join(
        f"{node.miss_ratio():.4f}" for node in board.firmware.nodes
    )
    print(f"final miss ratios: {ratios}")
    print(f"wrote {ns.out}")
    return 0


def supervise_main(argv: List[str]) -> int:
    """The ``supervise`` subcommand: crash-safe segmented runs.

    ``supervise run <run_dir>`` captures a scaled TPC-C bus trace (or
    takes one via ``--trace``), stages it into ``run_dir`` as a segmented
    trace plus run spec and journal, and executes it under the
    :class:`~repro.supervisor.RunSupervisor` watchdog.  ``supervise
    resume <run_dir>`` continues an interrupted run from its last
    journaled checkpoint — killing a run at any point and resuming it
    yields counters bit-identical to an uninterrupted run.  ``supervise
    status <run_dir>`` renders the journal without touching the board.

    Exit codes follow the module taxonomy: 0 clean completion, 4 when
    the run completed but degraded (quarantined segments or offlined
    nodes), 2/3 for validation/runtime failures.
    """
    import argparse

    from repro.supervisor import (
        RunSupervisor,
        SupervisedRunSpec,
        render_status,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli supervise",
        description="crash-safe supervised replay with durable checkpoints",
    )
    sub = parser.add_subparsers(dest="action")
    run_parser = sub.add_parser(
        "run", help="stage a run directory and execute it under supervision"
    )
    run_parser.add_argument("run_dir")
    run_parser.add_argument(
        "--records", type=int, default=20_000,
        help="bus records to capture (default 20000)")
    run_parser.add_argument(
        "--seed", type=int, default=0,
        help="seed shared by workload and replacement policy")
    run_parser.add_argument(
        "--cache", default="64MB",
        help="paper-scale L3 size, scaled 1/1024 (default 64MB)")
    run_parser.add_argument(
        "--trace", default=None,
        help="replay this saved .mies trace instead of capturing one")
    run_parser.add_argument(
        "--segment-records", type=int, default=5_000,
        help="records per committed segment (default 5000)")
    run_parser.add_argument(
        "--ecc", action="store_true",
        help="protect tag/state directories with ECC (enables the "
             "pre-segment self-check degradation rung)")
    run_parser.add_argument(
        "--keep", type=int, default=3,
        help="checkpoints kept in the rotation (default 3)")
    run_parser.add_argument(
        "--max-restarts", type=int, default=3,
        help="worker restart budget before the run fails (default 3)")
    run_parser.add_argument(
        "--deadline", type=float, default=60.0,
        help="minimum per-segment watchdog deadline in seconds")
    resume_parser = sub.add_parser(
        "resume", help="continue an interrupted run from its journal"
    )
    resume_parser.add_argument("run_dir")
    status_parser = sub.add_parser(
        "status", help="render a run directory's journal state"
    )
    status_parser.add_argument("run_dir")
    ns = parser.parse_args(argv)

    if ns.action == "status":
        supervisor = RunSupervisor.open(ns.run_dir)
        print(render_status(supervisor.status()))
        return EXIT_OK
    if ns.action == "resume":
        supervisor = RunSupervisor.open(ns.run_dir)
        result = supervisor.run()
        print(render_status(supervisor.status()))
        print(f"digest {result.digest[:16]}…")
        return EXIT_DEGRADED if result.degraded else EXIT_OK
    if ns.action != "run":
        parser.print_usage()
        return EXIT_VALIDATION

    scale = ExperimentScale()
    if ns.trace is not None:
        trace_source = ns.trace
        print(f"staging saved trace {ns.trace}...")
    else:
        workload = TpccWorkload(
            db_bytes=scale.scaled_bytes("150GB"),
            n_cpus=scale.n_cpus,
            private_bytes=scale.scaled_bytes("8MB"),
            seed=ns.seed,
        )
        print(
            f"capturing {ns.records:,} bus records "
            f"(TPC-C, scale 1/{scale.scale})..."
        )
        trace_source = capture_records(
            workload, ns.records, scale.host()
        ).words
    machine = single_node_machine(scale.cache(ns.cache), n_cpus=scale.n_cpus)
    spec = SupervisedRunSpec(
        machine=machine,
        seed=ns.seed,
        ecc=ns.ecc,
        segment_records=ns.segment_records,
        keep_checkpoints=ns.keep,
        max_restarts=ns.max_restarts,
        segment_deadline=ns.deadline,
    )
    supervisor = RunSupervisor.create(spec, trace_source, ns.run_dir)
    result = supervisor.run()
    print(render_status(supervisor.status()))
    ratios = ", ".join(
        f"{ratio:.4f}" for _, ratio in sorted(result.miss_ratios.items())
    )
    print(f"final miss ratios: {ratios}")
    print(f"digest {result.digest[:16]}…")
    return EXIT_DEGRADED if result.degraded else EXIT_OK


def service_main(argv: List[str]) -> int:
    """The ``service`` subcommand: the multi-session emulation server.

    ``service serve <root>`` boots the asyncio HTTP/WebSocket server on a
    service root directory and runs until SIGTERM (or ``POST /drain``),
    then drains gracefully: in-flight runs suspend at their last durable
    segment and the journaled manifest lets the next ``serve`` on the
    same root re-adopt and finish them bit-identically.

    ``service submit`` builds a synthetic-trace session request and
    submits it; with ``--wait`` it polls to a terminal state.  Structured
    refusals — queue full, tenant quota, deadline exceeded — exit with
    code :data:`EXIT_RESOURCE` (5), distinct from validation (2) and
    runtime (3) failures, so fleet drivers know a resubmit-later from a
    fix-your-input.  ``service status`` and ``service tail`` observe a
    running server over HTTP and WebSocket respectively.
    """
    import argparse
    import asyncio
    import json

    from repro.service import (
        EmulationService,
        ServiceClient,
        ServiceConfig,
        ServiceServer,
        SessionRequest,
        serve_forever,
    )
    from repro.supervisor import SupervisedRunSpec

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli service",
        description="multi-session emulation service (HTTP + WebSocket)",
    )
    sub = parser.add_subparsers(dest="action")
    serve_parser = sub.add_parser(
        "serve", help="run the service until SIGTERM, then drain"
    )
    serve_parser.add_argument("root", help="service root directory")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8764,
        help="listen port (0 picks a free one; default 8764)")
    serve_parser.add_argument(
        "--max-workers", type=int, default=4,
        help="concurrent sessions executing (default 4)")
    serve_parser.add_argument(
        "--tenant-workers", type=int, default=2,
        help="concurrent sessions per tenant (default 2)")
    serve_parser.add_argument(
        "--queue-depth", type=int, default=64,
        help="admitted-but-not-running bound (default 64)")
    serve_parser.add_argument(
        "--tenant-queue", type=int, default=16,
        help="queued sessions per tenant (default 16)")
    serve_parser.add_argument(
        "--wall-deadline", type=float, default=None,
        help="default per-session wall deadline in seconds")
    serve_parser.add_argument(
        "--ingest-buffer", type=int, default=65_536,
        help="ingest back-pressure bound, in records (default 65536)")
    submit_parser = sub.add_parser(
        "submit", help="submit a synthetic-trace session"
    )
    submit_parser.add_argument("server", help="host:port of a running server")
    submit_parser.add_argument(
        "--records", type=int, default=20_000,
        help="synthetic bus records (default 20000)")
    submit_parser.add_argument(
        "--seed", type=int, default=0,
        help="workload and replacement-policy seed")
    submit_parser.add_argument(
        "--cache", default="64MB",
        help="paper-scale L3 size, scaled 1/1024 (default 64MB)")
    submit_parser.add_argument(
        "--segment-records", type=int, default=5_000,
        help="records per committed segment (default 5000)")
    submit_parser.add_argument("--tenant", default="default")
    submit_parser.add_argument(
        "--priority", type=int, default=1, choices=(0, 1, 2),
        help="0 high / 1 normal / 2 low")
    submit_parser.add_argument("--label", default="")
    submit_parser.add_argument(
        "--wall-deadline", type=float, default=None,
        help="seconds from admission to completion")
    submit_parser.add_argument(
        "--cycle-deadline", type=float, default=None,
        help="emulated-cycle budget")
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="poll until the session reaches a terminal state")
    status_parser = sub.add_parser(
        "status", help="service (or one session's) status over HTTP"
    )
    status_parser.add_argument("server")
    status_parser.add_argument("session", nargs="?", default=None)
    tail_parser = sub.add_parser(
        "tail", help="stream a session's live telemetry over WebSocket"
    )
    tail_parser.add_argument("server")
    tail_parser.add_argument("session")
    tail_parser.add_argument(
        "--limit", type=int, default=None,
        help="stop after this many events")
    ns = parser.parse_args(argv)

    def endpoint(server: str) -> ServiceClient:
        host, _, port = server.rpartition(":")
        if not host or not port.isdigit():
            raise CliError(
                f"server must be host:port, got {server!r}"
            )
        return ServiceClient(host, int(port))

    if ns.action == "serve":
        config = ServiceConfig(
            max_workers=ns.max_workers,
            max_workers_per_tenant=ns.tenant_workers,
            max_queue_depth=ns.queue_depth,
            max_queued_per_tenant=ns.tenant_queue,
            default_wall_deadline=ns.wall_deadline,
            ingest_buffer_records=ns.ingest_buffer,
        )

        async def _serve() -> None:
            server = ServiceServer(
                EmulationService(ns.root, config), ns.host, ns.port
            )
            await server.start()
            print(
                f"serving on {ns.host}:{server.port} "
                f"(root {ns.root}; SIGTERM drains)"
            )
            await serve_forever(server)
            print("drained; manifest journaled for re-adoption")

        asyncio.run(_serve())
        return EXIT_OK

    if ns.action == "submit":
        client = endpoint(ns.server)
        scale = ExperimentScale()
        spec = SupervisedRunSpec(
            machine=single_node_machine(
                scale.cache(ns.cache), n_cpus=scale.n_cpus
            ),
            seed=ns.seed,
            segment_records=ns.segment_records,
        )
        request = SessionRequest(
            run_spec=spec,
            trace={
                "kind": "synthetic",
                "records": ns.records,
                "seed": ns.seed,
                "n_cpus": scale.n_cpus,
            },
            tenant=ns.tenant,
            priority=ns.priority,
            label=ns.label,
            wall_deadline=ns.wall_deadline,
            cycle_deadline=ns.cycle_deadline,
        )

        async def _submit() -> int:
            session_id = await client.submit(request.to_dict())
            print(f"admitted {session_id}")
            if not ns.wait:
                return EXIT_OK
            view = await client.wait(
                session_id,
                timeout=(ns.wall_deadline or 0) + 600.0,
            )
            print(json.dumps(view, indent=2, sort_keys=True))
            if view["state"] == "completed":
                return EXIT_DEGRADED if view["degraded"] else EXIT_OK
            if view["state"] == "expired":
                print(f"error: session expired ({view['reason']})")
                return EXIT_RESOURCE
            print(f"error: session {view['state']}: {view['error']}")
            return EXIT_RUNTIME

        return asyncio.run(_submit())

    if ns.action == "status":
        client = endpoint(ns.server)

        async def _status() -> int:
            if ns.session:
                view = await client.session(ns.session)
                print(json.dumps(view, indent=2, sort_keys=True))
            else:
                print(json.dumps(
                    await client.status(), indent=2, sort_keys=True
                ))
            return EXIT_OK

        return asyncio.run(_status())

    if ns.action == "tail":
        client = endpoint(ns.server)

        async def _tail() -> int:
            async for record in client.tail(ns.session, limit=ns.limit):
                print(json.dumps(record, sort_keys=True))
            return EXIT_OK

        return asyncio.run(_tail())

    parser.print_usage()
    return EXIT_VALIDATION


def bench_main(argv: List[str]) -> int:
    """The ``bench`` subcommand: replay-engine throughput A/B.

    Replays one deterministic synthetic trace through the scalar
    reference loop, the batched engine, the compiled kernels and the
    sharded worker pool (see :mod:`repro.experiments.replay_bench`),
    prints records/sec for each (best of ``--repeats``), and optionally
    writes the JSON report CI archives as ``BENCH_replay.json``.  The
    digests are the point: a non-zero exit means the engines' statistics
    diverged, which is a correctness failure, not a slow run.
    """
    import argparse
    import json
    from pathlib import Path

    from repro.experiments.replay_bench import (
        DEFAULT_RECORDS,
        run_replay_benchmark,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli bench",
        description=(
            "replay throughput: scalar vs batched vs compiled vs sharded"
        ),
    )
    parser.add_argument(
        "--records", type=int, default=DEFAULT_RECORDS,
        help=f"bus records to replay (default {DEFAULT_RECORDS})")
    parser.add_argument(
        "--seed", type=int, default=2000,
        help="workload and replacement-policy seed (default 2000)")
    parser.add_argument(
        "--shards", type=int, default=4,
        help="worker shards for the sharded engine (default 4)")
    parser.add_argument(
        "--inline-shards", action="store_true",
        help="replay the shards inline instead of in worker processes")
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="timing repeats per engine; best-of-N is reported (default 1)")
    parser.add_argument(
        "--out", default=None,
        help="write the JSON report here (e.g. BENCH_replay.json)")
    ns = parser.parse_args(argv)

    report = run_replay_benchmark(
        ns.records, seed=ns.seed, shards=ns.shards,
        sharded_processes=not ns.inline_shards, repeats=ns.repeats,
    )
    for name, entry in report["engines"].items():
        print(
            f"{name:8s} {entry['records_per_second']:12,.0f} records/s  "
            f"digest {entry['statistics_digest'][:16]}…"
        )
    print(f"batched speedup over scalar: {report['batched_speedup']:.2f}x")
    print(
        f"compiled speedup over scalar: {report['compiled_speedup']:.2f}x"
        f" ({'numba' if report['numba'] else 'pure-python fallback'})"
    )
    if ns.out:
        Path(ns.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {ns.out}")
    if not report["identical"]:
        print(
            "error: engine statistics digests differ — a fast path is "
            "not bit-identical to the scalar reference"
        )
        return EXIT_VALIDATION
    return EXIT_OK


def obs_main(argv: List[str]) -> int:
    """The ``obs`` subcommand: run forensics after the fact.

    ``obs timeline <run_dir>`` merges the run's journal, supervisor span
    log and (for service sessions) the service manifest and telemetry
    into one causally-ordered flight-recorder timeline, with a
    critical-path breakdown of where the wall time went.  The output is
    byte-identical for the same run directory, in every format.  ``obs
    spans <run_dir>`` validates the propagated span tree instead: one
    trace ID, every parent resolved, fully connected.
    """
    import argparse
    from pathlib import Path

    from repro.obs import (
        FORMATS,
        build_timeline,
        render_timeline,
        session_records,
        validate_session_trace,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli obs",
        description="flight-recorder timelines and span-tree validation",
    )
    sub = parser.add_subparsers(dest="action")
    timeline_parser = sub.add_parser(
        "timeline",
        help="merge a run's logs into one causally-ordered timeline",
    )
    timeline_parser.add_argument("run_dir")
    timeline_parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="text (default), canonical json, or Chrome trace-event json")
    timeline_parser.add_argument(
        "--out", default=None,
        help="write the rendered timeline here instead of stdout")
    spans_parser = sub.add_parser(
        "spans", help="validate a run's propagated span tree"
    )
    spans_parser.add_argument("run_dir")
    ns = parser.parse_args(argv)

    if ns.action == "timeline":
        page = render_timeline(build_timeline(ns.run_dir), ns.format)
        if ns.out:
            Path(ns.out).write_text(page)
            print(f"wrote {ns.out}")
        else:
            sys.stdout.write(page)
        return EXIT_OK
    if ns.action == "spans":
        tree = validate_session_trace(session_records(ns.run_dir))
        summary = tree.summary()
        print(f"trace: {summary['trace_ids'][0]}")
        print(f"spans: {summary['spans']}, roots: {len(summary['roots'])}")
        for root in summary["roots"]:
            for depth, record in tree.walk(root):
                attrs = record.get("attrs") or {}
                extra = "".join(
                    f" {key}={attrs[key]}" for key in sorted(attrs)
                )
                print(
                    f"  {'  ' * depth}{record['name']} "
                    f"[{record['span_id']}]{extra}"
                )
        print("span tree connected: every parent resolves")
        return EXIT_OK
    parser.print_usage()
    return EXIT_VALIDATION


#: Stand-alone subcommands dispatched before the console session starts.
_SUBCOMMANDS: Dict[str, Callable[[List[str]], int]] = {
    "verify": verify_main,
    "faults": faults_main,
    "telemetry": telemetry_main,
    "supervise": supervise_main,
    "service": service_main,
    "bench": bench_main,
    "obs": obs_main,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: interactive prompt, scripted session, ``verify``,
    ``faults``, ``telemetry`` or ``supervise``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0].lower() in _SUBCOMMANDS:
        try:
            return _SUBCOMMANDS[argv[0].lower()](argv[1:])
        except ReproError as error:
            print(f"error: {error}")
            return classify_error(error)
    session = ConsoleSession()
    if argv:
        source = open(argv[0])
        interactive = False
    else:
        source = sys.stdin
        interactive = True
        print("MemorIES console (reproduction). 'help' lists commands.")
    status = 0
    with source:
        for line in source:
            if interactive:
                pass
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.lower() in ("quit", "exit"):
                break
            try:
                output = session.execute(stripped)
            except ReproError as error:
                print(f"error: {error}")
                status = 1
                continue
            if output:
                print(output)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
