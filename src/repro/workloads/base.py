"""Workload framework: per-CPU reference generators and interleaving.

The paper runs real workloads (TPC-C on a 150 GB database, multi-GB SPLASH2
codes) on real hardware.  We cannot, so every workload here is a *synthetic
address-stream generator* engineered to match the structural properties the
case studies depend on — working-set size relative to cache size, degree of
inter-CPU sharing, temporal locality, phase behaviour — at footprints scaled
down by a common factor (see DESIGN.md, "Hardware gates and substitutions").

A workload produces the stream of data references that *miss the host L1*:
tuples of parallel numpy arrays ``(cpu_ids, addresses, is_writes)``.  The
:class:`InterleavedWorkload` base class handles chunking and CPU
interleaving; concrete workloads implement one method,
:meth:`InterleavedWorkload.cpu_refs`, generating ``n`` references for one
CPU (with per-CPU persistent state so sequential patterns survive chunk
boundaries).
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.rng import RngStreams

#: Host cache-line granularity all generators align addresses to.
LINE = 128

Chunk = Tuple[np.ndarray, np.ndarray, np.ndarray]


class Workload(abc.ABC):
    """A finite or unbounded stream of host memory references."""

    name: str = "workload"
    n_cpus: int = 8

    @abc.abstractmethod
    def chunks(self, n_refs: int, chunk_size: int = 65536) -> Iterator[Chunk]:
        """Yield ``(cpu_ids, addresses, is_writes)`` arrays totalling ``n_refs``."""

    def reset(self) -> None:
        """Restart the workload from its initial state (default: no-op)."""


class InterleavedWorkload(Workload):
    """Base class interleaving independent per-CPU reference streams.

    Each chunk draws a uniformly random CPU sequence (memory-bus
    interleaving is effectively arbitrary at reference granularity), then
    fills the address/write arrays CPU by CPU from :meth:`cpu_refs`.

    Args:
        n_cpus: processors generating references.
        seed: root seed; two instances with equal parameters and seed
            produce identical streams.
    """

    def __init__(self, n_cpus: int = 8, seed: int = 0) -> None:
        if n_cpus < 1:
            raise ConfigurationError(f"need at least one CPU, got {n_cpus}")
        self.n_cpus = n_cpus
        self.seed = seed
        self.streams = RngStreams(seed)
        self._cpu_state: Dict[int, dict] = {}

    # ------------------------------------------------------------------ #
    # Subclass interface
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def cpu_refs(
        self, cpu: int, n: int, rng: np.random.Generator, state: dict
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Generate ``n`` references for ``cpu``.

        Args:
            cpu: CPU index (0-based).
            n: number of references to produce.
            rng: this CPU's private random stream.
            state: mutable per-CPU dict persisting across chunks (empty on
                first call); keep scan positions, iteration counters etc.
                here.

        Returns:
            (addresses, is_writes) arrays of length ``n``; addresses will be
            line-aligned by the framework.
        """

    # ------------------------------------------------------------------ #
    # Framework
    # ------------------------------------------------------------------ #

    def chunks(self, n_refs: int, chunk_size: int = 65536) -> Iterator[Chunk]:
        if n_refs < 0:
            raise ConfigurationError("n_refs must be non-negative")
        mix_rng = self.streams.get("mixer")
        produced = 0
        while produced < n_refs:
            take = min(chunk_size, n_refs - produced)
            cpu_ids = mix_rng.integers(0, self.n_cpus, take, dtype=np.int64)
            addresses = np.empty(take, dtype=np.int64)
            is_writes = np.empty(take, dtype=bool)
            for cpu in range(self.n_cpus):
                mask = cpu_ids == cpu
                count = int(mask.sum())
                if count == 0:
                    continue
                rng = self.streams.get(f"cpu{cpu}")
                state = self._cpu_state.setdefault(cpu, {})
                addrs, writes = self.cpu_refs(cpu, count, rng, state)
                addresses[mask] = addrs
                is_writes[mask] = writes
            addresses &= ~np.int64(LINE - 1)
            yield cpu_ids, addresses, is_writes
            produced += take

    def reset(self) -> None:
        """Restart all per-CPU streams and state.

        Subclasses that build long-lived samplers from the stream family
        must rebuild them in :meth:`_rebuild_samplers`, which runs after
        the fresh streams exist — otherwise the samplers would keep
        consuming the old, already-advanced generators.
        """
        self.streams = RngStreams(self.seed)
        self._cpu_state.clear()
        self._rebuild_samplers()

    def _rebuild_samplers(self) -> None:
        """Hook for subclasses owning stream-backed samplers (default: none)."""


def zipf_page_sampler(
    n_pages: int,
    exponent: float,
    rng: np.random.Generator,
) -> "ZipfSampler":
    """Convenience constructor for a bounded Zipf sampler over pages."""
    return ZipfSampler(n_pages, exponent, rng)


class ZipfSampler:
    """Bounded Zipf(-like) sampler over ``0..n-1`` with a permuted rank map.

    ``numpy``'s :func:`~numpy.random.Generator.zipf` is unbounded and
    concentrates mass on rank 0; real page popularity is Zipf over a
    *finite* set with popular pages scattered across the address space.
    This sampler draws ranks from a truncated Zipf CDF (inverse-transform)
    and maps rank -> page through a fixed random permutation.

    Args:
        n: population size.
        exponent: Zipf skew ``s`` (>0; ~0.8–1.2 models database page heat).
        rng: generator used both for the permutation and the draws.
    """

    def __init__(self, n: int, exponent: float, rng: np.random.Generator) -> None:
        if n < 1:
            raise ConfigurationError(f"population must be >= 1, got {n}")
        if exponent <= 0:
            raise ConfigurationError(f"Zipf exponent must be > 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        self._rng = rng
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), exponent)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._perm = rng.permutation(n)

    def draw(self, count: int) -> np.ndarray:
        """Sample ``count`` population members (int64 array)."""
        u = self._rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="left")
        return self._perm[ranks]
