"""Synthetic workload generators standing in for the paper's benchmarks.

See DESIGN.md ("Hardware gates and substitutions") for why these are
synthetic and what structural properties each preserves.  Available
workloads:

* :class:`~repro.workloads.tpcc.TpccWorkload` — OLTP (TPC-C-like).
* :class:`~repro.workloads.tpch.TpchWorkload` — decision support
  (TPC-H-like).
* :mod:`repro.workloads.splash` — the five SPLASH2 kernels of Table 5.
* :class:`~repro.workloads.osjournal.JournalBugOverlay` — Case Study 2's
  OS journaling bug, as a fault-injection overlay.
* :mod:`repro.workloads.capture` — workload -> host -> bus-trace pipeline.
"""

from repro.workloads.base import InterleavedWorkload, Workload, ZipfSampler
from repro.workloads.capture import capture_bus_trace, run_live
from repro.workloads.osjournal import JournalBugOverlay
from repro.workloads.splash import (
    ALL_KERNELS,
    BarnesWorkload,
    FftWorkload,
    FmmWorkload,
    OceanWorkload,
    WaterWorkload,
)
from repro.workloads.tpcc import TpccWorkload, paper_tpcc
from repro.workloads.tpch import TpchWorkload, paper_tpch
from repro.workloads.web import WebWorkload

__all__ = [
    "ALL_KERNELS",
    "BarnesWorkload",
    "FftWorkload",
    "FmmWorkload",
    "InterleavedWorkload",
    "JournalBugOverlay",
    "OceanWorkload",
    "TpccWorkload",
    "TpchWorkload",
    "WaterWorkload",
    "WebWorkload",
    "Workload",
    "ZipfSampler",
    "capture_bus_trace",
    "paper_tpcc",
    "paper_tpch",
    "run_live",
]
