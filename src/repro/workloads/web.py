"""Synthetic web-server workload.

Section 5.3 closes: "We can also use the MemorIES board for scaling studies
involving transaction processing, decision support, and **web server
workloads**."  This generator provides the third domain: a static-content
server whose memory traffic is

* **file-body streaming** — each request walks one file sequentially; file
  popularity is Zipf (the classic web-trace result) and file sizes are
  log-distributed across a configurable range;
* **metadata lookups** — a shared hot region (file-cache hash, inode-ish
  structures) touched on every request;
* **per-CPU network buffers** — small private rings reused constantly.

The aggregate working set is dominated by the popular tail of the file set,
which is what makes web serving cache-friendly until the fileset outgrows
the cache — the property the scaling-study experiment exercises.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.base import LINE, InterleavedWorkload, ZipfSampler


class WebWorkload(InterleavedWorkload):
    """Static web serving: Zipf file popularity, streaming bodies.

    Args:
        fileset_bytes: total size of the served content.
        n_files: number of distinct files (mean size = fileset / files).
        n_cpus: server worker CPUs.
        popularity_exponent: Zipf skew of request popularity (~0.8-1.1 in
            published web traces).
        p_metadata: fraction of references into the shared metadata region.
        metadata_bytes: size of that region.
        buffer_bytes: per-CPU network buffer ring.
        p_buffer: fraction of references into the ring.
        seed: reproducibility seed.
    """

    name = "web"

    def __init__(
        self,
        fileset_bytes: int,
        n_files: int = 4096,
        n_cpus: int = 8,
        popularity_exponent: float = 0.9,
        p_metadata: float = 0.15,
        metadata_bytes: int = 1 << 16,
        buffer_bytes: int = 1 << 13,
        p_buffer: float = 0.10,
        seed: int = 0,
    ) -> None:
        super().__init__(n_cpus=n_cpus, seed=seed)
        if n_files < 1:
            raise ConfigurationError("need at least one file")
        if fileset_bytes < n_files * LINE:
            raise ConfigurationError("fileset too small for the file count")
        if p_metadata + p_buffer >= 1.0:
            raise ConfigurationError("metadata + buffer fractions must be < 1")
        self.fileset_bytes = fileset_bytes
        self.n_files = n_files
        self.popularity_exponent = popularity_exponent
        self.p_metadata = p_metadata
        self.metadata_bytes = metadata_bytes
        self.buffer_bytes = buffer_bytes
        self.p_buffer = p_buffer
        # Layout: per-CPU buffers, then metadata, then file bodies.
        self._buffer_base = [cpu * buffer_bytes for cpu in range(n_cpus)]
        self._metadata_base = n_cpus * buffer_bytes
        self._files_base = self._metadata_base + metadata_bytes
        self._rebuild_samplers()
        self._build_file_table()

    def _rebuild_samplers(self) -> None:
        self._popularity = ZipfSampler(
            self.n_files, self.popularity_exponent, self.streams.get("popularity")
        )
        self._metadata = ZipfSampler(
            max(1, self.metadata_bytes // LINE), 0.8, self.streams.get("metadata")
        )

    def _build_file_table(self) -> None:
        """File sizes: log-uniform between mean/8 and 8x mean, renormalised."""
        rng = self.streams.get("layout")
        mean_lines = max(1, self.fileset_bytes // self.n_files // LINE)
        raw = np.exp(
            rng.uniform(
                np.log(max(1, mean_lines / 8)),
                np.log(mean_lines * 8),
                self.n_files,
            )
        ).astype(np.int64)
        raw = np.maximum(raw, 1)
        # Renormalise to the requested fileset size.
        total_target = self.fileset_bytes // LINE
        raw = np.maximum(1, raw * total_target // max(1, raw.sum()))
        self.file_lines = raw
        self.file_start_line = np.concatenate(
            [[0], np.cumsum(raw)[:-1]]
        ).astype(np.int64)
        self.total_file_lines = int(raw.sum())

    @property
    def total_bytes(self) -> int:
        """Whole-workload footprint."""
        return self._files_base + self.total_file_lines * LINE

    def cpu_refs(
        self, cpu: int, n: int, rng: np.random.Generator, state: dict
    ) -> Tuple[np.ndarray, np.ndarray]:
        lanes = rng.random(n)
        buffer_mask = lanes < self.p_buffer
        metadata_mask = (~buffer_mask) & (lanes < self.p_buffer + self.p_metadata)
        file_mask = ~(buffer_mask | metadata_mask)

        addresses = np.empty(n, dtype=np.int64)
        is_writes = np.zeros(n, dtype=bool)

        n_buffer = int(buffer_mask.sum())
        if n_buffer:
            offsets = rng.integers(0, self.buffer_bytes // LINE, n_buffer)
            addresses[buffer_mask] = self._buffer_base[cpu] + offsets * LINE
            is_writes[buffer_mask] = rng.random(n_buffer) < 0.5  # rx/tx rings

        n_metadata = int(metadata_mask.sum())
        if n_metadata:
            lines = self._metadata.draw(n_metadata)
            addresses[metadata_mask] = self._metadata_base + lines * LINE
            is_writes[metadata_mask] = rng.random(n_metadata) < 0.05

        n_file = int(file_mask.sum())
        if n_file:
            addresses[file_mask] = self._stream_files(n_file, rng, state)
            # Serving is read-only.

        return addresses, is_writes

    def _stream_files(
        self, n: int, rng: np.random.Generator, state: dict
    ) -> np.ndarray:
        """Walk the current request's file; pick a new file when done."""
        out = np.empty(n, dtype=np.int64)
        filled = 0
        current = state.get("file", -1)
        position = state.get("file_pos", 0)
        while filled < n:
            if current < 0 or position >= int(self.file_lines[current]):
                current = int(self._popularity.draw(1)[0])
                position = 0
            take = min(n - filled, int(self.file_lines[current]) - position)
            start_line = int(self.file_start_line[current]) + position
            out[filled : filled + take] = (
                self._files_base
                + (start_line + np.arange(take, dtype=np.int64)) * LINE
            )
            position += take
            filled += take
        state["file"] = current
        state["file_pos"] = position
        return out
