"""Fault-injection overlay: the OS journaling bug of Case Study 2.

Figure 10 of the paper shows "periodic spikes in the miss ratio around
every 5 minutes, no matter what cache size is being modeled", eventually
traced to a bug in the file system's journaling activity.  The crucial
properties are (a) periodicity on a timescale far longer than conventional
traces, and (b) cache-size independence — the spikes are *cold* traffic
(freshly written journal blocks) that no cache size absorbs.

:class:`JournalBugOverlay` wraps any base workload and periodically splices
in a burst of sequential writes to ever-fresh journal addresses, using CPU 0
(the paper's bug lived in the OS, which runs on whichever CPU takes the
timer interrupt — one CPU is enough for the signature).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.base import Chunk, LINE, Workload

#: Journal region base, far above any workload's footprint.
JOURNAL_BASE = 1 << 45


class JournalBugOverlay(Workload):
    """Periodic journal write-bursts spliced into a base workload.

    Args:
        base: the workload being perturbed.
        period_refs: distance between burst starts, in base references
            (maps to the paper's ~5 minutes of bus time).
        burst_refs: journal writes per burst.
        journal_cpu: CPU issuing the journal traffic.
    """

    name = "osjournal"

    def __init__(
        self,
        base: Workload,
        period_refs: int,
        burst_refs: int,
        journal_cpu: int = 0,
    ) -> None:
        if burst_refs >= period_refs:
            raise ConfigurationError("burst must be shorter than the period")
        if burst_refs < 1:
            raise ConfigurationError("burst must contain at least one reference")
        self.base = base
        self.n_cpus = base.n_cpus
        self.period_refs = period_refs
        self.burst_refs = burst_refs
        self.journal_cpu = journal_cpu
        self._since_burst = 0
        self._journal_pos = 0

    def chunks(self, n_refs: int, chunk_size: int = 65536) -> Iterator[Chunk]:
        for cpu_ids, addresses, is_writes in self.base.chunks(n_refs, chunk_size):
            yield self._inject(cpu_ids, addresses, is_writes)

    def _inject(self, cpu_ids, addresses, is_writes) -> Chunk:
        n = len(cpu_ids)
        position = self._since_burst
        self._since_burst = (position + n) % self.period_refs
        offsets = (position + np.arange(n, dtype=np.int64)) % self.period_refs
        burst_mask = offsets < self.burst_refs
        count = int(burst_mask.sum())
        if count == 0:
            return cpu_ids, addresses, is_writes
        cpu_ids = cpu_ids.copy()
        addresses = addresses.copy()
        is_writes = is_writes.copy()
        cpu_ids[burst_mask] = self.journal_cpu
        # Fresh journal blocks every burst: sequential, never reused.
        lines = self._journal_pos + np.arange(count, dtype=np.int64)
        self._journal_pos += count
        addresses[burst_mask] = JOURNAL_BASE + lines * LINE
        is_writes[burst_mask] = True
        return cpu_ids, addresses, is_writes

    def reset(self) -> None:
        """Restart both the base workload and the injection phase."""
        self.base.reset()
        self._since_burst = 0
        self._journal_pos = 0
