"""Synthetic TPC-H-like decision-support (DSS) workload.

DSS queries are dominated by **table scans**: each CPU streams sequentially
through its partition of the fact table, re-scanning it query after query,
and sprinkles **hash-join probes** into shared dimension tables.  Writes are
rare (load phases aside, decision support is read-mostly).

What matters for the paper's Figure 8 is the *reuse geometry*: a scan's data
becomes cache-resident only when the per-CPU scan partition fits in the
cache, so the miss-ratio-vs-cache-size curve keeps falling across the whole
sweep; and because a scan touches its entire partition quickly, short traces
exaggerate the cold-miss plateau just as the paper describes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import MB
from repro.workloads.base import LINE, InterleavedWorkload, ZipfSampler

PAGE = 4096


class TpchWorkload(InterleavedWorkload):
    """DSS reference stream: cyclic partition scans plus dimension probes.

    Args:
        fact_bytes: fact-table footprint, partitioned evenly across CPUs.
        dim_bytes: total dimension-table footprint (shared by all CPUs).
        n_cpus: CPUs running query streams.
        p_scan: fraction of references that are sequential scan traffic.
        segment_bytes: extent one query operator scans and re-scans before
            moving on (sort runs, hash-partition passes).  This is the
            scan traffic's reuse distance: caches at least this large start
            absorbing re-scans.  Defaults to 1/16th of a CPU's partition.
        rescans: how many times a query pass re-reads its segment.
        zipf_exponent: dimension-probe heat skew.
        write_fraction: store fraction (small: aggregation temporaries).
        seed: reproducibility seed.
    """

    name = "tpch"

    def __init__(
        self,
        fact_bytes: int,
        dim_bytes: int,
        n_cpus: int = 8,
        p_scan: float = 0.70,
        segment_bytes: int = 0,
        rescans: int = 4,
        zipf_exponent: float = 0.9,
        write_fraction: float = 0.04,
        seed: int = 0,
    ) -> None:
        super().__init__(n_cpus=n_cpus, seed=seed)
        if fact_bytes < n_cpus * LINE:
            raise ConfigurationError("fact table too small to partition")
        if not 0 <= p_scan <= 1:
            raise ConfigurationError("p_scan must lie in [0, 1]")
        if rescans < 1:
            raise ConfigurationError("rescans must be >= 1")
        self.fact_bytes = fact_bytes
        self.dim_bytes = dim_bytes
        self.p_scan = p_scan
        self.write_fraction = write_fraction
        self.rescans = rescans
        self.partition_bytes = (fact_bytes // n_cpus) // LINE * LINE
        self.partition_lines = self.partition_bytes // LINE
        if segment_bytes <= 0:
            segment_bytes = max(LINE * 4, self.partition_bytes // 16)
        self.segment_lines = max(4, min(segment_bytes // LINE, self.partition_lines))
        self._dim_base = fact_bytes
        # Dimension heat at line granularity (see TpccWorkload for why).
        self._dim_lines = max(1, dim_bytes // LINE)
        self.zipf_exponent = zipf_exponent
        self._rebuild_samplers()

    def _rebuild_samplers(self) -> None:
        self._dims = ZipfSampler(
            self._dim_lines, self.zipf_exponent, self.streams.get("dims")
        )

    def cpu_refs(
        self, cpu: int, n: int, rng: np.random.Generator, state: dict
    ) -> Tuple[np.ndarray, np.ndarray]:
        scan_mask = rng.random(n) < self.p_scan
        addresses = np.empty(n, dtype=np.int64)

        n_scan = int(scan_mask.sum())
        if n_scan:
            # Query-operator model: scan the current segment 'rescans'
            # times, then jump to a fresh random segment of the partition.
            budget = state.get("segment_budget", 0)
            if budget <= 0:
                # Query mixes scan extents of varying size: draw this
                # query's segment log-uniformly in [base/4, base*4] so the
                # cache-size benefit phases in gradually rather than as a
                # cliff when one fixed size suddenly fits.
                factor = 4.0 ** rng.uniform(-1.0, 1.0)
                segment = int(self.segment_lines * factor)
                segment = max(4, min(segment, self.partition_lines))
                max_start = max(1, self.partition_lines - segment)
                state["segment_lines"] = segment
                state["segment_start"] = int(rng.integers(0, max_start))
                state["segment_pos"] = 0
                budget = segment * self.rescans
            segment_lines = state["segment_lines"]
            segment_start = state["segment_start"]
            position = state["segment_pos"]
            lines = segment_start + (
                (position + np.arange(n_scan, dtype=np.int64)) % segment_lines
            )
            state["segment_pos"] = int((position + n_scan) % segment_lines)
            state["segment_budget"] = budget - n_scan
            addresses[scan_mask] = cpu * self.partition_bytes + lines * LINE

        n_probe = n - n_scan
        if n_probe:
            lines = self._dims.draw(n_probe)
            addresses[~scan_mask] = self._dim_base + lines.astype(np.int64) * LINE

        is_writes = rng.random(n) < self.write_fraction
        return addresses, is_writes


def paper_tpch(scale: int = 512, n_cpus: int = 8, seed: int = 0) -> TpchWorkload:
    """The paper's 100 GB TPC-H database, scaled down by ``scale``.

    Roughly 85% of a TPC-H database is fact data (lineitem + orders); the
    rest is dimensions.
    """
    total = (100 * 1024 * MB) // scale
    fact = max(n_cpus * LINE * 1024, int(total * 0.85))
    dims = max(PAGE * 16, total - fact)
    return TpchWorkload(fact_bytes=fact, dim_bytes=dims, n_cpus=n_cpus, seed=seed)
