"""Synthetic TPC-C-like OLTP workload.

TPC-C traffic, as seen by a memory bus, has three structural ingredients
this generator reproduces:

* a **shared hot set** — index roots, frequently updated warehouse/district
  rows — that every CPU hammers (Zipf-distributed page heat, common
  permutation across CPUs);
* **CPU-affine traffic** — each server process works its own transactions,
  so most data-page touches are Zipf-distributed over the database with a
  *per-CPU* heat permutation (hot sets mostly disjoint across CPUs);
* small **private per-process regions** (stack, locals, buffers) with very
  high locality.

The interplay of the first two is what produces the paper's Figure 9
crossover: with short traces, shared cold misses amortise across the CPUs
behind one cache (sharing looks good); at steady state the disjoint affine
hot sets aggregate and overflow the cache (sharing looks bad).

Footprints are parameters, so experiments scale the paper's 150 GB database
down by the common scale factor.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.units import MB
from repro.workloads.base import LINE, InterleavedWorkload, ZipfSampler

#: Database page size.
PAGE = 4096


class TpccWorkload(InterleavedWorkload):
    """OLTP reference stream with shared-hot, CPU-affine and private traffic.

    Args:
        db_bytes: total database footprint (tables + indexes).
        n_cpus: server CPUs.
        private_bytes: per-CPU private region (stack/heap locals).
        p_private: fraction of references hitting the private region.
        p_common: among shared references, fraction drawn from the common
            (CPU-independent) heat distribution.
        zipf_exponent: page-heat skew for both distributions.
        write_fraction: store fraction (OLTP is update-heavy, ~1 write per
            3 references).
        common_region_bytes: when positive, the common traffic is drawn
            from a *bounded* region of this size (mild Zipf inside) instead
            of Zipf over the whole database.  This models the index upper
            levels and warehouse/district rows every server process keeps
            touching — the bounded common working set whose cold misses
            amortise across processors behind a shared cache (the Figure 9
            short-trace effect).
        common_write_fraction: store fraction for *common* traffic only;
            defaults to ``write_fraction``.  Index upper levels are
            read-mostly, so Figure 9 style studies set this low — otherwise
            coherence invalidations of the replicated common set dominate
            the private-cache configurations.
        affine_region_bytes: when positive, each CPU's affine traffic is
            drawn from its *own* region of this size (Zipf inside) instead
            of a CPU-specific Zipf over the whole database — a server
            process's steady-state working set.  Disjoint affine regions
            are what make sharing costly at steady state (the Figure 9
            long-trace effect).
        seed: reproducibility seed.
    """

    name = "tpcc"

    def __init__(
        self,
        db_bytes: int,
        n_cpus: int = 8,
        private_bytes: int = 256 * 1024,
        p_private: float = 0.20,
        p_common: float = 0.30,
        zipf_exponent: float = 0.85,
        write_fraction: float = 0.25,
        common_region_bytes: int = 0,
        affine_region_bytes: int = 0,
        common_write_fraction: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(n_cpus=n_cpus, seed=seed)
        if db_bytes < PAGE:
            raise ConfigurationError(f"database of {db_bytes} bytes is too small")
        if not 0 <= p_private <= 1 or not 0 <= p_common <= 1:
            raise ConfigurationError("probabilities must lie in [0, 1]")
        self.db_bytes = db_bytes
        self.private_bytes = private_bytes
        self.p_private = p_private
        self.p_common = p_common
        self.write_fraction = write_fraction
        self.common_write_fraction = (
            write_fraction if common_write_fraction is None else common_write_fraction
        )
        self.n_pages = db_bytes // PAGE
        # Page heat is modeled at cache-line granularity: within a hot page
        # the hot rows/index slots are a few lines, not all 32, so drawing
        # lines directly through the Zipf map preserves the working-set
        # geometry a page-then-uniform-line scheme would dilute 32x.
        self.n_lines = db_bytes // LINE
        self.common_region_lines = min(common_region_bytes // LINE, self.n_lines)
        self.affine_region_lines = min(affine_region_bytes // LINE, self.n_lines)
        self.zipf_exponent = zipf_exponent
        self._rebuild_samplers()
        # Region bases: private regions first, then the database.  The
        # common region occupies the start of the database; bounded affine
        # regions are laid out disjointly after it.
        self._private_base = [cpu * private_bytes for cpu in range(n_cpus)]
        self._db_base = n_cpus * private_bytes
        self._affine_base = [
            self._db_base
            + self.common_region_lines * LINE
            + cpu * self.affine_region_lines * LINE
            for cpu in range(n_cpus)
        ]

    def _rebuild_samplers(self) -> None:
        layout_rng = self.streams.get("layout")
        if self.common_region_lines > 0:
            # Bounded common working set: a mild Zipf over the region so it
            # has hot and warm lines but finite extent.
            self._common = ZipfSampler(self.common_region_lines, 0.8, layout_rng)
        else:
            self._common = ZipfSampler(self.n_lines, self.zipf_exponent, layout_rng)
        affine_population = (
            self.affine_region_lines if self.affine_region_lines > 0 else self.n_lines
        )
        self._affine = [
            ZipfSampler(
                affine_population,
                self.zipf_exponent,
                self.streams.get(f"affine{cpu}"),
            )
            for cpu in range(self.n_cpus)
        ]

    def cpu_refs(
        self, cpu: int, n: int, rng: np.random.Generator, state: dict
    ) -> Tuple[np.ndarray, np.ndarray]:
        lanes = rng.random(n)
        private_mask = lanes < self.p_private
        common_mask = (~private_mask) & (
            lanes < self.p_private + (1 - self.p_private) * self.p_common
        )
        affine_mask = ~(private_mask | common_mask)

        addresses = np.empty(n, dtype=np.int64)

        n_private = int(private_mask.sum())
        if n_private:
            offsets = rng.integers(0, self.private_bytes // LINE, n_private) * LINE
            addresses[private_mask] = self._private_base[cpu] + offsets

        n_common = int(common_mask.sum())
        if n_common:
            lines = self._common.draw(n_common)
            addresses[common_mask] = self._db_base + lines.astype(np.int64) * LINE

        n_affine = int(affine_mask.sum())
        if n_affine:
            lines = self._affine[cpu].draw(n_affine)
            if self.affine_region_lines > 0:
                base = self._affine_base[cpu]
            else:
                base = self._db_base
            addresses[affine_mask] = base + lines.astype(np.int64) * LINE

        is_writes = rng.random(n) < self.write_fraction
        if self.common_write_fraction != self.write_fraction:
            n_common_total = int(common_mask.sum())
            if n_common_total:
                is_writes[common_mask] = (
                    rng.random(n_common_total) < self.common_write_fraction
                )
        return addresses, is_writes


def paper_tpcc(scale: int = 512, n_cpus: int = 8, seed: int = 0) -> TpccWorkload:
    """The paper's 150 GB TPC-C database, scaled down by ``scale``."""
    db_bytes = max(PAGE * 64, (150 * 1024 * MB) // scale)
    return TpccWorkload(db_bytes=db_bytes, n_cpus=n_cpus, seed=seed)
