"""SPLASH2 Water (spatial) kernel generator.

Water-spatial computes intra- and inter-molecular forces with a cutoff
radius: each thread sweeps its own box of molecules and reads molecules in
neighbouring boxes.  The footprint is the smallest in Table 5 (1.38 GB for
125^3 molecules) and the working set is correspondingly compact, matching
the very low miss rates the paper reports for Water in Table 6.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.workloads.base import LINE, InterleavedWorkload
from repro.workloads.splash.common import KernelGeometry, windowed_sequential_lines

#: A molecule is touched many times while its interactions are computed,
#: and its neighbours live in a small trailing window of the sweep.
TOUCHES_PER_LINE = 16
NEIGHBOURHOOD_WINDOW_LINES = 32

#: Table 5: 1.38 GB for 1,953,125 molecules -> ~707 bytes per molecule.
BYTES_PER_MOLECULE = 707


class WaterWorkload(InterleavedWorkload):
    """Partitioned molecule sweeps with neighbour-box reads.

    Args:
        n_molecules: molecule count (the paper runs 125^3).
        n_cpus: threads.
        neighbour_fraction: share of references reading other threads'
            molecules (cutoff-radius interactions).
        write_fraction: stores within the owned partition (force/position
            updates).
        seed: reproducibility seed.
    """

    name = "water"

    def __init__(
        self,
        n_molecules: int,
        n_cpus: int = 8,
        neighbour_fraction: float = 0.15,
        write_fraction: float = 0.35,
        seed: int = 0,
    ) -> None:
        super().__init__(n_cpus=n_cpus, seed=seed)
        self.n_molecules = n_molecules
        footprint = n_molecules * BYTES_PER_MOLECULE
        partition = max(LINE * 4, footprint // n_cpus // LINE * LINE)
        self.geometry = KernelGeometry(n_cpus=n_cpus, partition_bytes=partition)
        self.neighbour_fraction = neighbour_fraction
        self.write_fraction = write_fraction

    @classmethod
    def paper_scale(cls, scale: int = 512, n_cpus: int = 8, seed: int = 0) -> "WaterWorkload":
        """Table 5 size (125^3 molecules) divided by ``scale``."""
        return cls(n_molecules=max(512, 125 ** 3 // scale), n_cpus=n_cpus, seed=seed)

    @classmethod
    def splash2_scale(cls, scale: int = 512, n_cpus: int = 8, seed: int = 0) -> "WaterWorkload":
        """Original SPLASH2 size (512 molecules), floor-scaled by ``scale``.

        512 molecules is already tiny; scaling divides it but keeps at
        least 64 so the stream stays meaningful.
        """
        return cls(n_molecules=max(64, 512 // scale), n_cpus=n_cpus, seed=seed)

    def cpu_refs(
        self, cpu: int, n: int, rng: np.random.Generator, state: dict
    ) -> Tuple[np.ndarray, np.ndarray]:
        geometry = self.geometry
        neighbour_mask = rng.random(n) < self.neighbour_fraction
        addresses = np.empty(n, dtype=np.int64)
        is_writes = np.empty(n, dtype=bool)

        n_own = int((~neighbour_mask).sum())
        if n_own:
            lines = windowed_sequential_lines(
                state,
                "sweep",
                n_own,
                geometry.partition_lines,
                TOUCHES_PER_LINE,
                NEIGHBOURHOOD_WINDOW_LINES,
                rng,
            )
            addresses[~neighbour_mask] = geometry.partition_base(cpu) + lines * LINE
            is_writes[~neighbour_mask] = rng.random(n_own) < self.write_fraction

        n_neighbour = n - n_own
        if n_neighbour:
            # Cutoff interactions: adjacent threads' boxes, random molecules.
            neighbours = np.where(
                rng.random(n_neighbour) < 0.5,
                (cpu - 1) % self.n_cpus,
                (cpu + 1) % self.n_cpus,
            )
            lines = rng.integers(0, geometry.partition_lines, n_neighbour)
            addresses[neighbour_mask] = (
                neighbours * geometry.partition_bytes + lines * LINE
            )
            is_writes[neighbour_mask] = False

        return addresses, is_writes
