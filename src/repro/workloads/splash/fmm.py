"""SPLASH2 FMM kernel (fast multipole method n-body) generator.

FMM differs from Barnes-Hut in its communication intensity: threads
*accumulate into shared cells* (multipole and local expansions flow up and
down the shared tree), so a large share of the shared traffic is
read-modify-write.  This is exactly why the paper singles FMM out: "FMM has
a significant amount of modified and shared intervention traffic relative to
the other applications, indicating more data sharing" (Figure 12).

Table 5 runs 4 M particles (8.34 GB); the original SPLASH2 characterisation
used 16 K.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.workloads.base import LINE, InterleavedWorkload, ZipfSampler
from repro.workloads.splash.common import KernelGeometry, windowed_sequential_lines

#: Per-particle processing touches its line repeatedly; interaction-list
#: neighbours live in a trailing window of the sweep.
TOUCHES_PER_LINE = 8
NEIGHBOURHOOD_WINDOW_LINES = 16

#: Table 5: 8.34 GB for 4 M particles -> ~2.2 KB per particle (bodies plus
#: per-cell multipole/local expansion storage).
BYTES_PER_PARTICLE = 2240
#: Fraction of the footprint living in the shared cell structure.
SHARED_SHARE = 0.45


class FmmWorkload(InterleavedWorkload):
    """Particle sweeps plus read-modify-write traffic into shared cells.

    Args:
        n_particles: particle count.
        n_cpus: threads.
        shared_fraction: share of references into the shared cell tree.
        shared_write_fraction: stores among shared references (the
            expansion accumulations that cause interventions).
        zipf_exponent: cell reuse skew.
        seed: reproducibility seed.
    """

    name = "fmm"

    _BODY_WRITE_FRACTION = 0.30

    def __init__(
        self,
        n_particles: int,
        n_cpus: int = 8,
        shared_fraction: float = 0.38,
        shared_write_fraction: float = 0.30,
        zipf_exponent: float = 1.05,
        seed: int = 0,
    ) -> None:
        super().__init__(n_cpus=n_cpus, seed=seed)
        self.n_particles = n_particles
        footprint = n_particles * BYTES_PER_PARTICLE
        shared_bytes = max(LINE * 8, int(footprint * SHARED_SHARE) // LINE * LINE)
        partition = max(
            LINE * 4, (footprint - shared_bytes) // n_cpus // LINE * LINE
        )
        self.geometry = KernelGeometry(
            n_cpus=n_cpus, partition_bytes=partition, shared_bytes=shared_bytes
        )
        self.shared_fraction = shared_fraction
        self.shared_write_fraction = shared_write_fraction
        self.zipf_exponent = zipf_exponent
        self._rebuild_samplers()

    def _rebuild_samplers(self) -> None:
        self._cells = ZipfSampler(
            self.geometry.shared_lines, self.zipf_exponent, self.streams.get("cells")
        )

    @classmethod
    def paper_scale(cls, scale: int = 512, n_cpus: int = 8, seed: int = 0) -> "FmmWorkload":
        """Table 5 size (4 M particles) divided by ``scale``."""
        return cls(n_particles=max(1024, (4 << 20) // scale), n_cpus=n_cpus, seed=seed)

    @classmethod
    def splash2_scale(cls, scale: int = 512, n_cpus: int = 8, seed: int = 0) -> "FmmWorkload":
        """Original SPLASH2 size (16 K particles) divided by ``scale``."""
        return cls(n_particles=max(128, (16 << 10) // scale), n_cpus=n_cpus, seed=seed)

    def cpu_refs(
        self, cpu: int, n: int, rng: np.random.Generator, state: dict
    ) -> Tuple[np.ndarray, np.ndarray]:
        geometry = self.geometry
        shared_mask = rng.random(n) < self.shared_fraction
        addresses = np.empty(n, dtype=np.int64)
        is_writes = np.empty(n, dtype=bool)

        n_shared = int(shared_mask.sum())
        if n_shared:
            cells = self._cells.draw(n_shared)
            addresses[shared_mask] = geometry.shared_base + cells * LINE
            is_writes[shared_mask] = rng.random(n_shared) < self.shared_write_fraction

        n_body = n - n_shared
        if n_body:
            lines = windowed_sequential_lines(
                state,
                "bodies",
                n_body,
                geometry.partition_lines,
                TOUCHES_PER_LINE,
                NEIGHBOURHOOD_WINDOW_LINES,
                rng,
            )
            addresses[~shared_mask] = geometry.partition_base(cpu) + lines * LINE
            is_writes[~shared_mask] = rng.random(n_body) < self._BODY_WRITE_FRACTION

        return addresses, is_writes
