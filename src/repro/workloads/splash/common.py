"""Shared building blocks for the SPLASH2 kernel generators.

Every kernel is built from two reference patterns:

* **partitioned sequential sweeps** — each thread owns a contiguous slice of
  the main data array(s) and streams through it (:func:`sequential_lines`),
  the dominant pattern of data-parallel scientific code; and
* **shared-structure accesses** — reads (and occasionally writes) into a
  structure all threads touch: an octree, a grid boundary, a particle list.

:class:`KernelGeometry` centralises the address-space layout (per-CPU
partitions first, shared region after) so that kernels only reason about
fractions and phases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.workloads.base import LINE


@dataclass(frozen=True)
class KernelGeometry:
    """Address-space layout of a partitioned kernel.

    Attributes:
        n_cpus: thread count (one per host CPU).
        partition_bytes: per-thread private slice of the main data.
        shared_bytes: footprint of the shared structure (0 when absent).
    """

    n_cpus: int
    partition_bytes: int
    shared_bytes: int = 0

    def __post_init__(self) -> None:
        if self.partition_bytes < LINE:
            raise ConfigurationError(
                f"partition of {self.partition_bytes} bytes is below one line"
            )

    @property
    def partition_lines(self) -> int:
        """Cache lines per partition."""
        return self.partition_bytes // LINE

    @property
    def shared_base(self) -> int:
        """First byte of the shared region."""
        return self.n_cpus * self.partition_bytes

    @property
    def shared_lines(self) -> int:
        """Cache lines in the shared region."""
        return max(1, self.shared_bytes // LINE)

    @property
    def total_bytes(self) -> int:
        """Total footprint of the kernel."""
        return self.n_cpus * self.partition_bytes + self.shared_bytes

    def partition_base(self, cpu: int) -> int:
        """First byte of one thread's partition."""
        return cpu * self.partition_bytes


def sequential_lines(
    state: dict,
    key: str,
    count: int,
    region_lines: int,
) -> np.ndarray:
    """Advance a persistent sequential cursor; returns line indices.

    The cursor named ``key`` in ``state`` wraps cyclically over
    ``region_lines`` — modelling a sweep that restarts every iteration.
    """
    position = state.get(key, 0)
    lines = (position + np.arange(count, dtype=np.int64)) % region_lines
    state[key] = int((position + count) % region_lines)
    return lines


def windowed_sequential_lines(
    state: dict,
    key: str,
    count: int,
    region_lines: int,
    repeat: int,
    window: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """A sweep with local temporal reuse: the common scientific pattern.

    The cursor advances one line every ``repeat`` references (a body/cell
    is touched many times while being processed), and each reference lands
    uniformly in the trailing ``window`` lines (neighbour interactions).
    Reuse distance is therefore ~``window`` lines instead of the whole
    region — which is what lets a cache far smaller than the data absorb
    most of a kernel's traffic, as the paper's Table 6 miss rates show.
    """
    position = state.get(key, 0)
    steps = position + np.arange(count, dtype=np.int64)
    state[key] = int(position + count)
    base = steps // max(1, repeat)
    if window > 1:
        offsets = rng.integers(0, window, count)
    else:
        offsets = np.zeros(count, dtype=np.int64)
    return (base - offsets) % region_lines


def stencil_lines(
    state: dict,
    key: str,
    count: int,
    region_lines: int,
    row_lines: int,
) -> np.ndarray:
    """A five-point-stencil sweep over a row-major grid region.

    For each column position the stencil touches the same column in the
    rows above, at and below the current row (three references per cell),
    so every line is reused across three consecutive row sweeps — reuse
    distance ~2 rows, the locality signature of grid solvers like Ocean.
    """
    row_lines = max(1, min(row_lines, region_lines))
    n_rows = max(1, region_lines // row_lines)
    position = state.get(key, 0)
    steps = position + np.arange(count, dtype=np.int64)
    state[key] = int(position + count)
    column = (steps // 3) % row_lines
    row_offset = steps % 3  # rows r-1, r, r+1 of the stencil
    row = (steps // (3 * row_lines)) % n_rows
    return ((row + row_offset) % n_rows) * row_lines + column


def strided_lines(
    state: dict,
    key: str,
    count: int,
    region_lines: int,
    stride_lines: int,
) -> np.ndarray:
    """Advance a persistent strided cursor (transpose-style traversal)."""
    position = state.get(key, 0)
    steps = position + np.arange(count, dtype=np.int64)
    lines = (steps * stride_lines) % region_lines
    state[key] = int(position + count)
    return lines
