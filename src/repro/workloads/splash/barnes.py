"""SPLASH2 Barnes-Hut kernel (hierarchical n-body) generator.

Each timestep has two memory personalities: a short **tree-build** phase in
which all threads insert bodies into the shared octree (writes to shared
cells), and a long **force-computation** phase in which each thread streams
through its own bodies while reading the shared tree — with strong reuse of
the upper tree levels (modelled as Zipf-distributed cell popularity).

Table 5 runs 16 M bodies (3.1 GB); the original SPLASH2 characterisation
used 16 K.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.workloads.base import LINE, InterleavedWorkload, ZipfSampler
from repro.workloads.splash.common import KernelGeometry, windowed_sequential_lines

#: A body is touched repeatedly while its forces accumulate, with its
#: spatial neighbours in a small trailing window of the sweep.
TOUCHES_PER_LINE = 8
NEIGHBOURHOOD_WINDOW_LINES = 16

#: Table 5: 3.1 GB for 16M bodies -> ~194 bytes per body.
BYTES_PER_BODY = 194
#: Octree cells per body (interior nodes), and bytes per cell.
CELLS_PER_BODY = 0.5
BYTES_PER_CELL = 88


class BarnesWorkload(InterleavedWorkload):
    """Body sweeps plus Zipf-weighted shared-tree traversal.

    Args:
        n_bodies: particle count.
        n_cpus: threads.
        tree_fraction: share of references into the shared tree during
            force computation.
        rebuild_fraction: share of each timestep spent rebuilding the tree
            (all-write traffic into the shared region).
        zipf_exponent: tree-level reuse skew (root levels are hottest).
        seed: reproducibility seed.
    """

    name = "barnes"

    #: How much shared traffic is store traffic outside the rebuild phase.
    _TREE_WRITE_FRACTION = 0.05
    #: Store fraction when sweeping the owned bodies (position updates).
    _BODY_WRITE_FRACTION = 0.30

    def __init__(
        self,
        n_bodies: int,
        n_cpus: int = 8,
        tree_fraction: float = 0.25,
        rebuild_fraction: float = 0.06,
        zipf_exponent: float = 1.1,
        seed: int = 0,
    ) -> None:
        super().__init__(n_cpus=n_cpus, seed=seed)
        self.n_bodies = n_bodies
        body_bytes = n_bodies * BYTES_PER_BODY
        shared_bytes = max(LINE * 8, int(n_bodies * CELLS_PER_BODY) * BYTES_PER_CELL)
        partition = max(LINE * 4, body_bytes // n_cpus // LINE * LINE)
        self.geometry = KernelGeometry(
            n_cpus=n_cpus, partition_bytes=partition, shared_bytes=shared_bytes
        )
        self.tree_fraction = tree_fraction
        self.rebuild_fraction = rebuild_fraction
        self.zipf_exponent = zipf_exponent
        self._rebuild_samplers()
        # One timestep visits every owned body once (heuristically x2 for
        # multiple per-body passes).
        self.timestep_refs = max(1024, 2 * self.geometry.partition_lines)

    def _rebuild_samplers(self) -> None:
        self._tree = ZipfSampler(
            self.geometry.shared_lines, self.zipf_exponent, self.streams.get("tree")
        )

    @classmethod
    def paper_scale(cls, scale: int = 512, n_cpus: int = 8, seed: int = 0) -> "BarnesWorkload":
        """Table 5 size (16 M bodies) divided by ``scale``."""
        return cls(n_bodies=max(2048, (16 << 20) // scale), n_cpus=n_cpus, seed=seed)

    @classmethod
    def splash2_scale(cls, scale: int = 512, n_cpus: int = 8, seed: int = 0) -> "BarnesWorkload":
        """Original SPLASH2 size (16 K bodies) divided by ``scale``."""
        return cls(n_bodies=max(128, (16 << 10) // scale), n_cpus=n_cpus, seed=seed)

    def cpu_refs(
        self, cpu: int, n: int, rng: np.random.Generator, state: dict
    ) -> Tuple[np.ndarray, np.ndarray]:
        geometry = self.geometry
        # Position within the current timestep decides build vs force phase.
        phase_pos = state.get("phase_pos", 0)
        offsets = (phase_pos + np.arange(n, dtype=np.int64)) % self.timestep_refs
        state["phase_pos"] = int((phase_pos + n) % self.timestep_refs)
        rebuild_mask = offsets < self.rebuild_fraction * self.timestep_refs

        lanes = rng.random(n)
        tree_mask = (~rebuild_mask) & (lanes < self.tree_fraction)
        body_mask = ~(rebuild_mask | tree_mask)

        addresses = np.empty(n, dtype=np.int64)
        is_writes = np.empty(n, dtype=bool)
        shared_base = geometry.shared_base

        n_rebuild = int(rebuild_mask.sum())
        if n_rebuild:
            cells = self._tree.draw(n_rebuild)
            addresses[rebuild_mask] = shared_base + cells * LINE
            is_writes[rebuild_mask] = True

        n_tree = int(tree_mask.sum())
        if n_tree:
            cells = self._tree.draw(n_tree)
            addresses[tree_mask] = shared_base + cells * LINE
            is_writes[tree_mask] = rng.random(n_tree) < self._TREE_WRITE_FRACTION

        n_body = int(body_mask.sum())
        if n_body:
            lines = windowed_sequential_lines(
                state,
                "bodies",
                n_body,
                geometry.partition_lines,
                TOUCHES_PER_LINE,
                NEIGHBOURHOOD_WINDOW_LINES,
                rng,
            )
            addresses[body_mask] = geometry.partition_base(cpu) + lines * LINE
            is_writes[body_mask] = rng.random(n_body) < self._BODY_WRITE_FRACTION

        return addresses, is_writes
