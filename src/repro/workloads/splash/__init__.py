"""SPLASH2 kernel address-stream generators.

One module per application the paper runs (Table 5): FFT, Ocean, FMM,
Water (spatial) and Barnes-Hut.  Each generator reproduces the kernel's
*memory-reference structure* — partitioned sequential sweeps, shared
tree/grid traversal, inter-thread communication — rather than its
arithmetic, and exposes two size presets per kernel:

* ``paper_scale(scale)`` — the realistic sizes of Table 5 (e.g. FFT m=28,
  12.58 GB), divided by ``scale``;
* ``splash2_scale(scale)`` — the original SPLASH2 paper sizes of Table 1
  (e.g. FFT 64 K points), divided by the same ``scale``,

so Table 6's small-size vs. realistic-size comparison can be reproduced with
a consistent scaling factor.
"""

from repro.workloads.splash.fft import FftWorkload
from repro.workloads.splash.ocean import OceanWorkload
from repro.workloads.splash.barnes import BarnesWorkload
from repro.workloads.splash.fmm import FmmWorkload
from repro.workloads.splash.water import WaterWorkload

ALL_KERNELS = {
    "fmm": FmmWorkload,
    "fft": FftWorkload,
    "ocean": OceanWorkload,
    "water": WaterWorkload,
    "barnes": BarnesWorkload,
}

__all__ = [
    "ALL_KERNELS",
    "BarnesWorkload",
    "FftWorkload",
    "FmmWorkload",
    "OceanWorkload",
    "WaterWorkload",
]
