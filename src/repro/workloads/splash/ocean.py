"""SPLASH2 Ocean kernel (grid-based ocean current solver) generator.

Ocean repeatedly sweeps five-point stencils over ~25 double-precision
n x n grids, with each thread owning a contiguous block of rows.  The only
communication is reading the neighbouring threads' **boundary rows**, a thin
slice of their partitions — so interventions stay small (the paper groups
Ocean with FFT as low-sharing) while the footprint is enormous (n=8194 is
14.5 GB in Table 5).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.workloads.base import LINE, InterleavedWorkload
from repro.workloads.splash.common import KernelGeometry, stencil_lines

#: Table 5: 14.5 GB at n=8194 -> about 27 grids of n*n doubles.
GRIDS = 27
BYTES_PER_CELL = 8


class OceanWorkload(InterleavedWorkload):
    """Stencil sweeps over row-partitioned grids with boundary exchange.

    Args:
        grid_n: grid edge length (the ``-n`` command-line parameter).
        n_cpus: threads.
        boundary_fraction: share of references touching a neighbour's
            boundary rows.
        write_fraction: stores within the owned block (stencil updates).
        seed: reproducibility seed.
    """

    name = "ocean"

    def __init__(
        self,
        grid_n: int,
        n_cpus: int = 8,
        boundary_fraction: float = 0.03,
        write_fraction: float = 0.40,
        seed: int = 0,
    ) -> None:
        super().__init__(n_cpus=n_cpus, seed=seed)
        self.grid_n = grid_n
        footprint = GRIDS * grid_n * grid_n * BYTES_PER_CELL
        partition = max(LINE * 8, footprint // n_cpus // LINE * LINE)
        self.geometry = KernelGeometry(n_cpus=n_cpus, partition_bytes=partition)
        self.boundary_fraction = boundary_fraction
        self.write_fraction = write_fraction
        # A boundary is one grid row: n cells.
        self.boundary_lines = max(1, grid_n * BYTES_PER_CELL // LINE)

    @classmethod
    def paper_scale(cls, scale: int = 512, n_cpus: int = 8, seed: int = 0) -> "OceanWorkload":
        """Table 5 size (n=8194) with area divided by ``scale``."""
        n = max(66, int(8194 / scale ** 0.5))
        return cls(grid_n=n, n_cpus=n_cpus, seed=seed)

    @classmethod
    def splash2_scale(cls, scale: int = 512, n_cpus: int = 8, seed: int = 0) -> "OceanWorkload":
        """Original SPLASH2 size (n=258) with area divided by ``scale``."""
        n = max(18, int(258 / scale ** 0.5))
        return cls(grid_n=n, n_cpus=n_cpus, seed=seed)

    def cpu_refs(
        self, cpu: int, n: int, rng: np.random.Generator, state: dict
    ) -> Tuple[np.ndarray, np.ndarray]:
        geometry = self.geometry
        boundary_mask = rng.random(n) < self.boundary_fraction
        addresses = np.empty(n, dtype=np.int64)
        is_writes = np.empty(n, dtype=bool)

        n_own = int((~boundary_mask).sum())
        if n_own:
            row_lines = max(1, self.grid_n * BYTES_PER_CELL // LINE)
            lines = stencil_lines(
                state, "sweep", n_own, geometry.partition_lines, row_lines
            )
            addresses[~boundary_mask] = geometry.partition_base(cpu) + lines * LINE
            is_writes[~boundary_mask] = rng.random(n_own) < self.write_fraction

        n_boundary = n - n_own
        if n_boundary:
            # Read the first rows of the neighbours' blocks (above / below).
            neighbours = np.where(
                rng.random(n_boundary) < 0.5,
                (cpu - 1) % self.n_cpus,
                (cpu + 1) % self.n_cpus,
            )
            lines = rng.integers(0, self.boundary_lines, n_boundary)
            addresses[boundary_mask] = (
                neighbours * geometry.partition_bytes + lines * LINE
            )
            is_writes[boundary_mask] = False

        return addresses, is_writes
