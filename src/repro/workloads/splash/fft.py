"""SPLASH2 FFT kernel (radix-√n six-step FFT) address-stream generator.

The six-step FFT alternates **local butterfly passes** — each thread
streaming sequentially through its own rows of the √n x √n matrix — with an
**all-to-all transpose** in which every thread reads one block from every
other thread's partition and writes it into its own.  The transpose is the
only communication, which is why the paper finds FFT has "relatively small
modified or shared interventions" (Figure 12 discussion).

Sizes: the paper runs ``-m28 -l7`` (2^28 points, 12.58 GB); the original
SPLASH2 characterisation used 64 K points (m=16).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.workloads.base import LINE, InterleavedWorkload
from repro.workloads.splash.common import KernelGeometry, sequential_lines

#: Table 5: 12.58 GB for 2^28 points -> ~48 bytes per complex point
#: (source + destination + twiddle arrays).
BYTES_PER_POINT = 48


class FftWorkload(InterleavedWorkload):
    """Six-step FFT: local passes punctuated by an all-to-all transpose.

    Args:
        n_points: FFT size (the ``2**m`` of the command line).
        n_cpus: threads.
        local_fraction: share of references in local butterfly passes
            (the remainder is transpose communication).
        row_bytes: when positive, local passes are *row-structured*: the
            six-step FFT works on one √n-point row at a time, re-sweeping
            it ``row_passes`` times (the log2 √n butterfly stages) before
            moving on.  A row that fits in cache makes all but the first
            sweep hit — the reason realistic FFT sizes show far *lower*
            miss rates than scaled-down ones in the paper's Table 6.
            Because the row/cache ratio is what matters, experiments pass
            the paper-scale row size through their common scale factor
            rather than deriving it from the (scaled) ``n_points``.
        row_passes: butterfly stages per row (log2 √n at paper scale).
        transpose_scatter: read peer partitions at random lines instead of
            sequentially.  A transpose moves √n/P-point blocks; when the
            problem is small those blocks shrink below a cache line and the
            traffic is effectively scattered — one of the reasons small FFT
            sizes show much worse miss rates than realistic ones (Table 6).
        seed: reproducibility seed.
    """

    name = "fft"

    def __init__(
        self,
        n_points: int,
        n_cpus: int = 8,
        local_fraction: float = 0.85,
        row_bytes: int = 0,
        row_passes: int = 1,
        transpose_scatter: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__(n_cpus=n_cpus, seed=seed)
        self.n_points = n_points
        footprint = n_points * BYTES_PER_POINT
        partition = max(LINE * 4, footprint // n_cpus // LINE * LINE)
        self.geometry = KernelGeometry(n_cpus=n_cpus, partition_bytes=partition)
        self.local_fraction = local_fraction
        self.row_lines = min(row_bytes // LINE, self.geometry.partition_lines)
        self.row_passes = max(1, row_passes)
        self.transpose_scatter = transpose_scatter

    @classmethod
    def paper_scale(cls, scale: int = 512, n_cpus: int = 8, seed: int = 0) -> "FftWorkload":
        """Table 5 size (m=28) divided by ``scale``."""
        return cls(n_points=max(1024, (1 << 28) // scale), n_cpus=n_cpus, seed=seed)

    @classmethod
    def splash2_scale(cls, scale: int = 512, n_cpus: int = 8, seed: int = 0) -> "FftWorkload":
        """Original SPLASH2 size (64 K points) divided by ``scale``."""
        return cls(n_points=max(256, (1 << 16) // scale), n_cpus=n_cpus, seed=seed)

    def cpu_refs(
        self, cpu: int, n: int, rng: np.random.Generator, state: dict
    ) -> Tuple[np.ndarray, np.ndarray]:
        geometry = self.geometry
        local_mask = rng.random(n) < self.local_fraction
        addresses = np.empty(n, dtype=np.int64)
        is_writes = np.empty(n, dtype=bool)

        n_local = int(local_mask.sum())
        if n_local:
            if self.row_lines > 0:
                # Row-structured passes: re-sweep the current row
                # row_passes times, then advance to the next row.
                step = state.get("local_step", 0)
                steps = step + np.arange(n_local, dtype=np.int64)
                state["local_step"] = int(step + n_local)
                per_row = self.row_lines * self.row_passes
                row_index = steps // per_row
                within = steps % per_row
                lines = (
                    row_index * self.row_lines + within % self.row_lines
                ) % geometry.partition_lines
            else:
                lines = sequential_lines(
                    state, "local", n_local, geometry.partition_lines
                )
            addresses[local_mask] = geometry.partition_base(cpu) + lines * LINE
            # Butterfly passes read and rewrite the data in place.
            is_writes[local_mask] = rng.random(n_local) < 0.5

        n_comm = n - n_local
        if n_comm:
            comm_mask = ~local_mask
            # Transpose: read a block from each other thread in turn, write
            # the result into our own partition.
            reads = rng.random(n_comm) < 0.5
            if self.transpose_scatter:
                lines = rng.integers(
                    0, geometry.partition_lines, n_comm
                ).astype(np.int64)
            else:
                lines = sequential_lines(
                    state, "transpose", n_comm, geometry.partition_lines
                )
            source_cpus = (
                cpu
                + 1
                + (
                    sequential_lines(state, "peer", n_comm, max(1, self.n_cpus - 1))
                    % max(1, self.n_cpus - 1)
                )
            ) % self.n_cpus
            peer_addrs = source_cpus * geometry.partition_bytes + lines * LINE
            own_addrs = geometry.partition_base(cpu) + lines * LINE
            addresses[comm_mask] = np.where(reads, peer_addrs, own_addrs)
            is_writes[comm_mask] = ~reads

        return addresses, is_writes
