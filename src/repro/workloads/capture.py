"""End-to-end capture pipeline: workload -> host SMP -> bus trace.

This is the glue the paper's methodology implies: run a workload on the
host with a MemorIES board in trace-collection mode, keep the resulting
trace, then replay it offline through as many cache configurations as
needed ("a mechanism to collect traces for finer and repeatable off-line
analysis", Section 1).  Replaying one captured trace into several boards is
dramatically cheaper than re-running the host, and matches how the paper's
trace-length case study was performed.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bus.bus import Monitor
from repro.bus.trace import BusTrace
from repro.host.smp import HostConfig, HostSMP, S7A_HOST
from repro.memories.board import MemoriesBoard
from repro.memories.firmware.tracer import TraceCollectorFirmware
from repro.workloads.base import Workload


def capture_bus_trace(
    workload: Workload,
    n_refs: int,
    host_config: Optional[HostConfig] = None,
    chunk_size: int = 65536,
) -> BusTrace:
    """Run ``workload`` on a host machine and capture its bus trace.

    Args:
        workload: the reference-stream generator; its ``n_cpus`` must not
            exceed the host's.
        n_refs: processor references to execute (the bus trace will be
            shorter — only L2 misses, upgrades and castouts reach the bus).
        host_config: host machine parameters; defaults to the paper's S7A.
        chunk_size: reference batching granularity.

    Returns:
        The captured trace of filtered memory tenures, with combined snoop
        responses recorded (so offline replay sees the same intervention
        hints the live board saw).
    """
    host = HostSMP(host_config if host_config is not None else S7A_HOST)
    tracer = TraceCollectorFirmware()
    board = MemoriesBoard(tracer, name="tracer")
    host.plug_in(board)
    host.run(workload.chunks(n_refs, chunk_size), max_references=n_refs)
    return tracer.to_trace()


def run_live(
    workload: Workload,
    n_refs: int,
    boards: Sequence[Monitor],
    host_config: Optional[HostConfig] = None,
    chunk_size: int = 65536,
) -> HostSMP:
    """Run ``workload`` with one or more boards plugged into the live bus.

    Returns the host machine so callers can inspect L2 statistics alongside
    the boards' emulated-cache statistics.
    """
    host = HostSMP(host_config if host_config is not None else S7A_HOST)
    for board in boards:
        host.plug_in(board)
    host.run(workload.chunks(n_refs, chunk_size), max_references=n_refs)
    return host
