"""Span-tree reconstruction and validation for propagated traces.

Every process that participates in a run — the service, the supervisor,
its worker shards — emits span records tagged with ``trace_id`` /
``span_id`` / ``parent_id`` (see :mod:`repro.telemetry.spans`).  This
module stitches those flat records back into the tree they describe and
checks the invariants the propagation scheme promises:

* all spans of one session share a single ``trace_id``;
* every non-root ``parent_id`` resolves to an emitted span — spans are
  emitted on *close*, so a killed worker leaves no dangling children;
* the tree is connected: every span reaches a root by parent links.

The functions here are pure: they read record lists, never the clock or
the filesystem, so the same records always produce the same tree.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.errors import ValidationError


def collect_spans(records: Iterable[dict]) -> List[dict]:
    """Filter a record stream down to trace-tagged span records."""
    return [
        record
        for record in records
        if record.get("type") == "span" and record.get("trace_id")
    ]


class SpanTree:
    """A reconstructed span tree.

    Attributes:
        nodes: ``span_id -> record`` for every span seen.
        children: ``span_id -> [child span_ids]`` in record order.
        roots: span IDs whose ``parent_id`` is None.
        unresolved: span IDs whose ``parent_id`` names a span that was
            never emitted (empty for a well-formed trace).
        trace_ids: the distinct ``trace_id`` values seen.
    """

    def __init__(self, spans: Iterable[dict]) -> None:
        self.nodes: Dict[str, dict] = {}
        self.children: Dict[str, List[str]] = {}
        self.roots: List[str] = []
        self.unresolved: List[str] = []
        self.trace_ids: List[str] = []
        ordered = list(spans)
        for record in ordered:
            span_id = str(record["span_id"])
            if span_id in self.nodes:
                raise ValidationError(
                    f"duplicate span_id {span_id!r} in trace"
                )
            self.nodes[span_id] = record
            trace_id = str(record["trace_id"])
            if trace_id not in self.trace_ids:
                self.trace_ids.append(trace_id)
        for record in ordered:
            span_id = str(record["span_id"])
            parent = record.get("parent_id")
            if parent is None:
                self.roots.append(span_id)
            elif str(parent) in self.nodes:
                self.children.setdefault(str(parent), []).append(span_id)
            else:
                self.unresolved.append(span_id)

    @property
    def connected(self) -> bool:
        """True when every span reaches a root through parent links."""
        if not self.nodes:
            return True
        reachable = 0
        stack = list(self.roots)
        seen = set()
        while stack:
            span_id = stack.pop()
            if span_id in seen:
                continue
            seen.add(span_id)
            reachable += 1
            stack.extend(self.children.get(span_id, []))
        return not self.unresolved and reachable == len(self.nodes)

    def walk(self, span_id: str, depth: int = 0):
        """Yield ``(depth, record)`` depth-first from one span."""
        yield depth, self.nodes[span_id]
        for child in self.children.get(span_id, []):
            for item in self.walk(child, depth + 1):
                yield item

    def summary(self) -> dict:
        """Validation summary (what the smoke job asserts on)."""
        return {
            "spans": len(self.nodes),
            "roots": list(self.roots),
            "unresolved": list(self.unresolved),
            "trace_ids": list(self.trace_ids),
            "connected": self.connected,
        }


def build_span_tree(records: Iterable[dict]) -> SpanTree:
    """Stitch span records (possibly mixed with other kinds) into a tree."""
    return SpanTree(collect_spans(records))


def validate_session_trace(
    records: Iterable[dict], trace_id: Optional[str] = None
) -> SpanTree:
    """Build the tree and enforce the propagation invariants.

    Args:
        records: the merged record stream of one session (service
            telemetry + supervisor events).
        trace_id: when given, every span must carry exactly this ID.

    Raises:
        ValidationError: more than one trace ID, an unresolved parent,
            a disconnected subtree, or no spans at all.
    """
    tree = build_span_tree(records)
    if not tree.nodes:
        raise ValidationError("no trace-tagged spans found")
    if len(tree.trace_ids) != 1:
        raise ValidationError(
            f"expected one trace_id, found {tree.trace_ids}"
        )
    if trace_id is not None and tree.trace_ids != [str(trace_id)]:
        raise ValidationError(
            f"trace_id mismatch: expected {trace_id}, "
            f"found {tree.trace_ids[0]}"
        )
    if tree.unresolved:
        raise ValidationError(
            f"unresolved parent spans: {sorted(tree.unresolved)}"
        )
    if not tree.connected:
        raise ValidationError("span tree is not connected")
    return tree
