"""Run forensics: cross-process traces and the flight-recorder timeline.

The emulation stack already writes everything down — the service
manifest and telemetry, the run journal, the supervisor's span log.
This package is the *read side*: it stitches those artefacts back into
one causally-linked story per session.

* :mod:`repro.obs.trace` — rebuild and validate the span tree that
  trace propagation (service → supervisor → workers) scatters across
  processes.
* :mod:`repro.obs.timeline` — the flight recorder: merge every log into
  one deterministic, causally-ordered timeline with a critical-path
  breakdown, rendered as text, canonical JSON, or Chrome trace-event
  JSON (``python -m repro.cli obs timeline <run-dir>``).

Everything here is a pure function of the files on disk: no clock, no
entropy (enforced by determinism lint rule DT208), so the same run
directory always renders byte-identical output.
"""

from repro.obs.timeline import (
    FORMATS,
    TIMELINE_VERSION,
    build_timeline,
    load_forensics,
    render_timeline,
    session_records,
    timeline_json,
    timeline_text,
    timeline_trace_event,
)
from repro.obs.trace import (
    SpanTree,
    build_span_tree,
    collect_spans,
    validate_session_trace,
)

__all__ = [
    "FORMATS",
    "SpanTree",
    "TIMELINE_VERSION",
    "build_span_tree",
    "build_timeline",
    "collect_spans",
    "load_forensics",
    "render_timeline",
    "session_records",
    "timeline_json",
    "timeline_text",
    "timeline_trace_event",
    "validate_session_trace",
]
