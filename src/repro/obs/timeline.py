"""The flight recorder: one causally-ordered timeline per run.

A finished (or crashed, or suspended) run leaves its story scattered
across append-only files: the service manifest and telemetry at the
service root, the run journal, and the supervisor's span/event log in
the run directory.  :func:`build_timeline` merges them into a single
ordered record — *what happened, in order, and where the time went* —
and the renderers turn that into text, canonical JSON, or Chrome
``trace-event`` JSON (load it in ``chrome://tracing`` / Perfetto).

Ordering is **causal and deterministic**, never wall-clock driven:

* admission-phase entries (submit, ingest, staging) follow the service
  telemetry file order — one writer, so append order is causal;
* run-phase entries anchor to the run journal's sequence numbers — the
  journal is the run's WAL, so its order *defines* run causality.  Spans
  attach at the seq of the ``segment_commit`` they produced (replay
  before checkpoint before commit, exactly the commit protocol's order);
* terminal-phase entries again follow file order.

Because every input is an on-disk file and every sort key is derived
from record contents, rebuilding the timeline from the same run
directory is byte-identical — the determinism lint (DT208) keeps clock
and entropy reads out of this module.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.common.errors import ValidationError
from repro.obs.trace import build_span_tree
from repro.supervisor.journal import RunJournal
from repro.telemetry.sink import load_jsonl

#: Timeline schema revision (bumped when entry shapes change).
TIMELINE_VERSION = 1

#: Renderers accepted by :func:`render_timeline`.
FORMATS = ("text", "json", "trace-event")

_ADMISSION_EVENTS = ("queued", "trace-staged", "ingest-lost")
_TERMINAL_EVENTS = ("completed", "failed", "expired", "suspended")

_JOURNAL_NAME = "journal.jsonl"
_EVENTS_NAME = "supervisor.jsonl"
_SPEC_NAME = "spec.json"
_MANIFEST_NAME = "service.jsonl"
_TELEMETRY_NAME = "service-telemetry.jsonl"


# ---------------------------------------------------------------------- #
# Loading
# ---------------------------------------------------------------------- #


def _service_root(run_dir: Path) -> Optional[Path]:
    """The service root owning this run dir, if it is a session run."""
    parent = run_dir.parent
    if parent.name == "runs" and (parent.parent / _MANIFEST_NAME).exists():
        return parent.parent
    return None


def load_forensics(run_dir: Union[str, Path]) -> dict:
    """Read every observability artefact of one run into memory.

    Returns a dict with ``session`` (the run/session name), ``spec``,
    ``journal`` (validated records), ``events`` (supervisor.jsonl),
    ``manifest`` / ``service_events`` (session-filtered, empty lists for
    a bare supervisor run), and ``service_root``.
    """
    run_dir = Path(run_dir)
    journal_path = run_dir / _JOURNAL_NAME
    if not journal_path.exists():
        raise ValidationError(f"{run_dir} has no {_JOURNAL_NAME}")
    session = run_dir.name
    spec: dict = {}
    spec_path = run_dir / _SPEC_NAME
    if spec_path.exists():
        spec = json.loads(spec_path.read_text())
    events_path = run_dir / _EVENTS_NAME
    events = load_jsonl(events_path) if events_path.exists() else []
    root = _service_root(run_dir)
    manifest: List[dict] = []
    service_events: List[dict] = []
    if root is not None:
        manifest = [
            record
            for record in RunJournal(root / _MANIFEST_NAME).records
            if record.get("session") == session
        ]
        telemetry_path = root / _TELEMETRY_NAME
        if telemetry_path.exists():
            service_events = [
                record
                for record in load_jsonl(telemetry_path)
                if record.get("session") == session
            ]
    return {
        "session": session,
        "spec": spec,
        "journal": RunJournal(journal_path).records,
        "events": events,
        "manifest": manifest,
        "service_events": service_events,
        "service_root": str(root) if root is not None else None,
    }


def session_records(run_dir: Union[str, Path]) -> List[dict]:
    """Every span-bearing record of one run, service plane included.

    This is the stream :func:`repro.obs.trace.validate_session_trace`
    checks: the session root span lives in the service telemetry, the
    supervisor and worker spans in the run dir's supervisor.jsonl.
    """
    data = load_forensics(run_dir)
    return list(data["service_events"]) + list(data["events"])


# ---------------------------------------------------------------------- #
# Causal ordering
# ---------------------------------------------------------------------- #


class _RunAnchors:
    """Journal-derived anchors that pin spans into run causality.

    The journal is the run's WAL, so its seq order defines causality;
    every span gets a ``(seq, rank)`` key relative to it:

    * worker ``replay`` / ``checkpoint`` spans anchor to the
      ``segment_commit`` that references their parent segment span
      (ranks 0 / 1 — the commit protocol writes replay, checkpoint,
      then journal line, which gets rank 5);
    * supervisor ``segment`` spans close just after their commit
      (rank 6); a segment span *no* commit references belongs to a
      failed worker incarnation and is paired, in order, with the
      ``restart`` record that followed it (rank 4 — just before it);
    * ``restart_backoff`` spans anchor to their restart record by the
      journaled restart count ``n`` (rank 6 — the sleep follows the
      journal line);
    * per-incarnation ``run`` spans close after their last journal
      append and sort at the tail (rank 7).
    """

    def __init__(self, journal: List[dict]) -> None:
        self.max_seq = -1
        #: trace segment -> seq of the commit/quarantine closing it.
        self.by_segment: Dict[int, int] = {}
        #: supervisor segment-span ID -> seq of the commit naming it.
        self.by_parent: Dict[str, int] = {}
        #: journaled restart count n -> that restart record's seq.
        self.restart_by_n: Dict[int, int] = {}
        #: restart seqs in order, paired with unreferenced segment spans.
        self.restart_seqs: List[int] = []
        self._orphans = 0
        for record in journal:
            seq = int(record.get("seq", 0))
            self.max_seq = max(self.max_seq, seq)
            kind = record.get("type")
            if kind in ("segment_commit", "quarantine"):
                segment = int(record.get("segment", -1))
                if segment >= 0 and segment not in self.by_segment:
                    self.by_segment[segment] = seq
            if kind == "segment_commit" and record.get("span"):
                self.by_parent[str(record["span"])] = seq
            if kind == "restart":
                self.restart_by_n[int(record.get("n", 0))] = seq
                self.restart_seqs.append(seq)

    def span_key(self, record: dict) -> Tuple[int, int]:
        name = record.get("name")
        attrs = record.get("attrs") or {}
        tail = self.max_seq + 1
        if name in ("replay", "checkpoint"):
            parent = str(record.get("parent_id") or "")
            anchor = self.by_parent.get(parent)
            if anchor is None:
                segment = attrs.get("segment")
                anchor = (
                    self.by_segment.get(int(segment))
                    if segment is not None else None
                )
            if anchor is None:
                anchor = tail
            return (anchor, 0 if name == "replay" else 1)
        if name == "segment":
            span_id = str(record.get("span_id") or "")
            if span_id in self.by_parent:
                return (self.by_parent[span_id], 6)
            if self._orphans < len(self.restart_seqs):
                anchor = self.restart_seqs[self._orphans]
                self._orphans += 1
                return (anchor, 4)
            return (tail, 6)
        if name == "restart_backoff":
            anchor = self.restart_by_n.get(int(attrs.get("n", -1)), tail)
            return (anchor, 6)
        if name == "run":
            return (tail, 7)
        return (tail, 8)


def _entry(phase: str, source: str, kind: str, record: dict) -> dict:
    return {"phase": phase, "source": source, "kind": kind, "record": record}


def build_timeline(run_dir: Union[str, Path]) -> dict:
    """Merge one run's artefacts into the ordered flight-recorder view."""
    data = load_forensics(run_dir)
    journal: List[dict] = data["journal"]
    anchors = _RunAnchors(journal)
    tree = build_span_tree(data["events"] + data["service_events"])

    entries: List[dict] = []
    # -- admission phase: control-plane file order ---------------------- #
    for record in data["manifest"]:
        if record.get("type") == "session_queued":
            entries.append(
                _entry("admission", "manifest", "session_queued", record)
            )
    for record in data["service_events"]:
        if record.get("event") in _ADMISSION_EVENTS:
            entries.append(
                _entry("admission", "service", str(record["event"]), record)
            )

    # -- run phase: journal-anchored merge ------------------------------ #
    run_entries: List[Tuple[Tuple[int, int, int], dict]] = []
    for record in data["service_events"]:
        if record.get("event") == "started":
            run_entries.append(
                ((0, 9, 0), _entry("run", "service", "started", record))
            )
    for record in journal:
        seq = int(record.get("seq", 0))
        run_entries.append(
            ((seq, 5, 0), _entry("run", "journal", str(record["type"]),
                                 record))
        )
    for index, record in enumerate(data["events"]):
        if record.get("type") == "span":
            anchor, rank = anchors.span_key(record)
            run_entries.append(
                ((anchor, rank, index),
                 _entry("run", "span", str(record.get("name", "span")),
                        record))
            )
        elif record.get("type") == "supervisor":
            # Supervisor events mirror journal records (restart,
            # quarantine, …) with wall noise; the journal line is the
            # authoritative entry, so these are not repeated.
            continue
    for index, record in enumerate(data["service_events"]):
        if record.get("event") == "retry":
            # The exact interleave of a control-plane retry with journal
            # records is not recorded; it is causally after every journal
            # record the failed attempt wrote, so it sorts at the tail of
            # the journal available at reconstruction.
            run_entries.append(
                ((anchors.max_seq + 1, 6, index),
                 _entry("run", "service", "retry", record))
            )
    run_entries.sort(key=lambda item: item[0])
    entries.extend(item[1] for item in run_entries)

    # -- terminal phase: control-plane file order ----------------------- #
    for record in data["service_events"]:
        if record.get("event") in _TERMINAL_EVENTS:
            entries.append(
                _entry("terminal", "service", str(record["event"]), record)
            )
        elif record.get("type") == "span":
            entries.append(_entry("terminal", "span", "session", record))
    for record in data["manifest"]:
        if record.get("type", "").startswith("session_") and record[
            "type"
        ] != "session_queued":
            entries.append(
                _entry("terminal", "manifest", str(record["type"]), record)
            )
        elif record.get("type") == "tenant_usage":
            entries.append(
                _entry("terminal", "manifest", "tenant_usage", record)
            )

    heartbeats = sum(
        1 for r in data["service_events"] if r.get("event") == "heartbeat"
    )
    summary = _critical_path(data, heartbeats)
    return {
        "version": TIMELINE_VERSION,
        "run": data["session"],
        "service_root": data["service_root"],
        "trace_ids": tree.trace_ids,
        "spans": len(tree.nodes),
        "entries": entries,
        "summary": summary,
    }


# ---------------------------------------------------------------------- #
# Critical path
# ---------------------------------------------------------------------- #


def _span_wall(record: dict) -> float:
    return float((record.get("wall") or {}).get("seconds", 0.0))


def _critical_path(data: dict, heartbeats: int) -> dict:
    """Where the session's wall time went, as seconds and shares.

    All inputs are values *read from the run's files* (service-event
    wall offsets, span wall durations, journaled backoff delays), so the
    breakdown is reproducible from the directory alone.
    """
    spans = [r for r in data["events"] if r.get("type") == "span"]
    replaying = sum(
        _span_wall(r) for r in spans if r.get("name") == "replay"
    )
    checkpointing = sum(
        _span_wall(r) for r in spans if r.get("name") == "checkpoint"
    )
    backoff = sum(
        float(r.get("delay", 0.0))
        for r in data["journal"]
        if r.get("type") == "restart"
    ) + sum(
        float(r.get("delay", 0.0))
        for r in data["service_events"]
        if r.get("event") == "retry"
    )
    stalled = 0.0
    started = 0.0
    total = 0.0
    for record in data["service_events"]:
        wall = record.get("wall") or {}
        elapsed = float(wall.get("elapsed", 0.0))
        total = max(total, elapsed)
        if record.get("event") == "trace-staged":
            stalled += float(wall.get("stalled", 0.0))
        elif record.get("event") == "started":
            started = elapsed
    if not data["service_events"]:
        # Bare supervisor run: no control plane, so the run spans are
        # the whole story.
        total = sum(_span_wall(r) for r in spans if r.get("name") == "run")
    queued = max(0.0, started - stalled)
    phases = {
        "queued": queued,
        "ingest-stalled": stalled,
        "replaying": replaying,
        "checkpointing": checkpointing,
        "backoff": backoff,
    }
    accounted = sum(phases.values())
    phases["other"] = max(0.0, total - accounted)
    if total <= 0.0:
        total = accounted if accounted > 0.0 else 1.0
    shares = {
        name: round(100.0 * seconds / total, 1)
        for name, seconds in phases.items()
    }
    restarts = sum(
        1 for r in data["journal"] if r.get("type") == "restart"
    )
    retries = sum(
        1 for r in data["service_events"] if r.get("event") == "retry"
    )
    return {
        "total_wall": round(total, 6),
        "phases": {
            name: {"seconds": round(seconds, 6), "share": shares[name]}
            for name, seconds in phases.items()
        },
        "heartbeats": heartbeats,
        "restarts": restarts,
        "retries": retries,
    }


# ---------------------------------------------------------------------- #
# Renderers
# ---------------------------------------------------------------------- #


def _dumps(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _entry_line(entry: dict) -> str:
    record = dict(entry["record"])
    attrs = record.pop("attrs", None) or {}
    wall = record.pop("wall", None) or {}
    for noise in ("type", "seq", "v", "label", "path", "depth",
                  "trace_id", "session", "event", "name"):
        record.pop(noise, None)
    fields = {**record, **attrs}
    parts = []
    for key in sorted(fields):
        value = fields[key]
        if isinstance(value, (dict, list)):
            value = _dumps(value)
        parts.append(f"{key}={value}")
    for key in sorted(wall):
        parts.append(f"wall.{key}={wall[key]}")
    detail = " ".join(parts)
    return f"  {entry['source']:<9} {entry['kind']:<16} {detail}".rstrip()


def timeline_text(timeline: dict) -> str:
    """The human-facing flight recorder page."""
    lines = [
        f"flight recorder: {timeline['run']}",
        f"trace: {', '.join(timeline['trace_ids']) or '(untraced)'}",
        f"spans: {timeline['spans']}",
    ]
    phase = None
    for entry in timeline["entries"]:
        if entry["phase"] != phase:
            phase = entry["phase"]
            lines.append(f"[{phase}]")
        lines.append(_entry_line(entry))
    summary = timeline["summary"]
    shares = ", ".join(
        f"{name} {summary['phases'][name]['share']}%"
        for name in ("queued", "ingest-stalled", "replaying",
                     "checkpointing", "backoff", "other")
    )
    lines.append(f"critical path: {shares}")
    lines.append(
        f"total wall: {summary['total_wall']}s; "
        f"heartbeats: {summary['heartbeats']}; "
        f"restarts: {summary['restarts']}; "
        f"retries: {summary['retries']}"
    )
    return "\n".join(lines) + "\n"


def timeline_json(timeline: dict) -> str:
    """Canonical JSON (sorted keys, compact separators): byte-stable."""
    return _dumps(timeline) + "\n"


def timeline_trace_event(timeline: dict) -> str:
    """Chrome ``trace-event`` JSON for ``chrome://tracing`` / Perfetto.

    Span timestamps are **emulated cycles**, not microseconds — the
    cycle domain is the deterministic one, and the viewer only needs a
    monotone axis.  Journal records become instant events pinned to the
    cycle of the last span sorted before them.
    """
    trace_events: List[dict] = []
    last_cycle = 0.0
    for entry in timeline["entries"]:
        record = entry["record"]
        if entry["source"] == "span" or (
            record.get("type") == "span"
        ):
            begin = float(record.get("begin_cycle", 0.0))
            end = float(record.get("end_cycle", begin))
            last_cycle = max(last_cycle, end)
            tid = str(record.get("span_id", record.get("label", "span")))
            tid = tid.split(":", 1)[0]
            event = {
                "name": record.get("name", "span"),
                "cat": entry["phase"],
                "ph": "X",
                "ts": begin,
                "dur": max(0.0, end - begin),
                "pid": timeline["run"],
                "tid": tid,
                "args": {
                    "span_id": record.get("span_id"),
                    "parent_id": record.get("parent_id"),
                    **(record.get("attrs") or {}),
                },
            }
            trace_events.append(event)
        elif entry["source"] == "journal":
            trace_events.append(
                {
                    "name": entry["kind"],
                    "cat": "journal",
                    "ph": "i",
                    "s": "p",
                    "ts": last_cycle,
                    "pid": timeline["run"],
                    "tid": "journal",
                    "args": {"seq": entry["record"].get("seq")},
                }
            )
    payload = {
        "displayTimeUnit": "ns",
        "otherData": {
            "run": timeline["run"],
            "trace_ids": timeline["trace_ids"],
        },
        "traceEvents": trace_events,
    }
    return _dumps(payload) + "\n"


def render_timeline(timeline: dict, fmt: str = "text") -> str:
    """Render one built timeline in the requested format."""
    if fmt == "text":
        return timeline_text(timeline)
    if fmt == "json":
        return timeline_json(timeline)
    if fmt == "trace-event":
        return timeline_trace_event(timeline)
    raise ValidationError(
        f"unknown timeline format {fmt!r} (choose from {FORMATS})"
    )
