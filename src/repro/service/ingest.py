"""Bounded trace ingest: back-pressure between upload and replay.

A streamed trace flows ``socket → IngestBuffer → staging file → replay
worker``.  The buffer is the only elastic element and it is *bounded*:
when the staging side (or anything downstream) is slow, ``put()`` simply
does not return, the HTTP/WebSocket handler stops reading the socket,
and TCP flow control pushes the pause all the way back to the client.
Ingest never balloons memory to absorb a fast producer — the paper's
board has the same discipline in hardware (fixed transaction buffers
with explicit overflow accounting), and the service mirrors it in the
control plane.

``high_water`` and ``producer_waits`` are exported through the service
metrics so a capacity problem is visible as numbers, not as OOM kills.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from pathlib import Path
from typing import Callable, Optional, Union

import numpy as np

from repro.common.errors import TraceFormatError, ValidationError

#: Staged-ingest dtype: packed bus words, little-endian, 8 bytes each.
WORD_DTYPE = "<u8"


class IngestClosedError(TraceFormatError):
    """The ingest stream was torn down before its end marker arrived."""


class IngestBuffer:
    """A bounded, awaitable chunk buffer with back-pressure accounting.

    Args:
        max_records: the bound.  ``put`` of a chunk that would exceed it
            waits until the consumer catches up (an oversized single
            chunk is admitted alone into an empty buffer rather than
            deadlocking).
    """

    def __init__(self, max_records: int) -> None:
        if max_records < 1:
            raise ValidationError(
                f"max_records must be >= 1, got {max_records}"
            )
        self.max_records = int(max_records)
        self._chunks: deque = deque()
        self._records = 0
        self._cond = asyncio.Condition()
        self._ended = False
        self._closed = False
        #: Peak buffered records — must never exceed ``max_records``
        #: (plus one oversized chunk admitted alone).
        self.high_water = 0
        #: Times a producer had to wait: the back-pressure event counter.
        self.producer_waits = 0
        #: Total wall seconds producers spent blocked on the bound.
        self.wait_seconds = 0.0
        #: Optional per-wait observer (the service points this at its
        #: ingest-stall latency histogram).
        self.on_wait: Optional[Callable[[float], None]] = None
        #: Total records accepted.
        self.records_in = 0

    @property
    def buffered_records(self) -> int:
        return self._records

    async def put(self, chunk: np.ndarray) -> None:
        """Append one chunk, waiting while the buffer is full."""
        count = int(chunk.shape[0])
        async with self._cond:
            waited = False
            wait_began = 0.0
            while (
                self._records > 0
                and self._records + count > self.max_records
                and not self._closed
            ):
                if not waited:
                    self.producer_waits += 1
                    waited = True
                    wait_began = time.perf_counter()
                await self._cond.wait()
            if waited:
                stalled = time.perf_counter() - wait_began
                self.wait_seconds += stalled
                if self.on_wait is not None:
                    self.on_wait(stalled)
            if self._closed:
                raise IngestClosedError("ingest buffer closed mid-stream")
            if self._ended:
                raise TraceFormatError(
                    "ingest chunk arrived after the end marker"
                )
            self._chunks.append(chunk)
            self._records += count
            self.records_in += count
            if self._records > self.high_water:
                self.high_water = self._records
            self._cond.notify_all()

    async def end(self) -> None:
        """Mark the stream complete; ``get`` drains then returns None."""
        async with self._cond:
            self._ended = True
            self._cond.notify_all()

    async def close(self) -> None:
        """Tear the stream down (connection lost before its end marker)."""
        async with self._cond:
            self._closed = True
            self._cond.notify_all()

    async def wait_closed(self) -> None:
        """Block until :meth:`close` tears the stream down.

        The stalled-consumer chaos path parks here: nothing is drained,
        the bound fills, back-pressure holds the producer, and only the
        teardown (deadline expiry, abort, drain) releases the wait.
        """
        async with self._cond:
            while not self._closed:
                await self._cond.wait()

    async def get(self) -> Optional[np.ndarray]:
        """Next chunk, or None when the stream ended cleanly.

        Raises:
            IngestClosedError: the producer vanished mid-stream — the
                staged prefix is incomplete and must not be replayed.
        """
        async with self._cond:
            while not self._chunks and not self._ended and not self._closed:
                await self._cond.wait()
            if self._chunks:
                chunk = self._chunks.popleft()
                self._records -= int(chunk.shape[0])
                self._cond.notify_all()
                return chunk
            if self._closed:
                raise IngestClosedError(
                    "ingest stream closed before its end marker"
                )
            return None


def chunk_from_bytes(data: bytes) -> np.ndarray:
    """Decode one ingest chunk (raw little-endian packed words)."""
    if len(data) % 8 != 0:
        raise TraceFormatError(
            f"ingest chunk of {len(data)} bytes is not a whole number of "
            f"8-byte bus words"
        )
    return np.frombuffer(data, dtype=WORD_DTYPE).astype(np.uint64)


async def stage_stream(
    buffer: IngestBuffer,
    path: Union[str, Path],
    stall_after_chunks: Optional[int] = None,
) -> int:
    """Drain ``buffer`` into the staging file; return records staged.

    The consumer side of the back-pressure pair: chunks leave the buffer
    as fast as the disk accepts them, so memory held is bounded by the
    buffer, never by the trace length.

    Args:
        stall_after_chunks: chaos hook (``ServiceChaosPlan.stall_ingest``)
            — stop consuming after this many chunks and park on
            :meth:`IngestBuffer.wait_closed`, so the bound fills and
            back-pressure holds the producer until a deadline or abort
            closes the buffer.

    Raises:
        IngestClosedError: the buffer was closed mid-stream (including
            the close that resolves a chaos stall) — the staged prefix
            is incomplete and the caller must discard it.
    """
    staged = 0
    chunks = 0
    target = Path(path)
    with open(target, "wb") as handle:
        while True:
            if stall_after_chunks is not None and chunks >= stall_after_chunks:
                await buffer.wait_closed()
                raise IngestClosedError(
                    f"ingest staging stalled by chaos after {chunks} "
                    f"chunk(s); buffer closed under the stall"
                )
            chunk = await buffer.get()
            if chunk is None:
                return staged
            handle.write(chunk.astype(WORD_DTYPE).tobytes())
            staged += int(chunk.shape[0])
            chunks += 1


def load_staged(path: Union[str, Path]) -> np.ndarray:
    """Read a fully-staged ingest file back as packed words."""
    data = Path(path).read_bytes()
    if len(data) % 8 != 0:
        raise TraceFormatError(
            f"staged ingest file {path} is torn ({len(data)} bytes)"
        )
    return np.frombuffer(data, dtype=WORD_DTYPE).astype(np.uint64)
