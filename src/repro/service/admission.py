"""Admission control and the load-shedding ladder.

The service's first line of robustness: every submission passes through
:meth:`AdmissionController.admit`, which either grants a queue slot or
raises a structured :class:`~repro.service.spec.AdmissionError` naming
the exhausted budget.  Budgets are explicit and bounded:

* global queue depth (``max_queue_depth``);
* per-tenant queued jobs (``max_queued_per_tenant``);
* per-tenant concurrent worker processes (``max_workers_per_tenant``,
  enforced at launch — an over-quota tenant's jobs *wait*, they are not
  rejected);
* global concurrent workers (``max_workers``).

The shedding ladder describes the service itself, one rung at a time::

    ACCEPT  →  QUEUE_ONLY  →  DRAIN  →  REJECT

``ACCEPT`` is normal operation.  ``QUEUE_ONLY`` (entered automatically
when queue occupancy crosses the watermark, left when it recedes) keeps
admitting and executing but reports not-ready on ``/readyz`` so load
balancers steer traffic away before hard rejections start.  ``DRAIN``
(SIGTERM, or an explicit stop) refuses admissions, suspends in-flight
runs at their next safe point and journals them for re-adoption.
``REJECT`` refuses everything — the overload/maintenance stance.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from repro.common.errors import ValidationError
from repro.service.spec import AdmissionError, SessionRequest


class ServiceState(str, Enum):
    """The shedding-ladder rung the service currently occupies."""

    ACCEPT = "accept"
    QUEUE_ONLY = "queue-only"
    DRAIN = "drain"
    REJECT = "reject"

    @property
    def admits(self) -> bool:
        return self in (ServiceState.ACCEPT, ServiceState.QUEUE_ONLY)

    @property
    def launches(self) -> bool:
        return self in (ServiceState.ACCEPT, ServiceState.QUEUE_ONLY)


@dataclass(frozen=True)
class ServiceConfig:
    """Bounds and budgets of one service instance.

    Attributes:
        max_workers: concurrent sessions executing (worker processes).
        max_workers_per_tenant: concurrent sessions per tenant.
        max_queue_depth: queued (admitted, not yet running) sessions.
        max_queued_per_tenant: queued sessions per tenant.
        queue_only_watermark: queue occupancy fraction at which the
            service escalates ACCEPT → QUEUE_ONLY (and half of which
            de-escalates back).
        ingest_buffer_records: bound of each session's ingest chunk
            buffer — the back-pressure knob between trace upload and the
            staging writer.
        retry_backoff_base: first service-level retry delay, seconds
            (doubles per attempt, seeded jitter on top).
        default_wall_deadline: wall deadline applied to sessions that do
            not set one (None = unbounded).
        drain_grace: seconds a drain waits for in-flight sessions to
            reach a safe suspend point before the server exits anyway.
    """

    max_workers: int = 4
    max_workers_per_tenant: int = 2
    max_queue_depth: int = 64
    max_queued_per_tenant: int = 16
    queue_only_watermark: float = 0.75
    ingest_buffer_records: int = 65_536
    retry_backoff_base: float = 0.05
    default_wall_deadline: Optional[float] = None
    drain_grace: float = 10.0

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.max_workers_per_tenant < 1:
            raise ValidationError(
                f"max_workers_per_tenant must be >= 1, got "
                f"{self.max_workers_per_tenant}"
            )
        if self.max_queue_depth < 1:
            raise ValidationError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_queued_per_tenant < 1:
            raise ValidationError(
                f"max_queued_per_tenant must be >= 1, got "
                f"{self.max_queued_per_tenant}"
            )
        if not 0.0 < self.queue_only_watermark <= 1.0:
            raise ValidationError(
                f"queue_only_watermark must be in (0, 1], got "
                f"{self.queue_only_watermark}"
            )
        if self.ingest_buffer_records < 1:
            raise ValidationError(
                f"ingest_buffer_records must be >= 1, got "
                f"{self.ingest_buffer_records}"
            )
        if self.retry_backoff_base <= 0:
            raise ValidationError(
                f"retry_backoff_base must be positive, got "
                f"{self.retry_backoff_base}"
            )
        if (
            self.default_wall_deadline is not None
            and self.default_wall_deadline <= 0
        ):
            raise ValidationError(
                f"default_wall_deadline must be positive, got "
                f"{self.default_wall_deadline}"
            )


class AdmissionController:
    """Budget bookkeeping behind :meth:`EmulationService.submit`.

    Purely synchronous state — the asyncio service mutates it from the
    event loop only, so no locking is needed; tests can drive it
    directly.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.queued_total = 0
        self.running_total = 0
        self.queued_by_tenant: Dict[str, int] = {}
        self.running_by_tenant: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Admission (queue budgets)
    # ------------------------------------------------------------------ #

    def admit(self, request: SessionRequest, state: ServiceState) -> None:
        """Grant a queue slot or raise a structured refusal.

        Checks, in order: the shedding state, the global queue bound,
        the tenant's queued-job quota.  On success the session counts as
        queued until :meth:`launch` or a terminal :meth:`forget_queued`.
        """
        if state == ServiceState.DRAIN:
            raise AdmissionError(
                "draining",
                detail="service is draining; resubmit to its successor",
            )
        if state == ServiceState.REJECT:
            raise AdmissionError(
                "shedding",
                detail="service is shedding load; retry with backoff",
            )
        if self.queued_total >= self.config.max_queue_depth:
            raise AdmissionError(
                "queue-full",
                budget="max_queue_depth",
                limit=self.config.max_queue_depth,
                value=self.queued_total,
            )
        tenant_queued = self.queued_by_tenant.get(request.tenant, 0)
        if tenant_queued >= self.config.max_queued_per_tenant:
            raise AdmissionError(
                "tenant-queue-quota",
                budget="max_queued_per_tenant",
                limit=self.config.max_queued_per_tenant,
                value=tenant_queued,
                detail=f"tenant {request.tenant!r}",
            )
        self.queued_total += 1
        self.queued_by_tenant[request.tenant] = tenant_queued + 1

    def forget_queued(self, tenant: str) -> None:
        """Release a queue slot (session expired or launched)."""
        self.queued_total = max(0, self.queued_total - 1)
        held = self.queued_by_tenant.get(tenant, 0)
        if held > 1:
            self.queued_by_tenant[tenant] = held - 1
        else:
            self.queued_by_tenant.pop(tenant, None)

    # ------------------------------------------------------------------ #
    # Launch (worker budgets)
    # ------------------------------------------------------------------ #

    def may_launch(self, tenant: str) -> bool:
        """Whether a queued session of ``tenant`` can start right now.

        A ``False`` here is back-pressure, not refusal: the session
        keeps its queue slot and is reconsidered when a worker frees up.
        """
        if self.running_total >= self.config.max_workers:
            return False
        return (
            self.running_by_tenant.get(tenant, 0)
            < self.config.max_workers_per_tenant
        )

    def launch(self, tenant: str) -> None:
        """Move one session from queued to running."""
        self.forget_queued(tenant)
        self.running_total += 1
        self.running_by_tenant[tenant] = (
            self.running_by_tenant.get(tenant, 0) + 1
        )

    def release(self, tenant: str) -> None:
        """Return a worker slot (session reached a terminal state)."""
        self.running_total = max(0, self.running_total - 1)
        held = self.running_by_tenant.get(tenant, 0)
        if held > 1:
            self.running_by_tenant[tenant] = held - 1
        else:
            self.running_by_tenant.pop(tenant, None)

    # ------------------------------------------------------------------ #
    # Shedding ladder (automatic rungs)
    # ------------------------------------------------------------------ #

    def suggested_state(self, current: ServiceState) -> ServiceState:
        """ACCEPT ↔ QUEUE_ONLY escalation from queue occupancy.

        DRAIN and REJECT are deliberate operator/lifecycle states and are
        never entered or left automatically.
        """
        if current not in (ServiceState.ACCEPT, ServiceState.QUEUE_ONLY):
            return current
        high = self.config.queue_only_watermark * self.config.max_queue_depth
        low = high / 2.0
        if self.queued_total >= high:
            return ServiceState.QUEUE_ONLY
        if current == ServiceState.QUEUE_ONLY and self.queued_total > low:
            return ServiceState.QUEUE_ONLY
        return ServiceState.ACCEPT
