"""Prometheus exposition for the emulation service's own vitals.

Board counters already export through :mod:`repro.telemetry.prom`; this
module adds the *service* plane — queue depth, running workers, retry
and rejection counters, ingest back-pressure — in the same minimal text
exposition format, so :func:`repro.telemetry.prom.parse_exposition`
round-trips it and the smoke job can assert on scraped values.
"""

from __future__ import annotations

from typing import List

QUEUE_DEPTH_METRIC = "memories_service_queue_depth"
RUNNING_METRIC = "memories_service_running"
READY_METRIC = "memories_service_ready"
SESSIONS_METRIC = "memories_service_sessions"
EVENTS_METRIC = "memories_service_events_total"
INGEST_HIGH_WATER_METRIC = "memories_service_ingest_high_water"
INGEST_WAITS_METRIC = "memories_service_ingest_producer_waits"


def service_exposition(status: dict, ingest: dict) -> str:
    """Render one scrape page from :meth:`EmulationService.status`.

    Args:
        status: the service status snapshot (already sorted).
        ingest: aggregate ingest stats ``{"high_water": .., "waits": ..}``.
    """
    lines: List[str] = [
        f"# TYPE {QUEUE_DEPTH_METRIC} gauge",
        f"{QUEUE_DEPTH_METRIC} {int(status['queued'])}",
        f"# TYPE {RUNNING_METRIC} gauge",
        f"{RUNNING_METRIC} {int(status['running'])}",
        f"# TYPE {READY_METRIC} gauge",
        f"{READY_METRIC} {1 if status['ready'] else 0}",
        f"# TYPE {SESSIONS_METRIC} gauge",
    ]
    for state in sorted(status["sessions"]):
        lines.append(
            f'{SESSIONS_METRIC}{{state="{state}"}} '
            f"{int(status['sessions'][state])}"
        )
    lines.append(f"# TYPE {EVENTS_METRIC} counter")
    for event in sorted(status["metrics"]):
        lines.append(
            f'{EVENTS_METRIC}{{event="{event}"}} '
            f"{int(status['metrics'][event])}"
        )
    lines.append(f"# TYPE {INGEST_HIGH_WATER_METRIC} gauge")
    lines.append(
        f"{INGEST_HIGH_WATER_METRIC} {int(ingest.get('high_water', 0))}"
    )
    lines.append(f"# TYPE {INGEST_WAITS_METRIC} counter")
    lines.append(
        f"{INGEST_WAITS_METRIC} {int(ingest.get('producer_waits', 0))}"
    )
    return "\n".join(lines) + "\n"
