"""Prometheus exposition for the emulation service's own vitals.

Board counters already export through :mod:`repro.telemetry.prom`; this
module adds the *service* plane — queue depth, running workers, retry
and rejection counters, ingest back-pressure, per-tenant resource usage
and the control-plane latency histograms — in the same minimal text
exposition format, so :func:`repro.telemetry.prom.parse_exposition`
round-trips it and the smoke job can assert on scraped values.

Every family carries a ``# HELP`` line alongside its ``# TYPE``, and a
family with no samples emits *nothing*: a scrape of an idle service must
not contain dangling type headers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.telemetry.histogram import Histogram
from repro.telemetry.prom import histogram_exposition

QUEUE_DEPTH_METRIC = "memories_service_queue_depth"
RUNNING_METRIC = "memories_service_running"
READY_METRIC = "memories_service_ready"
SESSIONS_METRIC = "memories_service_sessions"
EVENTS_METRIC = "memories_service_events_total"
INGEST_HIGH_WATER_METRIC = "memories_service_ingest_high_water"
INGEST_WAITS_METRIC = "memories_service_ingest_producer_waits"
TENANT_USAGE_METRIC = "memories_service_tenant_usage_total"

#: Resources a tenant is metered on (fixed order for stable output).
TENANT_RESOURCES = ("cycles", "ingest_bytes", "records", "worker_seconds")

_HELP = {
    QUEUE_DEPTH_METRIC: "Sessions waiting for a run slot.",
    RUNNING_METRIC: "Sessions currently replaying on a board.",
    READY_METRIC: "1 while the service accepts new sessions.",
    SESSIONS_METRIC: "Sessions by lifecycle state.",
    EVENTS_METRIC: "Service lifecycle event counts.",
    INGEST_HIGH_WATER_METRIC: "Peak records buffered by any ingest stream.",
    INGEST_WAITS_METRIC: "Times an ingest producer hit the buffer bound.",
    TENANT_USAGE_METRIC: "Resources consumed per tenant, by resource kind.",
}


def _family(
    lines: List[str], metric: str, kind: str, samples: Sequence[str]
) -> None:
    """Append one metric family — headers only when samples follow."""
    if not samples:
        return
    lines.append(f"# HELP {metric} {_HELP[metric]}")
    lines.append(f"# TYPE {metric} {kind}")
    lines.extend(samples)


def _usage_value(value: float) -> str:
    """Render a usage number: integers bare, fractions to 6 places."""
    if float(value) == int(value):
        return str(int(value))
    return format(float(value), ".6f")


def service_exposition(
    status: dict,
    ingest: dict,
    histograms: Optional[Sequence[Histogram]] = None,
) -> str:
    """Render one scrape page from :meth:`EmulationService.status`.

    Args:
        status: the service status snapshot (already sorted); its
            optional ``tenants`` map becomes labelled usage counters.
        ingest: aggregate ingest stats ``{"high_water": .., "waits": ..}``.
        histograms: the service's control-plane latency histograms,
            rendered in standard ``_bucket``/``_sum``/``_count`` form.
    """
    lines: List[str] = []
    _family(
        lines, QUEUE_DEPTH_METRIC, "gauge",
        [f"{QUEUE_DEPTH_METRIC} {int(status['queued'])}"],
    )
    _family(
        lines, RUNNING_METRIC, "gauge",
        [f"{RUNNING_METRIC} {int(status['running'])}"],
    )
    _family(
        lines, READY_METRIC, "gauge",
        [f"{READY_METRIC} {1 if status['ready'] else 0}"],
    )
    _family(
        lines, SESSIONS_METRIC, "gauge",
        [
            f'{SESSIONS_METRIC}{{state="{state}"}} '
            f"{int(status['sessions'][state])}"
            for state in sorted(status["sessions"])
        ],
    )
    _family(
        lines, EVENTS_METRIC, "counter",
        [
            f'{EVENTS_METRIC}{{event="{event}"}} '
            f"{int(status['metrics'][event])}"
            for event in sorted(status["metrics"])
        ],
    )
    _family(
        lines, INGEST_HIGH_WATER_METRIC, "gauge",
        [f"{INGEST_HIGH_WATER_METRIC} {int(ingest.get('high_water', 0))}"],
    )
    _family(
        lines, INGEST_WAITS_METRIC, "counter",
        [f"{INGEST_WAITS_METRIC} {int(ingest.get('producer_waits', 0))}"],
    )
    tenants: Dict[str, Dict[str, float]] = status.get("tenants") or {}
    _family(
        lines, TENANT_USAGE_METRIC, "counter",
        [
            f'{TENANT_USAGE_METRIC}{{tenant="{tenant}",'
            f'resource="{resource}"}} '
            f"{_usage_value(tenants[tenant].get(resource, 0))}"
            for tenant in sorted(tenants)
            for resource in TENANT_RESOURCES
        ],
    )
    page = "\n".join(lines) + "\n" if lines else ""
    if histograms:
        page += histogram_exposition(list(histograms), label="service")
    return page
