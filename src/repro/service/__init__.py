"""The multi-session emulation service.

A long-running control plane over the crash-safe run machinery: many
tenants submit machine configurations and trace sources, the service
queues them by priority under explicit admission budgets, executes each
as a journaled :class:`~repro.supervisor.RunSupervisor` run, streams
live telemetry over WebSocket, and sheds load gracefully — structured
refusals, wall/cycle deadlines, bounded ingest buffers, and a SIGTERM
drain whose suspended sessions the next server incarnation re-adopts and
finishes bit-identically.  See ``docs/service.md`` for the API and the
operational runbook.
"""

from repro.service.admission import (
    AdmissionController,
    ServiceConfig,
    ServiceState,
)
from repro.service.client import ServiceClient, ServiceHttpError
from repro.service.http import ServiceServer, serve_forever
from repro.service.ingest import (
    IngestBuffer,
    IngestClosedError,
    chunk_from_bytes,
    load_staged,
    stage_stream,
)
from repro.service.metrics import service_exposition
from repro.service.service import (
    EmulationService,
    Session,
    render_service_manifest,
)
from repro.service.spec import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    AdmissionError,
    DeadlineError,
    SessionRequest,
    SessionState,
    SessionView,
    synthetic_words,
    validate_trace_spec,
)
from repro.service.ws import WsClient, WsError

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "DeadlineError",
    "EmulationService",
    "IngestBuffer",
    "IngestClosedError",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "ServiceClient",
    "ServiceConfig",
    "ServiceHttpError",
    "ServiceServer",
    "ServiceState",
    "Session",
    "SessionRequest",
    "SessionState",
    "SessionView",
    "WsClient",
    "WsError",
    "chunk_from_bytes",
    "load_staged",
    "render_service_manifest",
    "serve_forever",
    "service_exposition",
    "stage_stream",
    "synthetic_words",
    "validate_trace_spec",
]
