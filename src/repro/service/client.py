"""Asyncio client for the emulation service (CLI, tests, smoke tool).

Mirrors the transport in :mod:`repro.service.http`: one HTTP/1.1 request
per connection plus the two WebSocket endpoints.  Raises the same
structured exceptions the server maps onto its status codes, so a CLI
caller gets :class:`AdmissionError`/:class:`DeadlineError` (exit code 5)
from a refusal without ever parsing prose.
"""

from __future__ import annotations

import asyncio
import json
from typing import AsyncIterator, Iterable, Optional, Tuple

import numpy as np

from repro.common.errors import EmulationError, ValidationError
from repro.service.spec import AdmissionError, DeadlineError
from repro.service.ws import OP_CLOSE, OP_TEXT, WsClient


class ServiceHttpError(EmulationError):
    """A non-2xx service response that maps to no structured refusal."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"service returned {status}: {payload}")
        self.status = status
        self.payload = payload


def _raise_structured(status: int, payload: dict) -> None:
    """Re-raise a structured error body as its client-side exception."""
    detail = payload.get("error", {})
    if isinstance(detail, dict) and detail.get("type") == "admission":
        raise AdmissionError(
            detail.get("reason", "rejected"),
            budget=detail.get("budget", ""),
            limit=detail.get("limit", 0),
            value=detail.get("value", 0),
        )
    if isinstance(detail, dict) and detail.get("type") == "deadline":
        raise DeadlineError(detail.get("reason", "wall-deadline"))
    if status == 400:
        raise ValidationError(f"service rejected request: {payload}")
    raise ServiceHttpError(status, payload)


class ServiceClient:
    """Talk to one :class:`~repro.service.http.ServiceServer`."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = int(port)

    # ------------------------------------------------------------------ #
    # Raw HTTP
    # ------------------------------------------------------------------ #

    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        content_type: str = "application/json",
    ) -> Tuple[int, bytes]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2:
            writer.close()
            raise ValidationError(
                f"malformed service response {status_line!r}"
            )
        status = int(parts[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        payload = await reader.readexactly(length) if length else b""
        writer.close()
        return status, payload

    async def request_json(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        raw = (
            json.dumps(body, sort_keys=True).encode("utf-8")
            if body is not None
            else b""
        )
        status, payload = await self.request(method, path, raw)
        try:
            decoded = json.loads(payload.decode("utf-8")) if payload else {}
        except ValueError:
            decoded = {"raw": payload.decode("latin-1")}
        if status >= 400:
            _raise_structured(status, decoded)
        return decoded

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #

    async def healthz(self) -> dict:
        return await self.request_json("GET", "/healthz")

    async def readyz(self) -> Tuple[bool, dict]:
        status, payload = await self.request("GET", "/readyz")
        return status == 200, json.loads(payload.decode("utf-8"))

    async def status(self) -> dict:
        return await self.request_json("GET", "/status")

    async def metrics(self) -> str:
        status, payload = await self.request("GET", "/metrics")
        if status != 200:
            raise ServiceHttpError(status, {"raw": payload.decode("latin-1")})
        return payload.decode("utf-8")

    async def submit(self, request: dict) -> str:
        """Submit a session request dict; return the session id."""
        response = await self.request_json("POST", "/sessions", request)
        return str(response["session"])

    async def session(self, session_id: str) -> dict:
        return await self.request_json("GET", f"/sessions/{session_id}")

    async def sessions(self) -> list:
        response = await self.request_json("GET", "/sessions")
        return list(response["sessions"])

    async def result(self, session_id: str) -> dict:
        return await self.request_json(
            "GET", f"/sessions/{session_id}/result"
        )

    async def drain(self) -> dict:
        return await self.request_json("POST", "/drain")

    async def wait(
        self,
        session_id: str,
        timeout: float = 60.0,
        poll: float = 0.1,
    ) -> dict:
        """Poll until the session is terminal or suspended."""
        elapsed = 0.0
        while True:
            view = await self.session(session_id)
            if view["state"] in (
                "completed", "failed", "expired", "suspended",
            ):
                return view
            await asyncio.sleep(poll)
            elapsed += poll
            if elapsed >= timeout:
                raise DeadlineError(
                    "wall-deadline",
                    detail=f"client wait for {session_id} "
                    f"exceeded {timeout}s",
                )

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #

    async def ingest_http(
        self, session_id: str, words: np.ndarray
    ) -> dict:
        body = np.asarray(words, dtype=np.uint64).astype("<u8").tobytes()
        return await self.request_json_body(
            "POST", f"/sessions/{session_id}/ingest", body,
            "application/octet-stream",
        )

    async def request_json_body(
        self, method: str, path: str, body: bytes, content_type: str
    ) -> dict:
        status, payload = await self.request(method, path, body, content_type)
        decoded = json.loads(payload.decode("utf-8")) if payload else {}
        if status >= 400:
            _raise_structured(status, decoded)
        return decoded

    async def ingest_ws(
        self,
        session_id: str,
        chunks: Iterable[np.ndarray],
        drop_after: Optional[int] = None,
    ) -> Optional[int]:
        """Stream chunks over the ingest WebSocket; return records staged.

        Args:
            drop_after: sever the TCP stream after this many chunks —
                no end marker *and no close frame*, mimicking a crashed
                client or a reset connection (the chaos hook behind
                ``ServiceChaosPlan.drop_ingest``) — returns None in
                that case.
        """
        client = await WsClient.connect(
            self.host, self.port, f"/sessions/{session_id}/ingest-ws"
        )
        torn = False
        try:
            sent = 0
            for chunk in chunks:
                await client.send_binary(
                    np.asarray(chunk, dtype=np.uint64)
                    .astype("<u8")
                    .tobytes()
                )
                sent += 1
                if drop_after is not None and sent >= drop_after:
                    torn = True
                    client.writer.close()
                    return None
            await client.send_text("end")
            opcode, payload = await client.recv()
            if opcode != OP_TEXT:
                raise ValidationError(
                    f"unexpected ingest reply opcode {opcode:#x}"
                )
            return int(json.loads(payload.decode("utf-8"))["staged"])
        finally:
            if not torn:
                await client.close()

    # ------------------------------------------------------------------ #
    # Telemetry feed
    # ------------------------------------------------------------------ #

    async def tail(
        self, session_id: str, limit: Optional[int] = None
    ) -> AsyncIterator[dict]:
        """Yield the session's live event records until its feed closes."""
        client = await WsClient.connect(
            self.host, self.port, f"/sessions/{session_id}/events"
        )
        try:
            seen = 0
            while True:
                opcode, payload = await client.recv()
                if opcode == OP_CLOSE:
                    return
                yield json.loads(payload.decode("utf-8"))
                seen += 1
                if limit is not None and seen >= limit:
                    return
        finally:
            await client.close()
