"""Session specifications and structured refusals for the emulation service.

A *session* is one tenant-owned emulation run flowing through the
service: submitted as a :class:`SessionRequest` (machine programming +
trace source + deadlines), admitted into the priority queue, executed
under a :class:`~repro.supervisor.RunSupervisor`, and finished in exactly
one terminal state.  Everything here is JSON-serialisable — the service
manifest journals the full request, so a drained-and-restarted server
can re-adopt a session from its manifest record alone.

The refusal types are the robustness contract's visible half: a session
that cannot be served is *told why*, with the exhausted budget named in
machine-readable form (:class:`AdmissionError`, :class:`DeadlineError`,
both :class:`~repro.common.errors.ResourceError` → CLI exit code 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.common.errors import ResourceError, ValidationError
from repro.supervisor.spec import SupervisedRunSpec

#: Priority levels, lower is more urgent.  Ties break FIFO by admission.
PRIORITY_HIGH = 0
PRIORITY_NORMAL = 1
PRIORITY_LOW = 2

#: Trace-source kinds a session may name.
TRACE_KINDS = ("synthetic", "stream", "file")


class SessionState(str, Enum):
    """Lifecycle of one session.  Terminal states are exhaustive: a
    session never silently hangs — it completes, fails with an error,
    expires with a deadline reason, or is suspended by a drain (and then
    re-adopted by the next server incarnation)."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    EXPIRED = "expired"
    SUSPENDED = "suspended"

    @property
    def terminal(self) -> bool:
        return self in (
            SessionState.COMPLETED,
            SessionState.FAILED,
            SessionState.EXPIRED,
        )


class AdmissionError(ResourceError):
    """The service refused to admit a session, naming the spent budget.

    Attributes:
        reason: machine-readable refusal code — ``queue-full``,
            ``tenant-queue-quota``, ``draining`` or ``shedding``.
        budget: name of the exhausted budget (empty for state refusals).
        limit: the budget's configured bound.
        value: the budget's occupancy at refusal time.
    """

    def __init__(
        self,
        reason: str,
        budget: str = "",
        limit: int = 0,
        value: int = 0,
        detail: str = "",
    ) -> None:
        message = f"admission denied ({reason})"
        if budget:
            message += f": {budget} at {value}/{limit}"
        if detail:
            message += f" — {detail}"
        super().__init__(message)
        self.reason = reason
        self.budget = budget
        self.limit = int(limit)
        self.value = int(value)

    def to_dict(self) -> dict:
        return {
            "type": "admission",
            "error": str(self),
            "reason": self.reason,
            "budget": self.budget,
            "limit": self.limit,
            "value": self.value,
        }


class DeadlineError(ResourceError):
    """A session exceeded its wall or emulated-cycle deadline.

    Attributes:
        reason: ``wall-deadline``, ``cycle-deadline`` or
            ``orphaned-ingest`` (trace never arrived).
    """

    def __init__(self, reason: str, detail: str = "") -> None:
        message = f"deadline exceeded ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(message)
        self.reason = reason

    def to_dict(self) -> dict:
        return {"type": "deadline", "error": str(self), "reason": self.reason}


def validate_trace_spec(trace: dict) -> dict:
    """Normalise and validate a session's trace-source description.

    ``{"kind": "synthetic", "records": N, "seed": S, ...}`` is generated
    server-side (deterministically — same spec, same bytes);
    ``{"kind": "stream"}`` is fed by the client through the bounded
    ingest path; ``{"kind": "file", "path": P}`` names a trace file
    readable by the server process.
    """
    if not isinstance(trace, dict):
        raise ValidationError(f"trace spec must be an object, got {trace!r}")
    kind = trace.get("kind")
    if kind not in TRACE_KINDS:
        raise ValidationError(
            f"trace kind must be one of {', '.join(TRACE_KINDS)}; "
            f"got {kind!r}"
        )
    if kind == "synthetic":
        records = int(trace.get("records", 0))
        if records < 1:
            raise ValidationError(
                f"synthetic trace needs records >= 1, got {records}"
            )
        return {
            "kind": "synthetic",
            "records": records,
            "seed": int(trace.get("seed", 0)),
            "n_cpus": int(trace.get("n_cpus", 4)),
            "n_lines": int(trace.get("n_lines", 512)),
            "line_size": int(trace.get("line_size", 128)),
            "rwitm_fraction": float(trace.get("rwitm_fraction", 0.2)),
        }
    if kind == "file":
        path = trace.get("path")
        if not path:
            raise ValidationError("file trace needs a 'path'")
        return {"kind": "file", "path": str(path)}
    return {"kind": "stream"}


def synthetic_words(trace: dict) -> np.ndarray:
    """Generate the packed bus words a synthetic trace spec describes.

    A seeded read/RWITM mix over line-aligned addresses — the same shape
    the smoke tools replay.  Pure function of the spec, so a re-adopting
    server regenerates byte-identical traffic.
    """
    from repro.bus.trace import encode_arrays
    from repro.bus.transaction import BusCommand

    rng = np.random.default_rng(trace["seed"])
    records = trace["records"]
    cpus = rng.integers(0, trace["n_cpus"], records).astype(np.uint64)
    commands = rng.choice(
        [int(BusCommand.READ), int(BusCommand.RWITM)],
        size=records,
        p=[1.0 - trace["rwitm_fraction"], trace["rwitm_fraction"]],
    ).astype(np.uint64)
    addresses = (
        rng.integers(0, trace["n_lines"], records)
        * np.uint64(trace["line_size"])
    ).astype(np.uint64)
    return encode_arrays(cpus, commands, addresses)


@dataclass(frozen=True)
class SessionRequest:
    """One tenant's submission: what to emulate, and under which budgets.

    Attributes:
        run_spec: the supervised-run recipe (machine, seed, segmentation,
            restart budgets — see :class:`SupervisedRunSpec`).
        trace: trace-source spec (see :func:`validate_trace_spec`).
        tenant: quota-accounting identity.
        priority: :data:`PRIORITY_HIGH` / ``NORMAL`` / ``LOW``.
        label: stable human handle (chaos plans key on it); defaults to
            the session id at admission.
        wall_deadline: seconds from admission to completion, enforced by
            the service watchdog (None = no wall deadline).
        cycle_deadline: emulated-cycle budget, enforced from worker
            heartbeats (None = no cycle deadline).
        max_attempts: service-level supervisor attempts (each attempt is
            a bit-identical resume from the run journal, never a replay
            from zero).
    """

    run_spec: SupervisedRunSpec
    trace: dict
    tenant: str = "default"
    priority: int = PRIORITY_NORMAL
    label: str = ""
    wall_deadline: Optional[float] = None
    cycle_deadline: Optional[float] = None
    max_attempts: int = 2

    def __post_init__(self) -> None:
        if self.priority not in (PRIORITY_HIGH, PRIORITY_NORMAL, PRIORITY_LOW):
            raise ValidationError(
                f"priority must be {PRIORITY_HIGH}, {PRIORITY_NORMAL} or "
                f"{PRIORITY_LOW}, got {self.priority}"
            )
        if not self.tenant:
            raise ValidationError("tenant must be a non-empty string")
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.wall_deadline is not None and self.wall_deadline <= 0:
            raise ValidationError(
                f"wall_deadline must be positive, got {self.wall_deadline}"
            )
        if self.cycle_deadline is not None and self.cycle_deadline <= 0:
            raise ValidationError(
                f"cycle_deadline must be positive, got {self.cycle_deadline}"
            )
        object.__setattr__(self, "trace", validate_trace_spec(self.trace))

    def to_dict(self) -> dict:
        return {
            "run_spec": self.run_spec.to_dict(),
            "trace": dict(self.trace),
            "tenant": self.tenant,
            "priority": self.priority,
            "label": self.label,
            "wall_deadline": self.wall_deadline,
            "cycle_deadline": self.cycle_deadline,
            "max_attempts": self.max_attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SessionRequest":
        try:
            return cls(
                run_spec=SupervisedRunSpec.from_dict(data["run_spec"]),
                trace=data["trace"],
                tenant=str(data.get("tenant", "default")),
                priority=int(data.get("priority", PRIORITY_NORMAL)),
                label=str(data.get("label", "")),
                wall_deadline=(
                    float(data["wall_deadline"])
                    if data.get("wall_deadline") is not None
                    else None
                ),
                cycle_deadline=(
                    float(data["cycle_deadline"])
                    if data.get("cycle_deadline") is not None
                    else None
                ),
                max_attempts=int(data.get("max_attempts", 2)),
            )
        except (KeyError, TypeError) as exc:
            raise ValidationError(
                f"malformed session request: {exc}"
            ) from exc


@dataclass
class SessionView:
    """Serialisable status snapshot of one session (the ``status`` API)."""

    session_id: str
    tenant: str
    label: str
    priority: int
    state: str
    reason: str = ""
    error: str = ""
    attempts: int = 0
    restarts: int = 0
    cycle: float = 0.0
    transactions: int = 0
    digest: str = ""
    degraded: bool = False
    adopted: bool = False

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "tenant": self.tenant,
            "label": self.label,
            "priority": self.priority,
            "state": self.state,
            "reason": self.reason,
            "error": self.error,
            "attempts": self.attempts,
            "restarts": self.restarts,
            "cycle": self.cycle,
            "transactions": self.transactions,
            "digest": self.digest,
            "degraded": self.degraded,
            "adopted": self.adopted,
        }
