"""The multi-session emulation service core (transport-independent).

:class:`EmulationService` turns the single-run machinery of six PRs —
the crash-safe supervisor, journaled checkpoints, telemetry — into a
multi-tenant facility: many sessions in flight at once, each one a
supervised run in its own directory under the service root::

    root/
      service.jsonl            — the service manifest (a RunJournal WAL)
      service-telemetry.jsonl  — shared event log (locked JsonlSink)
      runs/<session-id>/       — one supervised run directory per session

The robustness machinery is the architecture, not an afterthought:

* **Admission control** — every submission passes the bounded budgets of
  :class:`~repro.service.admission.AdmissionController`; refusals are
  structured (:class:`~repro.service.spec.AdmissionError`).
* **Deadlines** — a watchdog expires sessions that exceed their wall
  budget (queued or running); cycle budgets are enforced from worker
  heartbeats through the supervisor's ``heartbeat_hook``.
* **Retries** — a failed supervisor attempt is retried by *re-opening*
  the run journal (:meth:`RunSupervisor.open` + ``run()``), which is a
  bit-identical continuation, never a replay from zero; backoff jitter
  is seeded (:func:`~repro.supervisor.backoff_delay`, rule DT207).
* **Back-pressure** — streamed traces pass through each session's
  bounded :class:`~repro.service.ingest.IngestBuffer`.
* **Graceful shedding** — the service walks the ACCEPT → QUEUE_ONLY →
  DRAIN → REJECT ladder; a drain suspends in-flight runs at their next
  safe point and the manifest lets the next incarnation re-adopt and
  finish them, bit-identically.
"""

from __future__ import annotations

import asyncio
import functools
import heapq
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.common.errors import ReproError, ValidationError
from repro.faults.service_chaos import ServiceChaosPlan
from repro.service.admission import (
    AdmissionController,
    ServiceConfig,
    ServiceState,
)
from repro.service.ingest import (
    IngestBuffer,
    IngestClosedError,
    load_staged,
    stage_stream,
)
from repro.service.spec import (
    DeadlineError,
    SessionRequest,
    SessionState,
    SessionView,
    synthetic_words,
)
from repro.supervisor import (
    ChaosPlan,
    RunJournal,
    RunSupervisor,
    SupervisedRunResult,
    SupervisorAbort,
    SupervisorError,
    backoff_delay,
)
from repro.telemetry.histogram import Histogram
from repro.telemetry.prom import histogram_exposition, render_exposition
from repro.telemetry.sink import JsonlSink
from repro.telemetry.spans import SPAN_VERSION, derive_trace_id

#: Scheduler/watchdog tick while idle, seconds.
_TICK = 0.05

#: Per-subscriber telemetry queue bound; the oldest record is shed when a
#: slow watcher falls behind (watching must never stall the watched).
_SUBSCRIBER_DEPTH = 256

#: Ingest staging file name inside a session's run directory.
INGEST_NAME = "ingest.words"


def _reap_stager_error(task: "asyncio.Task") -> None:
    """Consume an orphaned stager's exception (see ``_collect_stager``)."""
    if not task.cancelled():
        task.exception()


class Session:
    """One admitted session: request, lifecycle state, and run directory."""

    def __init__(
        self,
        session_id: str,
        request: SessionRequest,
        run_dir: Path,
        adopted: bool = False,
    ) -> None:
        self.id = session_id
        self.request = request
        self.run_dir = run_dir
        self.label = request.label or session_id
        self.adopted = adopted
        self.state = SessionState.QUEUED
        self.reason = ""
        self.error = ""
        self.attempts = 0
        self.restarts = 0
        self.result: Optional[SupervisedRunResult] = None
        self.admitted_at = time.perf_counter()
        self.cycle = 0.0
        self.transactions = 0
        self.trace_staged = request.trace["kind"] != "stream"
        #: Deterministic trace identity: the same derivation the
        #: supervisor stamps into its journal (machine fingerprint, seed,
        #: run-dir name), so every process of this session shares it.
        self.trace_id = derive_trace_id(
            request.run_spec.machine.fingerprint(),
            request.run_spec.seed,
            session_id,
        )
        #: When the session became runnable (trace staged); None while a
        #: streamed trace is still arriving.
        self.runnable_at: Optional[float] = (
            self.admitted_at if self.trace_staged else None
        )
        self.started_at: Optional[float] = None
        #: Latest wrap-corrected counter deltas per sampler seq.  Keyed
        #: by seq so a worker restarted from a checkpoint (whose sampler
        #: cursor rewinds) replaces the redone stretch instead of
        #: double-counting it.
        self.counter_samples: Dict[int, dict] = {}
        self.window: dict = {}
        self.ingest_bytes = 0
        self.ingest: Optional[IngestBuffer] = None
        self.stager: Optional[asyncio.Task] = None
        self.subscribers: List[asyncio.Queue] = []
        self._abort = threading.Event()
        self._abort_reason = ""
        self._finalized = False
        self._supervisor: Optional[RunSupervisor] = None

    @property
    def root_span_id(self) -> str:
        """Span ID of this session's root span (parent of the run span)."""
        return f"service-{self.id}:0"

    def counter_totals(self) -> Dict[str, int]:
        """Accumulated board counters from the heartbeat delta stream."""
        totals: Dict[str, int] = {}
        for deltas in list(self.counter_samples.values()):
            for name, delta in deltas.items():
                totals[name] = totals.get(name, 0) + int(delta)
        return totals

    def note_heartbeat_deltas(self, seq: int, deltas: dict) -> None:
        """Fold one heartbeat's deltas in, rewinding redone samples."""
        if not deltas:
            return
        for stale in [s for s in self.counter_samples if s >= seq]:
            self.counter_samples.pop(stale, None)
        self.counter_samples[seq] = dict(deltas)

    @property
    def wall_deadline(self) -> Optional[float]:
        return self.request.wall_deadline

    def view(self) -> SessionView:
        digest = self.result.digest if self.result is not None else ""
        degraded = bool(self.result and self.result.degraded)
        return SessionView(
            session_id=self.id,
            tenant=self.request.tenant,
            label=self.label,
            priority=self.request.priority,
            state=self.state.value,
            reason=self.reason,
            error=self.error,
            attempts=self.attempts,
            restarts=self.restarts,
            cycle=self.cycle,
            transactions=self.transactions,
            digest=digest,
            degraded=degraded,
            adopted=self.adopted,
        )

    def raise_for_state(self) -> None:
        """Surface a terminal refusal as its structured exception."""
        if self.state == SessionState.EXPIRED:
            raise DeadlineError(self.reason or "wall-deadline",
                                detail=f"session {self.id}")
        if self.state == SessionState.FAILED:
            raise ValidationError(
                f"session {self.id} failed: {self.error}"
            )

    # -- called from the supervisor thread --------------------------------

    def request_abort(self, reason: str) -> None:
        self._abort_reason = reason
        supervisor = self._supervisor
        if supervisor is not None:
            supervisor.abort_reason = reason
        self._abort.set()


class EmulationService:
    """Admission, scheduling, execution and shedding for many sessions.

    Drive it directly from asyncio (tests) or behind the HTTP/WebSocket
    front end (:mod:`repro.service.http`).  All public methods are event-
    loop-side; the blocking supervisor work runs in worker threads (the
    replay itself is in child processes either way).
    """

    MANIFEST_NAME = "service.jsonl"
    TELEMETRY_NAME = "service-telemetry.jsonl"

    def __init__(
        self,
        root: Union[str, Path],
        config: Optional[ServiceConfig] = None,
        chaos: Optional[ServiceChaosPlan] = None,
    ) -> None:
        self.root = Path(root)
        self.config = config or ServiceConfig()
        self.chaos = chaos or ServiceChaosPlan()
        self.state = ServiceState.ACCEPT
        self.admission = AdmissionController(self.config)
        self.sessions: Dict[str, Session] = {}
        self.history: Dict[str, dict] = {}
        self.metrics: Dict[str, int] = {
            "admitted": 0,
            "adopted": 0,
            "completed": 0,
            "failed": 0,
            "expired": 0,
            "suspended": 0,
            "retries": 0,
            "worker_restarts": 0,
            "rejected.queue-full": 0,
            "rejected.tenant-queue-quota": 0,
            "rejected.draining": 0,
            "rejected.shedding": 0,
        }
        self.ingest_stats: Dict[str, int] = {
            "high_water": 0,
            "producer_waits": 0,
        }
        #: Service-plane latency histograms (wall domain): where control
        #: time goes before and between supervisor attempts.
        self.histograms: Dict[str, Histogram] = {
            name: Histogram(name, domain="wall")
            for name in (
                "admission_wait", "queue_wait", "ingest_stall",
                "retry_backoff",
            )
        }
        #: Per-tenant resource accounting (see :meth:`_account_session`).
        self.tenants: Dict[str, Dict[str, float]] = {}
        self._queue: List = []  # heap of (priority, seq, session_id)
        self._seq = 0
        self._manifest: Optional[RunJournal] = None
        self._sink: Optional[JsonlSink] = None
        self._telemetry_handle: Optional[TextIO] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake = asyncio.Event()
        self._tasks: List[asyncio.Task] = []
        self._runners: Dict[str, asyncio.Task] = {}
        #: Every live stager task, reaped in stop() — a stager detached
        #: from its session mid-collect (watchdog cancelled while
        #: awaiting it) must still finish its .part cleanup before the
        #: loop closes underneath it.
        self._stagers: set = set()
        self._stopping = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Open the manifest, re-adopt orphaned runs, start the loops."""
        self._loop = asyncio.get_running_loop()
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / "runs").mkdir(exist_ok=True)
        self._manifest = RunJournal(self.root / self.MANIFEST_NAME)
        # Opened in append mode (the shared log survives restarts), so
        # the sink cannot own it via a path; the service closes it in
        # stop() — JsonlSink.close() only flushes handles it borrows.
        self._telemetry_handle = open(self.root / self.TELEMETRY_NAME, "a")
        self._sink = JsonlSink(self._telemetry_handle)
        self._adopt_from_manifest()
        self._manifest.append("service_start", adopted=self.metrics["adopted"])
        self._tasks = [
            asyncio.create_task(self._scheduler()),
            asyncio.create_task(self._watchdog()),
        ]

    def _adopt_from_manifest(self) -> None:
        """Re-queue every journaled session without a terminal record.

        The manifest is the service's WAL: ``session_queued`` carries the
        full request, terminal records close a session out.  Anything in
        between — queued at the old server's death, suspended by its
        drain, or mid-run when it was killed — is re-admitted here and
        then resumed through the per-run journal, so the continuation is
        bit-identical to an uninterrupted run.
        """
        assert self._manifest is not None
        terminal: Dict[str, dict] = {}
        for kind in ("session_complete", "session_failed", "session_expired"):
            for record in self._manifest.entries(kind):
                terminal[str(record["session"])] = record
        self.history = terminal
        for record in self._manifest.entries("tenant_usage"):
            usage = self._tenant_usage(str(record.get("tenant", "default")))
            for key in usage:
                usage[key] += float(record.get(key, 0.0))
        for record in self._manifest.entries("session_queued"):
            session_id = str(record["session"])
            self._seq = max(self._seq, int(record["seq_no"]) + 1)
            if session_id in terminal:
                continue
            request = SessionRequest.from_dict(record["request"])
            run_dir = self.root / "runs" / session_id
            session = Session(session_id, request, run_dir, adopted=True)
            staged = (
                request.trace["kind"] != "stream"
                or (run_dir / RunSupervisor.JOURNAL_NAME).exists()
                or (run_dir / INGEST_NAME).exists()
            )
            self.sessions[session_id] = session
            if not staged:
                # A streamed trace that never finished arriving cannot be
                # reconstructed; close the session out explicitly.
                session.state = SessionState.EXPIRED
                session.reason = "orphaned-ingest"
                self._manifest.append(
                    "session_expired", session=session_id,
                    reason="orphaned-ingest",
                )
                self.metrics["expired"] += 1
                self._finalize_session(session)
                continue
            session.trace_staged = True
            session.runnable_at = session.admitted_at
            self.admission.queued_total += 1
            self.admission.queued_by_tenant[request.tenant] = (
                self.admission.queued_by_tenant.get(request.tenant, 0) + 1
            )
            self._push(session, int(record["seq_no"]))
            self.metrics["adopted"] += 1

    async def stop(self, drain: bool = True) -> None:
        """Walk to DRAIN, suspend in-flight runs, close the manifest.

        A drained session's worker checkpoints at its last committed
        segment (the supervisor aborts at the next poll slice and the
        commit protocol guarantees durability); the manifest keeps its
        ``session_queued`` record open, so the next ``start()`` on the
        same root re-adopts and finishes it.
        """
        if self._manifest is None:
            return
        self._stopping = True
        self.state = ServiceState.DRAIN
        self._manifest.append("drain")
        self._emit_service_event("drain")
        for session in list(self.sessions.values()):
            if session.state == SessionState.RUNNING:
                session.request_abort("drain")
            if session.ingest is not None:
                await session.ingest.close()
                await self._collect_stager(session)
        if self._stagers:
            # Stagers detached from their sessions (a watchdog expiry
            # interrupted mid-collect) still owe their torn-stage
            # cleanup; every buffer is closed by now, so they all
            # terminate promptly.
            await asyncio.gather(
                *list(self._stagers), return_exceptions=True
            )
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        if self._runners and drain:
            done, pending = await asyncio.wait(
                list(self._runners.values()),
                timeout=self.config.drain_grace,
            )
            for task in pending:
                task.cancel()
        self._manifest.append("drain_complete")
        self._manifest.close()
        self._manifest = None
        if self._sink is not None:
            self._sink.close()
            self._sink = None
        if self._telemetry_handle is not None:
            self._telemetry_handle.close()
            self._telemetry_handle = None

    # ------------------------------------------------------------------ #
    # Submission / admission
    # ------------------------------------------------------------------ #

    def submit(self, request: SessionRequest) -> Session:
        """Admit one session or raise a structured refusal.

        Raises:
            AdmissionError: a budget is exhausted or the service is
                draining/shedding — ``reason`` and the budget name ride
                on the exception (HTTP 429/503, CLI exit code 5).
        """
        if self._manifest is None:
            raise ValidationError("service is not started")
        try:
            self.admission.admit(request, self.state)
        except ReproError as error:
            reason = getattr(error, "reason", "rejected")
            key = f"rejected.{reason}"
            self.metrics[key] = self.metrics.get(key, 0) + 1
            raise
        if request.wall_deadline is None and (
            self.config.default_wall_deadline is not None
        ):
            request = SessionRequest.from_dict(
                {**request.to_dict(),
                 "wall_deadline": self.config.default_wall_deadline}
            )
        session_id = f"s{self._seq:06d}"
        seq_no = self._seq
        self._seq += 1
        run_dir = self.root / "runs" / session_id
        run_dir.mkdir(parents=True, exist_ok=True)
        session = Session(session_id, request, run_dir)
        if request.trace["kind"] == "stream":
            buffer = IngestBuffer(self.config.ingest_buffer_records)
            buffer.on_wait = self.histograms["ingest_stall"].observe
            session.ingest = buffer
            # The consumer half of the back-pressure pair runs for the
            # whole stream, so producers only ever wait on the *bound*,
            # never on end-of-stream staging.
            assert self._loop is not None
            session.stager = self._loop.create_task(
                self._stage_session(
                    session, buffer,
                    stall_after=self.chaos.ingest_stall_after(session.label),
                )
            )
            self._stagers.add(session.stager)
            session.stager.add_done_callback(self._stagers.discard)
        self.sessions[session_id] = session
        self._manifest.append(
            "session_queued",
            session=session_id,
            seq_no=seq_no,
            request=request.to_dict(),
        )
        self.metrics["admitted"] += 1
        self._push(session, seq_no)
        self._emit(session, "queued")
        self._reconsider_state()
        self._wake.set()
        return session

    def _push(self, session: Session, seq_no: int) -> None:
        heapq.heappush(
            self._queue, (session.request.priority, seq_no, session.id)
        )

    def get_session(self, session_id: str) -> Session:
        session = self.sessions.get(session_id)
        if session is None:
            raise ValidationError(f"unknown session {session_id!r}")
        return session

    def status(self) -> dict:
        """Service-level status snapshot (also ``/readyz``'s body)."""
        states: Dict[str, int] = {}
        for session in self.sessions.values():
            states[session.state.value] = states.get(session.state.value, 0) + 1
        return {
            "state": self.state.value,
            "ready": self.state == ServiceState.ACCEPT,
            "queued": self.admission.queued_total,
            "running": self.admission.running_total,
            "sessions": {key: states[key] for key in sorted(states)},
            "metrics": {key: self.metrics[key] for key in sorted(self.metrics)},
            "tenants": {
                tenant: dict(usage)
                for tenant, usage in sorted(self.tenants.items())
            },
        }

    # ------------------------------------------------------------------ #
    # Ingest (streamed traces)
    # ------------------------------------------------------------------ #

    async def ingest_chunk(self, session_id: str, chunk: np.ndarray) -> None:
        """Feed one chunk of a streamed trace, honouring back-pressure.

        The await does not return while the session's bounded buffer is
        full — the transport layer must therefore stop reading its
        socket, which is exactly the pause that protects the service.
        """
        session = self.get_session(session_id)
        if session.ingest is None:
            raise ValidationError(
                f"session {session_id} does not take streamed ingest"
            )
        await session.ingest.put(chunk)

    async def ingest_end(self, session_id: str) -> int:
        """Finish a streamed trace: drain, stage, mark runnable."""
        session = self.get_session(session_id)
        if session.ingest is None:
            raise ValidationError(
                f"session {session_id} does not take streamed ingest"
            )
        buffer = session.ingest
        await buffer.end()
        assert session.stager is not None
        staged = await session.stager
        session.stager = None
        self._absorb_ingest(buffer, session)
        session.trace_staged = True
        session.runnable_at = time.perf_counter()
        session.ingest = None
        if self._manifest is not None:
            self._manifest.append(
                "trace_staged", session=session_id, records=staged
            )
        self._emit(
            session, "trace-staged", records=staged,
            wall_fields={"stalled": round(buffer.wait_seconds, 6)},
        )
        self._wake.set()
        return staged

    async def _stage_session(self, session: Session,
                             buffer: IngestBuffer,
                             stall_after: Optional[int] = None) -> int:
        """Drain one session's ingest buffer to disk as chunks arrive.

        Writes to a ``.part`` file and renames on clean end-of-stream, so
        a server killed mid-ingest never leaves a torn staging file that
        adoption would mistake for a complete trace.  ``stall_after`` is
        the chaos plan's stalled-consumer schedule (see
        :func:`~repro.service.ingest.stage_stream`).
        """
        part = session.run_dir / (INGEST_NAME + ".part")
        try:
            staged = await stage_stream(
                buffer, part, stall_after_chunks=stall_after
            )
        except ReproError:
            try:
                part.unlink()
            except OSError:
                pass
            raise
        part.replace(session.run_dir / INGEST_NAME)
        return staged

    async def _collect_stager(self, session: Session) -> None:
        """Reap an aborted session's stager, swallowing the torn-stream
        error it raises once its buffer is closed under it.

        Only the *stager's* demise is swallowed: a ``CancelledError``
        raised because the caller itself was cancelled (the watchdog or
        an ingest handler torn down by ``stop()``) must propagate, or the
        caller's loop would keep running after its cancellation and
        ``stop()``'s gather would wait on it forever.
        """
        task = session.stager
        session.stager = None
        if task is None:
            return
        try:
            await task
        except ReproError:
            pass
        except asyncio.CancelledError:
            # Awaiting a task forwards our own cancellation into it, so
            # ``task.cancelled()`` cannot tell whose cancel this is; the
            # caller's pending-cancel count can.
            current = asyncio.current_task()
            if current is not None and current.cancelling():
                # We are being cancelled mid-reap; detach the stager so
                # whatever it still raises on its closed buffer is
                # consumed instead of logged as never-retrieved.
                task.add_done_callback(_reap_stager_error)
                raise
            # Only the stager was cancelled; nothing left to reap.

    def _absorb_ingest(
        self, buffer: IngestBuffer, session: Optional[Session] = None
    ) -> None:
        if buffer.high_water > self.ingest_stats["high_water"]:
            self.ingest_stats["high_water"] = buffer.high_water
        self.ingest_stats["producer_waits"] += buffer.producer_waits
        if session is not None:
            accepted = buffer.records_in * 8  # packed 8-byte bus words
            session.ingest_bytes += accepted
            usage = self._tenant_usage(session.request.tenant)
            usage["ingest_bytes"] += accepted

    def ingest_snapshot(self) -> Dict[str, int]:
        """Aggregate back-pressure stats over finished and live buffers."""
        high_water = self.ingest_stats["high_water"]
        waits = self.ingest_stats["producer_waits"]
        for session in self.sessions.values():
            buffer = session.ingest
            if buffer is not None:
                high_water = max(high_water, buffer.high_water)
                waits += buffer.producer_waits
        return {"high_water": high_water, "producer_waits": waits}

    async def ingest_abort(self, session_id: str) -> None:
        """The ingest connection died before its end marker.

        A torn stream cannot be reconstructed — re-streaming into the
        same session is impossible once the buffer is closed — so the
        session is expired *in place* with the same structured reason
        the adoption path uses (``orphaned-ingest``), releasing its
        tenant queue-quota slot.  Leaving it QUEUED would let it hang
        forever whenever no wall deadline is set.
        """
        session = self.sessions.get(session_id)
        if session is None or session.ingest is None:
            return
        buffer = session.ingest
        await buffer.close()
        await self._collect_stager(session)
        self._absorb_ingest(buffer, session)
        session.ingest = None
        self._emit(session, "ingest-lost")
        if session.state == SessionState.QUEUED:
            session.state = SessionState.EXPIRED
            session.reason = "orphaned-ingest"
            self.admission.forget_queued(session.request.tenant)
            self.metrics["expired"] += 1
            self._manifest_safe(
                "session_expired", session=session.id,
                reason="orphaned-ingest",
            )
            self._emit(session, "expired", reason="orphaned-ingest")
            self._finalize_session(session)
            self._close_subscribers(session)
            self._reconsider_state()

    # ------------------------------------------------------------------ #
    # Scheduler
    # ------------------------------------------------------------------ #

    async def _scheduler(self) -> None:
        # ``not self._stopping`` rather than ``True``: on Python <= 3.11,
        # ``wait_for`` can swallow a cancellation that lands just as the
        # wake event fires (and ``_run_session`` fires it right before
        # ``stop()`` cancels us) — the flag guarantees the loop still
        # terminates so ``stop()``'s gather cannot hang on it.
        while not self._stopping:
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=_TICK)
            except asyncio.TimeoutError:
                pass
            self._wake.clear()
            if not self.state.launches:
                continue
            deferred = []
            while self._queue:
                priority, seq_no, session_id = heapq.heappop(self._queue)
                session = self.sessions.get(session_id)
                if session is None or session.state != SessionState.QUEUED:
                    continue  # expired or otherwise resolved while queued
                if not session.trace_staged:
                    deferred.append((priority, seq_no, session_id))
                    continue
                if not self.admission.may_launch(session.request.tenant):
                    deferred.append((priority, seq_no, session_id))
                    if self.admission.running_total >= self.config.max_workers:
                        break  # no global slot; stop scanning
                    continue  # tenant-local cap; lower priorities may run
                self._launch(session)
            for entry in deferred:
                heapq.heappush(self._queue, entry)

    def _launch(self, session: Session) -> None:
        self.admission.launch(session.request.tenant)
        session.state = SessionState.RUNNING
        now = time.perf_counter()
        session.started_at = now
        runnable_at = session.runnable_at
        if runnable_at is None:
            runnable_at = now
        self.histograms["admission_wait"].observe(
            max(0.0, runnable_at - session.admitted_at)
        )
        self.histograms["queue_wait"].observe(max(0.0, now - runnable_at))
        assert self._manifest is not None
        self._manifest.append("session_started", session=session.id)
        self._emit(session, "started")
        self._reconsider_state()
        self._runners[session.id] = asyncio.create_task(
            self._run_session(session)
        )

    def _reconsider_state(self) -> None:
        suggested = self.admission.suggested_state(self.state)
        if suggested != self.state:
            self.state = suggested
            self._emit_service_event("state", state=self.state.value)

    # ------------------------------------------------------------------ #
    # Session execution
    # ------------------------------------------------------------------ #

    async def _run_session(self, session: Session) -> None:
        try:
            result = await asyncio.to_thread(self._drive_session, session)
            session.result = result
            session.restarts = result.restarts
            session.state = SessionState.COMPLETED
            self.metrics["completed"] += 1
            self.metrics["worker_restarts"] += result.restarts
            self._manifest_safe(
                "session_complete",
                session=session.id,
                digest=result.digest,
                restarts=result.restarts,
                degraded=result.degraded,
            )
            self._emit(
                session, "completed",
                digest=result.digest, degraded=result.degraded,
            )
        except SupervisorAbort as abort:
            if abort.reason == "drain":
                session.state = SessionState.SUSPENDED
                self.metrics["suspended"] += 1
                self._manifest_safe("session_suspended", session=session.id)
                self._emit(session, "suspended")
            else:
                session.state = SessionState.EXPIRED
                session.reason = abort.reason
                self.metrics["expired"] += 1
                self._manifest_safe(
                    "session_expired", session=session.id,
                    reason=abort.reason,
                )
                self._emit(session, "expired", reason=abort.reason)
        except ReproError as error:
            session.state = SessionState.FAILED
            session.error = str(error)
            self.metrics["failed"] += 1
            self._manifest_safe(
                "session_failed", session=session.id, error=str(error)
            )
            self._emit(session, "failed", error=str(error))
        finally:
            self.admission.release(session.request.tenant)
            self._runners.pop(session.id, None)
            if session.state.terminal or (
                session.state == SessionState.SUSPENDED
            ):
                self._finalize_session(session)
            self._close_subscribers(session)
            self._reconsider_state()
            self._wake.set()

    def _drive_session(self, session: Session) -> SupervisedRunResult:
        """Worker-thread body: create-or-resume under bounded retries.

        Every retry *re-opens* the run directory: the journal proves what
        committed, the checkpoint restores it, and the continuation is
        bit-identical to a run that never failed.  Chaos (worker kills)
        applies only to a fresh first attempt, mirroring the supervisor's
        own first-launch-only rule.
        """
        spec = session.request.run_spec
        journal_path = session.run_dir / RunSupervisor.JOURNAL_NAME
        if journal_path.exists():
            supervisor = RunSupervisor.open(session.run_dir)
        else:
            supervisor = RunSupervisor.create(
                spec, self._stage_words(session), session.run_dir
            )
        attempt = 0
        while True:
            attempt += 1
            session.attempts = attempt
            self._arm(session, supervisor)
            chaos = None
            if attempt == 1 and not session.adopted:
                kill_after = self.chaos.kill_after_records(session.label)
                if kill_after is not None:
                    chaos = ChaosPlan(kill_after_records=kill_after)
            try:
                return supervisor.run(chaos=chaos)
            except SupervisorError as failure:
                if attempt >= session.request.max_attempts:
                    raise
                self.metrics["retries"] += 1
                delay = backoff_delay(
                    spec.seed, self.config.retry_backoff_base, attempt
                )
                self.histograms["retry_backoff"].observe(delay)
                self._emit_threadsafe(
                    session, "retry",
                    attempt=attempt, delay=delay, error=str(failure),
                )
                self._abortable_sleep(session, delay)
                supervisor = RunSupervisor.open(session.run_dir)

    def _arm(self, session: Session, supervisor: RunSupervisor) -> None:
        """Wire service plumbing into one supervisor attempt."""
        session._supervisor = supervisor
        # The supervisor derived the same trace ID from its journal; its
        # run span hangs under this session's root span.
        session.trace_id = supervisor.trace_id
        supervisor.trace_parent = session.root_span_id
        supervisor.abort_event = session._abort
        if session._abort_reason:
            supervisor.abort_reason = session._abort_reason
        supervisor.heartbeat_hook = functools.partial(
            self._heartbeat, session
        )
        if session._abort.is_set():
            raise SupervisorAbort(session._abort_reason or "abort")

    def _abortable_sleep(self, session: Session, delay: float) -> None:
        slept = 0.0
        while slept < delay:
            if session._abort.is_set():
                raise SupervisorAbort(session._abort_reason or "abort")
            step = min(_TICK, delay - slept)
            time.sleep(step)
            slept += step

    def _stage_words(self, session: Session) -> np.ndarray:
        trace = session.request.trace
        if trace["kind"] == "synthetic":
            return synthetic_words(trace)
        if trace["kind"] == "file":
            from repro.bus.trace import TraceReader

            return TraceReader(trace["path"]).load().words
        staged = session.run_dir / INGEST_NAME
        if not staged.exists():
            raise IngestClosedError(
                f"session {session.id}: streamed trace was never staged"
            )
        return load_staged(staged)

    # -- heartbeats (supervisor thread) ----------------------------------

    def _heartbeat(self, session: Session, payload: dict) -> None:
        session.cycle = float(payload.get("cycle", 0.0))
        session.transactions = int(payload.get("transactions", 0))
        session.note_heartbeat_deltas(
            int(payload.get("seq", 0)), payload.get("deltas") or {}
        )
        window = payload.get("window")
        if window:
            session.window = dict(window)
        deadline = session.request.cycle_deadline
        if deadline is not None and session.cycle > deadline:
            session.request_abort("cycle-deadline")
        self._emit_threadsafe(
            session, "heartbeat",
            cycle=session.cycle, transactions=session.transactions,
        )

    # ------------------------------------------------------------------ #
    # Accounting, trace roots, per-session metrics
    # ------------------------------------------------------------------ #

    def _tenant_usage(self, tenant: str) -> Dict[str, float]:
        usage = self.tenants.get(tenant)
        if usage is None:
            usage = {
                "cycles": 0.0,
                "records": 0.0,
                "worker_seconds": 0.0,
                "ingest_bytes": 0.0,
            }
            self.tenants[tenant] = usage
        return usage

    def _finalize_session(self, session: Session) -> None:
        """Close a session out exactly once: accounting + the root span.

        Called from every terminal transition (and suspension).  Emits
        the session's root span record — the parent every supervisor and
        worker span of this trace resolves to — and journals the
        session's resource usage under its tenant.
        """
        if session._finalized:
            return
        session._finalized = True
        self._account_session(session)
        if self._sink is not None:
            self._sink.emit(self._session_span(session))

    def _account_session(self, session: Session) -> None:
        """Aggregate one closing session's usage under its tenant.

        An operational meter, not a billing ledger: a session resumed in
        a later service incarnation reports its absolute totals again
        (the per-incarnation ``worker_seconds`` stays accurate).
        """
        now = time.perf_counter()
        worker_seconds = (
            now - session.started_at if session.started_at is not None
            else 0.0
        )
        tenant = session.request.tenant
        usage = self._tenant_usage(tenant)
        usage["cycles"] += session.cycle
        usage["records"] += float(session.transactions)
        usage["worker_seconds"] += worker_seconds
        self._manifest_safe(
            "tenant_usage",
            session=session.id,
            tenant=tenant,
            cycles=session.cycle,
            records=session.transactions,
            worker_seconds=round(worker_seconds, 6),
            ingest_bytes=session.ingest_bytes,
        )

    def _session_span(self, session: Session) -> dict:
        """The session's root span record (service-plane lifetime)."""
        return {
            "type": "span",
            "v": SPAN_VERSION,
            "label": "service",
            "seq": 0,
            "name": "session",
            "path": "session",
            "depth": 0,
            "begin_cycle": 0.0,
            "end_cycle": session.cycle,
            "trace_id": session.trace_id,
            "span_id": session.root_span_id,
            "parent_id": None,
            "session": session.id,
            "tenant": session.request.tenant,
            "wall": {
                "seconds": round(
                    time.perf_counter() - session.admitted_at, 6
                )
            },
        }

    def session_metrics_page(self, session_id: str) -> str:
        """Prometheus exposition for one session: counters + histograms.

        Board counters come from the heartbeat delta stream (rewound on
        worker restarts, so redone work is never double-counted); the
        latency histograms are the supervisor's checkpoint-carried set.

        Raises:
            ValidationError: the session is unknown (evicted sessions
                get a structured 404 from the HTTP layer).
        """
        session = self.get_session(session_id)
        page = render_exposition(
            session.counter_totals(),
            label=session.id,
            cycle=session.cycle,
            transactions=session.transactions,
            samples=len(session.counter_samples),
            window=session.window or None,
        )
        supervisor = session._supervisor
        if supervisor is not None:
            page += histogram_exposition(
                list(supervisor.histograms.values()), label=session.id
            )
        return page

    # ------------------------------------------------------------------ #
    # Watchdog (wall deadlines)
    # ------------------------------------------------------------------ #

    async def _watchdog(self) -> None:
        # Same stop-flag guard as ``_scheduler``: a cancellation swallowed
        # by the expiry path's awaits must not leave this loop running.
        while not self._stopping:
            await asyncio.sleep(_TICK)
            now = time.perf_counter()
            for session in list(self.sessions.values()):
                deadline = session.wall_deadline
                if deadline is None or session.state.terminal:
                    continue
                if session.state == SessionState.SUSPENDED:
                    continue
                if now - session.admitted_at <= deadline:
                    continue
                if session.state == SessionState.QUEUED:
                    session.state = SessionState.EXPIRED
                    session.reason = "wall-deadline"
                    self.admission.forget_queued(session.request.tenant)
                    self.metrics["expired"] += 1
                    self._manifest_safe(
                        "session_expired", session=session.id,
                        reason="wall-deadline",
                    )
                    self._emit(session, "expired", reason="wall-deadline")
                    if session.ingest is not None:
                        await session.ingest.close()
                        await self._collect_stager(session)
                        self._absorb_ingest(session.ingest, session)
                        session.ingest = None
                    self._finalize_session(session)
                    self._close_subscribers(session)
                    self._reconsider_state()
                elif session.state == SessionState.RUNNING:
                    session.request_abort("wall-deadline")

    # ------------------------------------------------------------------ #
    # Telemetry fan-out
    # ------------------------------------------------------------------ #

    def subscribe(self, session_id: str) -> asyncio.Queue:
        """A live event feed for one session (drop-oldest on overflow)."""
        session = self.get_session(session_id)
        queue: asyncio.Queue = asyncio.Queue(maxsize=_SUBSCRIBER_DEPTH)
        if session.state.terminal or session.state == SessionState.SUSPENDED:
            queue.put_nowait(self._event_record(session, session.state.value))
            queue.put_nowait(None)
        else:
            session.subscribers.append(queue)
        return queue

    def unsubscribe(self, session_id: str, queue: asyncio.Queue) -> None:
        session = self.sessions.get(session_id)
        if session is not None and queue in session.subscribers:
            session.subscribers.remove(queue)

    def _event_record(
        self,
        session: Session,
        event: str,
        wall_fields: Optional[dict] = None,
        **fields,
    ) -> dict:
        # Wall offset since admission, segregated under the reserved
        # key: the flight recorder uses it to time the control-plane
        # phases (queued, staging) that have no cycle clock.
        wall = {
            "elapsed": round(time.perf_counter() - session.admitted_at, 6)
        }
        if wall_fields:
            wall.update(wall_fields)
        return {
            "type": "service",
            "event": event,
            "session": session.id,
            "tenant": session.request.tenant,
            "state": session.state.value,
            **fields,
            "wall": wall,
        }

    def _emit(self, session: Session, event: str, **fields) -> None:
        record = self._event_record(session, event, **fields)
        if self._sink is not None:
            self._sink.emit(record)
        for queue in list(session.subscribers):
            self._offer(queue, record)

    def _emit_threadsafe(self, session: Session, event: str, **fields) -> None:
        """Emit from a supervisor thread: sink directly (it locks),
        subscriber queues via the event loop."""
        record = self._event_record(session, event, **fields)
        if self._sink is not None:
            self._sink.emit(record)
        loop = self._loop
        if loop is not None and session.subscribers:
            loop.call_soon_threadsafe(self._fan_out, session, record)

    def _fan_out(self, session: Session, record: dict) -> None:
        for queue in list(session.subscribers):
            self._offer(queue, record)

    @staticmethod
    def _offer(queue: asyncio.Queue, record: Optional[dict]) -> None:
        if queue.full():
            try:
                queue.get_nowait()  # shed the oldest; watchers never stall us
            except asyncio.QueueEmpty:
                pass
        queue.put_nowait(record)

    def _close_subscribers(self, session: Session) -> None:
        for queue in list(session.subscribers):
            self._offer(queue, None)
        session.subscribers = []

    def _emit_service_event(self, event: str, **fields) -> None:
        if self._sink is not None:
            self._sink.emit({"type": "service", "event": event, **fields})

    def _manifest_safe(self, record_type: str, **fields) -> None:
        """Journal from a runner task; tolerate a manifest closed by stop().

        A runner finishing between ``stop()``'s journal close and its own
        cancellation must not crash — its session outcome is already
        recoverable from the per-run journal on re-adoption.
        """
        manifest = self._manifest
        if manifest is not None:
            manifest.append(record_type, **fields)


def render_service_manifest(root: Union[str, Path]) -> str:
    """Offline view of a service root's manifest (console ``service``).

    Reads ``service.jsonl`` without starting a server: which sessions the
    manifest records, which are closed out, and which a restarted server
    would re-adopt.
    """
    path = Path(root) / EmulationService.MANIFEST_NAME
    if not path.exists():
        raise ValidationError(f"{root} has no service manifest")
    journal = RunJournal(path)
    try:
        latest: Dict[str, Tuple[str, str]] = {}
        requests: Dict[str, dict] = {}
        for record in journal.entries():
            kind = record.get("type", "")
            session = str(record.get("session", ""))
            if kind == "session_queued":
                requests[session] = record.get("request", {})
                latest[session] = ("queued", "")
            elif kind == "session_started":
                latest[session] = ("running", "")
            elif kind == "session_suspended":
                latest[session] = ("suspended", "")
            elif kind == "session_complete":
                latest[session] = (
                    "completed", str(record.get("digest", ""))[:16]
                )
            elif kind == "session_failed":
                latest[session] = ("failed", str(record.get("error", "")))
            elif kind == "session_expired":
                latest[session] = ("expired", str(record.get("reason", "")))
        drained = journal.last("drain_complete") is not None
        lines = [f"=== service manifest: {path} ==="]
        adoptable = 0
        for session in sorted(latest):
            state, note = latest[session]
            request = requests.get(session, {})
            label = str(request.get("label", "")) or session
            tenant = str(request.get("tenant", "default"))
            if state in ("queued", "running", "suspended"):
                adoptable += 1
            suffix = f"  {note}" if note else ""
            lines.append(
                f"{session}  {state:9s}  tenant={tenant}  "
                f"label={label}{suffix}"
            )
        lines.append(
            f"{len(latest)} session(s); {adoptable} would be re-adopted; "
            f"last drain {'completed' if drained else 'not recorded'}"
        )
        return "\n".join(lines)
    finally:
        journal.close()
