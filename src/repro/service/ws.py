"""A minimal RFC 6455 WebSocket layer over asyncio streams.

The service streams live telemetry (heartbeats, state transitions) and
accepts trace ingest over WebSocket.  The container deliberately carries
no third-party HTTP stack, so this module implements the slice of RFC
6455 the service needs — handshake, unfragmented text/binary frames,
ping/pong, close — directly on ``asyncio`` streams.  Both sides live
here: the server upgrade (:func:`accept_handshake`) and the test/CLI
client (:class:`WsClient`).

Client frame masks are drawn from a Weyl sequence, not an entropy
source: RFC 6455 requires *a* mask, not an unpredictable one, and the
repo's determinism rules (DT203/RP101) apply to every byte this package
emits.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import struct
from typing import Optional, Tuple

from repro.common.errors import ReproError, ValidationError

#: RFC 6455 handshake GUID.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Refuse absurd frames before allocating for them.
MAX_FRAME = 64 * 1024 * 1024


class WsError(ReproError):
    """A WebSocket handshake or framing violation."""


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's key."""
    digest = hashlib.sha1((client_key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_response(client_key: str) -> bytes:
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(client_key)}\r\n"
        "\r\n"
    ).encode("ascii")


def encode_frame(
    opcode: int, payload: bytes, mask_word: Optional[int] = None
) -> bytes:
    """One unfragmented frame; ``mask_word`` set = client-to-server."""
    header = bytearray([0x80 | (opcode & 0x0F)])
    masked = 0x80 if mask_word is not None else 0x00
    length = len(payload)
    if length < 126:
        header.append(masked | length)
    elif length < 1 << 16:
        header.append(masked | 126)
        header += struct.pack(">H", length)
    else:
        header.append(masked | 127)
        header += struct.pack(">Q", length)
    if mask_word is None:
        return bytes(header) + payload
    mask = struct.pack(">I", mask_word & 0xFFFFFFFF)
    header += mask
    body = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return bytes(header) + body


async def read_frame(
    reader: asyncio.StreamReader,
) -> Tuple[int, bytes]:
    """Read one frame; returns ``(opcode, unmasked payload)``.

    Raises:
        WsError: fragmented/oversized frames or a torn stream.
    """
    try:
        head = await reader.readexactly(2)
    except (asyncio.IncompleteReadError, ConnectionError) as error:
        raise WsError(f"websocket stream closed mid-frame: {error}")
    fin = head[0] & 0x80
    opcode = head[0] & 0x0F
    if not fin or opcode == 0x0:
        raise WsError("fragmented websocket frames are not supported")
    masked = head[1] & 0x80
    length = head[1] & 0x7F
    try:
        if length == 126:
            (length,) = struct.unpack(">H", await reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await reader.readexactly(8))
        if length > MAX_FRAME:
            raise WsError(f"websocket frame of {length} bytes exceeds bound")
        mask = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionError) as error:
        raise WsError(f"websocket stream closed mid-frame: {error}")
    if masked:
        payload = bytes(b ^ mask[i % 4] for i, b in enumerate(payload))
    return opcode, payload


async def send_frame(
    writer: asyncio.StreamWriter,
    opcode: int,
    payload: bytes,
    mask_word: Optional[int] = None,
) -> None:
    writer.write(encode_frame(opcode, payload, mask_word))
    await writer.drain()


class WsClient:
    """Client side of the service's WebSocket endpoints.

    Used by the CLI (``repro service tail``/``ingest``), the smoke tool
    and the tests; connect with :meth:`connect`, then ``send_text`` /
    ``send_binary`` / ``recv``.
    """

    #: Weyl-sequence step for mask words (odd constant → full period).
    _MASK_STEP = 0x9E3779B9

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self._mask_word = 0x5EED5EED

    @classmethod
    async def connect(cls, host: str, port: int, path: str) -> "WsClient":
        reader, writer = await asyncio.open_connection(host, port)
        key = base64.b64encode(b"repro-service-ws").decode("ascii")
        request = (
            f"GET {path} HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        ).encode("ascii")
        writer.write(request)
        await writer.drain()
        status = await reader.readline()
        if b"101" not in status:
            body = await reader.read(512)
            writer.close()
            raise WsError(
                f"websocket upgrade refused: "
                f"{status.decode('latin-1').strip()} {body.decode('latin-1')}"
            )
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        return cls(reader, writer)

    def _next_mask(self) -> int:
        self._mask_word = (self._mask_word + self._MASK_STEP) & 0xFFFFFFFF
        return self._mask_word

    async def send_text(self, text: str) -> None:
        await send_frame(
            self.writer, OP_TEXT, text.encode("utf-8"), self._next_mask()
        )

    async def send_binary(self, data: bytes) -> None:
        await send_frame(self.writer, OP_BINARY, data, self._next_mask())

    async def recv(self) -> Tuple[int, bytes]:
        """Next data frame (pings are answered transparently)."""
        while True:
            opcode, payload = await read_frame(self.reader)
            if opcode == OP_PING:
                await send_frame(
                    self.writer, OP_PONG, payload, self._next_mask()
                )
                continue
            return opcode, payload

    async def close(self) -> None:
        try:
            await send_frame(self.writer, OP_CLOSE, b"", self._next_mask())
        except (ConnectionError, WsError):
            pass
        self.writer.close()


def parse_upgrade(headers: dict) -> str:
    """Validate an upgrade request's headers; return the client key."""
    if headers.get("upgrade", "").lower() != "websocket":
        raise ValidationError("not a websocket upgrade request")
    key = headers.get("sec-websocket-key", "")
    if not key:
        raise WsError("websocket upgrade without Sec-WebSocket-Key")
    return key
