"""The service's HTTP/1.1 + WebSocket front end (stdlib asyncio only).

One request per connection (``Connection: close``), JSON bodies, and two
WebSocket upgrades — deliberately small, because the robustness story
lives in :mod:`repro.service.service`, not in transport cleverness.

Routes:

========  =============================  =====================================
Method    Path                           Meaning
========  =============================  =====================================
GET       ``/healthz``                   liveness (200 while the process runs)
GET       ``/readyz``                    readiness (503 off the ACCEPT rung)
GET       ``/metrics``                   Prometheus text exposition
GET       ``/status``                    full service status JSON
POST      ``/sessions``                  submit a session (JSON request body)
GET       ``/sessions``                  list session views
GET       ``/sessions/{id}``             one session view
GET       ``/sessions/{id}/metrics``     per-session Prometheus exposition
GET       ``/sessions/{id}/result``      terminal result (409 while running)
POST      ``/sessions/{id}/ingest``      stream a trace body (back-pressured)
GET       ``/sessions/{id}/events``      WebSocket: live telemetry feed
GET       ``/sessions/{id}/ingest-ws``   WebSocket: binary chunk ingest
POST      ``/drain``                     begin graceful drain (SIGTERM twin)
========  =============================  =====================================

Error mapping: validation → 400, unknown session → 404, admission
refusals → 429 (budget) or 503 (draining/shedding), deadline refusals →
408, not-yet-terminal result → 409.  Every error body is the structured
``to_dict`` of the underlying exception, so clients branch on
``reason``, never on prose.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.common.errors import ReproError, ValidationError
from repro.service.ingest import chunk_from_bytes
from repro.service.metrics import service_exposition
from repro.service.service import EmulationService
from repro.service.spec import AdmissionError, DeadlineError, SessionRequest
from repro.service.ws import (
    OP_BINARY,
    OP_CLOSE,
    OP_TEXT,
    WsError,
    handshake_response,
    parse_upgrade,
    read_frame,
    send_frame,
)

#: Read streamed HTTP ingest bodies in slices this large (multiple of 8).
_INGEST_SLICE = 64 * 1024

#: Bound on header block and JSON body sizes.
_MAX_HEADER = 64 * 1024
_MAX_BODY = 16 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ServiceServer:
    """Serve one :class:`EmulationService` over TCP."""

    def __init__(
        self,
        service: EmulationService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.drain_requested = asyncio.Event()

    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop(drain=drain)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, headers = await self._read_head(reader)
        except (ReproError, ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        try:
            if headers.get("upgrade", "").lower() == "websocket":
                await self._handle_ws(reader, writer, method, path, headers)
                return
            status, body, content_type = await self._route(
                reader, method, path, headers
            )
        except (asyncio.IncompleteReadError, ConnectionError):
            # The client vanished mid-request: there is no one left to
            # answer.  Ingest handlers have already aborted their stream
            # (see _http_ingest) so nothing is left hanging.
            writer.close()
            return
        except ValidationError as error:
            status, body, content_type = self._error_payload(400, error)
        except AdmissionError as error:
            code = 503 if error.reason in ("draining", "shedding") else 429
            status, body, content_type = self._error_payload(code, error)
        except DeadlineError as error:
            status, body, content_type = self._error_payload(408, error)
        except ReproError as error:
            status, body, content_type = self._error_payload(500, error)
        try:
            await self._respond(writer, status, body, content_type)
        except ConnectionError:
            pass
        writer.close()

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 3:
            raise ValidationError(f"malformed request line {request_line!r}")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER:
                raise ValidationError("header block exceeds bound")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise ValidationError(
                f"request body of {length} bytes exceeds bound"
            )
        return await reader.readexactly(length) if length else b""

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    def _json(payload: dict, status: int = 200) -> Tuple[int, bytes, str]:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return status, body, "application/json"

    @staticmethod
    def _error_payload(
        status: int, error: ReproError
    ) -> Tuple[int, bytes, str]:
        to_dict = getattr(error, "to_dict", None)
        detail = to_dict() if to_dict is not None else {
            "error": type(error).__name__, "message": str(error),
        }
        body = json.dumps({"error": detail}, sort_keys=True).encode("utf-8")
        return status, body, "application/json"

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    async def _route(
        self,
        reader: asyncio.StreamReader,
        method: str,
        path: str,
        headers: Dict[str, str],
    ) -> Tuple[int, bytes, str]:
        service = self.service
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            return self._json({"ok": True, "state": service.state.value})
        if method == "GET" and path == "/readyz":
            status = service.status()
            return self._json(status, 200 if status["ready"] else 503)
        if method == "GET" and path == "/metrics":
            page = service_exposition(
                service.status(),
                service.ingest_snapshot(),
                histograms=list(service.histograms.values()),
            )
            return 200, page.encode("utf-8"), "text/plain; version=0.0.4"
        if method == "GET" and path == "/status":
            return self._json(service.status())
        if method == "POST" and path == "/drain":
            self.drain_requested.set()
            return self._json({"ok": True, "state": "drain"}, 202)
        if path == "/sessions":
            if method == "POST":
                body = await self._read_body(reader, headers)
                request = SessionRequest.from_dict(_parse_json(body))
                session = service.submit(request)
                return self._json(
                    {"session": session.id, "state": session.state.value},
                    201,
                )
            if method == "GET":
                views = [
                    service.sessions[key].view().to_dict()
                    for key in sorted(service.sessions)
                ]
                return self._json({"sessions": views})
            return self._json({"error": "method not allowed"}, 405)
        if path.startswith("/sessions/"):
            return await self._route_session(reader, method, path, headers)
        return self._json({"error": f"no route {method} {path}"}, 404)

    async def _route_session(
        self,
        reader: asyncio.StreamReader,
        method: str,
        path: str,
        headers: Dict[str, str],
    ) -> Tuple[int, bytes, str]:
        service = self.service
        parts = path.strip("/").split("/")
        session_id = parts[1]
        tail = parts[2] if len(parts) > 2 else ""
        if method == "GET" and tail == "metrics":
            if session_id in service.sessions:
                page = service.session_metrics_page(session_id)
                return 200, page.encode("utf-8"), "text/plain; version=0.0.4"
            # A terminal session evicted from memory is a *different* 404
            # from a name the service never saw: the scraper should stop
            # polling the former and fix its config for the latter.
            reason = (
                "evicted" if session_id in service.history
                else "unknown-session"
            )
            return self._json(
                {
                    "error": {
                        "type": "metrics",
                        "error": f"no metrics for session {session_id} "
                                 f"({reason})",
                        "reason": reason,
                        "session": session_id,
                    }
                },
                404,
            )
        if session_id not in service.sessions:
            return self._json({"error": f"unknown session {session_id}"}, 404)
        session = service.get_session(session_id)
        if method == "GET" and not tail:
            return self._json(session.view().to_dict())
        if method == "GET" and tail == "result":
            if not session.state.terminal:
                return self._json(
                    {"error": "session not terminal",
                     "state": session.state.value},
                    409,
                )
            view = session.view().to_dict()
            if session.result is not None:
                view["result"] = session.result.to_dict()
            return self._json(view)
        if method == "POST" and tail == "ingest":
            staged = await self._http_ingest(reader, session_id, headers)
            return self._json({"session": session_id, "records": staged}, 202)
        return self._json({"error": f"no route {method} {path}"}, 404)

    async def _http_ingest(
        self,
        reader: asyncio.StreamReader,
        session_id: str,
        headers: Dict[str, str],
    ) -> int:
        """Stream an HTTP body into the session's bounded ingest buffer.

        The body is read in bounded slices and each ``ingest_chunk``
        await honours the buffer bound — while the staging side is slow
        the socket is simply not read, which is the back-pressure
        contract end to end.

        A body torn mid-stream (client disconnect before the promised
        Content-Length arrived) aborts the session's ingest before the
        error propagates: the stream cannot be reconstructed, so the
        session must expire with a structured reason, never hang QUEUED.
        """
        length = int(headers.get("content-length", "0") or "0")
        if length % 8 != 0:
            raise ValidationError(
                f"ingest body of {length} bytes is not whole bus words"
            )
        remaining = length
        try:
            while remaining > 0:
                piece = await reader.readexactly(
                    min(_INGEST_SLICE, remaining)
                )
                remaining -= len(piece)
                await self.service.ingest_chunk(
                    session_id, chunk_from_bytes(piece)
                )
        except (asyncio.IncompleteReadError, ConnectionError):
            await self.service.ingest_abort(session_id)
            raise
        return await self.service.ingest_end(session_id)

    # ------------------------------------------------------------------ #
    # WebSocket endpoints
    # ------------------------------------------------------------------ #

    async def _handle_ws(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        headers: Dict[str, str],
    ) -> None:
        try:
            key = parse_upgrade(headers)
            parts = path.strip("/").split("/")
            if len(parts) != 3 or parts[0] != "sessions":
                raise ValidationError(f"no websocket route {path}")
            session_id, endpoint = parts[1], parts[2]
            self.service.get_session(session_id)
        except ReproError as error:
            status, body, content_type = self._error_payload(404, error)
            try:
                await self._respond(writer, status, body, content_type)
            except ConnectionError:
                pass
            writer.close()
            return
        writer.write(handshake_response(key))
        await writer.drain()
        try:
            if endpoint == "events":
                await self._ws_events(reader, writer, session_id)
            elif endpoint == "ingest-ws":
                await self._ws_ingest(reader, writer, session_id)
            else:
                await send_frame(writer, OP_CLOSE, b"")
        except (WsError, ConnectionError):
            pass
        finally:
            writer.close()

    async def _ws_events(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        session_id: str,
    ) -> None:
        """Fan one session's event feed out to this socket as JSON text."""
        queue = self.service.subscribe(session_id)
        try:
            while True:
                record = await queue.get()
                if record is None:
                    await send_frame(writer, OP_CLOSE, b"")
                    return
                payload = json.dumps(record, sort_keys=True).encode("utf-8")
                await send_frame(writer, OP_TEXT, payload)
        finally:
            self.service.unsubscribe(session_id, queue)

    async def _ws_ingest(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        session_id: str,
    ) -> None:
        """Binary frames are trace chunks; the text frame ``end`` stages.

        ``ingest_chunk`` awaiting on a full buffer stops this loop from
        reading further frames — TCP back-pressure reaches the client.

        A stream torn *without* an OP_CLOSE frame (TCP reset, EOF
        mid-frame) surfaces as ``WsError``/``ConnectionError`` from the
        frame loop; that must abort the session's ingest just like a
        polite close, or the session would hang QUEUED forever while
        holding its tenant queue-quota slot.
        """
        try:
            while True:
                opcode, payload = await read_frame(reader)
                if opcode == OP_BINARY:
                    await self.service.ingest_chunk(
                        session_id, chunk_from_bytes(payload)
                    )
                    continue
                if opcode == OP_TEXT and payload == b"end":
                    staged = await self.service.ingest_end(session_id)
                    await send_frame(
                        writer,
                        OP_TEXT,
                        json.dumps(
                            {"staged": staged}, sort_keys=True
                        ).encode("utf-8"),
                    )
                    await send_frame(writer, OP_CLOSE, b"")
                    return
                if opcode == OP_CLOSE:
                    await self.service.ingest_abort(session_id)
                    return
                raise WsError(
                    f"unexpected ingest frame opcode {opcode:#x}"
                )
        except (WsError, ConnectionError, asyncio.IncompleteReadError):
            await self.service.ingest_abort(session_id)
            raise


def _parse_json(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ValidationError(f"request body is not valid JSON: {error}")
    if not isinstance(payload, dict):
        raise ValidationError("request body must be a JSON object")
    return payload


async def serve_forever(server: ServiceServer) -> None:
    """Run until SIGTERM/SIGINT or ``POST /drain``, then drain cleanly.

    The SIGTERM path is the graceful-shutdown contract: stop admitting,
    suspend in-flight runs at their next committed segment, journal the
    manifest, exit — a restarted server on the same root re-adopts and
    finishes the suspended work bit-identically.
    """
    import signal

    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                signum, server.drain_requested.set
            )
        except (NotImplementedError, RuntimeError):
            pass
    await server.drain_requested.wait()
    await server.stop(drain=True)
