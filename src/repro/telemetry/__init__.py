"""Observability for the emulated board: sampling, tracing, export.

The paper's core promise is *watching a live machine*: 400+ 40-bit
counters read non-intrusively over 30-hour runs, plus firmware that
histograms memory traffic in real time.  This package is that measurement
layer for the reproduction:

* :mod:`repro.telemetry.sink` — pluggable record sinks (null / in-memory
  / JSONL), with wall-clock fields segregated so deterministic byte-level
  comparison of series is possible.
* :mod:`repro.telemetry.sampler` — :class:`CounterSampler`, periodic
  counter-bank snapshots on a cycle or transaction cadence with
  wrap-aware 40-bit delta encoding; checkpointable mid-series.
* :mod:`repro.telemetry.spans` — :class:`RunTrace` nested spans with
  cycle-domain timestamps plus wall-clock durations.
* :mod:`repro.telemetry.prom` — Prometheus text-exposition export (and a
  parser for CI round-trip checks).
* :mod:`repro.telemetry.series` — loaded-series analysis and the text
  dashboard behind the console's ``watch`` command.

Attach a sampler with :meth:`repro.memories.board.MemoriesBoard.attach_telemetry`
(or ``SystemBus.attach_telemetry`` for bus-side utilization series); with
nothing attached the emulation pays a single pointer test per tenure.
"""

from repro.telemetry.histogram import (
    DEFAULT_CYCLE_BOUNDS,
    DEFAULT_WALL_BOUNDS,
    Histogram,
    split_histogram_states,
)
from repro.telemetry.prom import (
    histogram_exposition,
    parse_exposition,
    render_exposition,
    series_exposition,
)
from repro.telemetry.sampler import (
    DEFAULT_EVERY_TRANSACTIONS,
    CounterSampler,
    wrap_aware_delta,
)
from repro.telemetry.series import TelemetrySeries
from repro.telemetry.sink import (
    NULL_SINK,
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
    TelemetrySink,
    encode_record,
    load_jsonl,
    strip_wall,
)
from repro.telemetry.spans import RunTrace, derive_trace_id

__all__ = [
    "CounterSampler",
    "DEFAULT_CYCLE_BOUNDS",
    "DEFAULT_EVERY_TRANSACTIONS",
    "DEFAULT_WALL_BOUNDS",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "NULL_SINK",
    "NullSink",
    "RunTrace",
    "TeeSink",
    "TelemetrySeries",
    "TelemetrySink",
    "derive_trace_id",
    "encode_record",
    "histogram_exposition",
    "load_jsonl",
    "parse_exposition",
    "render_exposition",
    "series_exposition",
    "split_histogram_states",
    "strip_wall",
    "wrap_aware_delta",
]
