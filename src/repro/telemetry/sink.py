"""Telemetry sinks: where sampled records and span events go.

A sink receives one plain-``dict`` record per event.  Records are designed
to be serialisation-stable: every deterministic field (cycle-domain
timestamps, counter deltas, sequence numbers) lives at the top level, while
host-dependent wall-clock measurements are segregated under the single
reserved ``"wall"`` key, so a byte-level determinism check can strip them
with :func:`strip_wall` and compare the rest exactly.

Three backends cover the use cases of Section 3's 30-hour monitoring runs:

* :data:`NULL_SINK` — discards everything; the board's dispatch path only
  pays a single ``is not None`` test when no sampler is attached at all,
  and a sampler pointed at the null sink performs no serialisation.
* :class:`MemorySink` — keeps records in a list, for the console's live
  ``watch`` dashboard and for tests.
* :class:`JsonlSink` — appends one canonical JSON line per record, the
  on-disk time-series format (``telemetry export`` re-reads it).
"""

from __future__ import annotations

import io
import json
import threading
from pathlib import Path
from typing import Iterable, List, Optional, Protocol, Union

from repro.common.errors import TraceFormatError

#: Reserved record key holding host-dependent wall-clock measurements.
WALL_KEY = "wall"


class TelemetrySink(Protocol):
    """Anything that can absorb telemetry records."""

    def emit(self, record: dict) -> None:
        """Accept one record (a sample or a span event)."""
        ...

    def close(self) -> None:
        """Flush and release any underlying resource."""
        ...


class NullSink:
    """A sink that drops every record.

    The disabled-telemetry fast path: :meth:`emit` is a bare ``pass``, so
    a sampler wired to it never serialises anything, and replay statistics
    are bit-identical to an uninstrumented run (the samplers only *read*
    counters, never mutate them).
    """

    __slots__ = ()

    def emit(self, record: dict) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared null sink instance (the class is stateless).
NULL_SINK = NullSink()


class MemorySink:
    """Keeps every record in memory, newest last.

    Backs the console's ``watch`` dashboard and the in-process analysis
    helpers (:class:`repro.telemetry.series.TelemetrySeries`).
    """

    def __init__(self) -> None:
        self.records: List[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)


def strip_wall(record: dict) -> dict:
    """The record without its host-dependent wall-clock fields."""
    if WALL_KEY not in record:
        return record
    return {key: value for key, value in record.items() if key != WALL_KEY}


def encode_record(record: dict, deterministic: bool = False) -> str:
    """Canonical single-line JSON encoding of one record.

    Keys are sorted and separators fixed, so the same record always
    produces the same bytes; ``deterministic=True`` additionally drops the
    ``"wall"`` sub-dict (see module docstring).
    """
    if deterministic:
        record = strip_wall(record)
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class JsonlSink:
    """Writes one canonical JSON line per record.

    Safe for concurrent same-process writers: the line is serialised
    first and written with a single locked ``write()`` call, so several
    sessions teeing telemetry into one shared service log can never
    interleave torn lines.  (Distinct *processes* must still use
    distinct files — the lock is per sink object.)

    Args:
        target: a path (opened for writing) or an existing text handle
            (left open on :meth:`close` — the caller owns it).
        deterministic: strip wall-clock fields from every record, making
            the file byte-identical across same-seed runs.
    """

    def __init__(
        self,
        target: Union[str, Path, io.TextIOBase],
        deterministic: bool = False,
    ) -> None:
        self.deterministic = deterministic
        self._lock = threading.Lock()
        if isinstance(target, (str, Path)):
            self._handle: io.TextIOBase = open(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def emit(self, record: dict) -> None:
        line = encode_record(record, self.deterministic) + "\n"
        with self._lock:
            self._handle.write(line)

    def close(self) -> None:
        with self._lock:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()


class TeeSink:
    """Fans every record out to several sinks, in order.

    The supervisor's worker shards use this to feed one sampler both a
    durable JSONL series and the heartbeat channel back to the watchdog —
    telemetry stays a single attachment point on the board.
    """

    def __init__(self, *sinks: TelemetrySink) -> None:
        self.sinks = list(sinks)

    def emit(self, record: dict) -> None:
        for sink in self.sinks:
            sink.emit(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def load_jsonl(source: Union[str, Path, Iterable[str]]) -> List[dict]:
    """Read a JSONL time series back into a list of records.

    Accepts a path or any iterable of lines; blank lines are skipped.

    Raises:
        TraceFormatError: when a line is not a JSON object.
    """
    handle: Optional[io.TextIOBase] = None
    if isinstance(source, (str, Path)):
        handle = open(source)
        lines: Iterable[str] = handle
    else:
        lines = source
    records: List[dict] = []
    try:
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"telemetry line {number} is not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise TraceFormatError(
                    f"telemetry line {number} is not a JSON object"
                )
            records.append(record)
    finally:
        if handle is not None:
            handle.close()
    return records
