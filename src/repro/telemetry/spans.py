"""Span-based run tracing: where does replay wall-clock time go?

A :class:`RunTrace` records nested, named spans — ``capture``, ``replay``,
per-phase sub-spans — each with *two* clocks: the deterministic
cycle-domain timestamp of the component under test (so span boundaries
are reproducible from a seed) and the host wall-clock duration (so the
reproduction itself can be profiled, the way Tables 3/4 profile the
simulators the paper compares against).  Wall-clock fields live under the
reserved ``"wall"`` record key and are stripped by determinism checks
(see :mod:`repro.telemetry.sink`).

Span records are emitted when a span *closes*, so children precede their
parents in the stream; ``path`` ("replay/dispatch") and ``depth`` make
the hierarchy trivial to rebuild.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.telemetry.sink import NULL_SINK, TelemetrySink

#: Current span-record schema revision.
SPAN_VERSION = 1


class RunTrace:
    """Collects nested timing spans into a telemetry sink.

    Args:
        sink: where closed-span records go.
        clock: optional zero-argument callable returning the current
            cycle-domain timestamp (e.g. ``lambda: board.now_cycle``);
            without one, cycle fields are 0.0 and only wall durations are
            meaningful.
        label: tags every record, like the sampler's label.
    """

    def __init__(
        self,
        sink: TelemetrySink = NULL_SINK,
        clock: Optional[Callable[[], float]] = None,
        label: str = "run",
    ) -> None:
        self.sink = sink
        self.label = label
        self._clock = clock
        self._stack: List[str] = []
        self._seq = 0

    def bind_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Attach (or detach) the cycle-domain clock after construction."""
        self._clock = clock

    def _now_cycle(self) -> float:
        return float(self._clock()) if self._clock is not None else 0.0

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        """Time one named phase; extra keyword attributes ride along.

        Attribute values must be JSON-serialisable and deterministic
        (record counts, configuration names — not timings; wall clock is
        recorded separately).
        """
        self._stack.append(name)
        path = "/".join(self._stack)
        depth = len(self._stack) - 1
        begin_cycle = self._now_cycle()
        begin_wall = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - begin_wall
            end_cycle = self._now_cycle()
            self._stack.pop()
            record = {
                "type": "span",
                "v": SPAN_VERSION,
                "label": self.label,
                "seq": self._seq,
                "name": name,
                "path": path,
                "depth": depth,
                "begin_cycle": begin_cycle,
                "end_cycle": end_cycle,
                "wall": {"seconds": elapsed},
            }
            if attrs:
                record["attrs"] = dict(attrs)
            self._seq += 1
            self.sink.emit(record)

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)
