"""Span-based run tracing: where does replay wall-clock time go?

A :class:`RunTrace` records nested, named spans — ``capture``, ``replay``,
per-phase sub-spans — each with *two* clocks: the deterministic
cycle-domain timestamp of the component under test (so span boundaries
are reproducible from a seed) and the host wall-clock duration (so the
reproduction itself can be profiled, the way Tables 3/4 profile the
simulators the paper compares against).  Wall-clock fields live under the
reserved ``"wall"`` record key and are stripped by determinism checks
(see :mod:`repro.telemetry.sink`).

Span records are emitted when a span *closes*, so children precede their
parents in the stream; ``path`` ("replay/dispatch") and ``depth`` make
the hierarchy trivial to rebuild.

Traces can also *propagate across processes*: construct the ``RunTrace``
with a ``trace_id`` (see :func:`derive_trace_id`) and every record gains
``trace_id`` / ``span_id`` / ``parent_id`` fields.  Span IDs are assigned
deterministically at *open* time (``<prefix>:<n>``), so a parent process
can read :attr:`RunTrace.current_span_id` and hand it to a child process,
which sets it as its own ``parent_id`` — stitching one causally-linked
span tree across the service, the supervisor, and its workers.  IDs are
derived by counting, never by reading entropy or the clock, so the tree
is reproducible from the run inputs.
"""

from __future__ import annotations

import hashlib
import time
from contextlib import contextmanager
from typing import Callable, Iterator, List, Optional

from repro.telemetry.sink import NULL_SINK, TelemetrySink

#: Current span-record schema revision.
SPAN_VERSION = 1


def derive_trace_id(*parts: object) -> str:
    """Deterministic 128-bit trace ID from stable identifying parts.

    The same parts always produce the same ID — a resumed run, or a
    service session retried after a crash, rejoins its original trace.
    Callers pass whatever uniquely names the run: the machine
    fingerprint, the seed, and the run-directory name.
    """
    joined = "\x1f".join(str(part) for part in parts)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:32]


class RunTrace:
    """Collects nested timing spans into a telemetry sink.

    Args:
        sink: where closed-span records go.
        clock: optional zero-argument callable returning the current
            cycle-domain timestamp (e.g. ``lambda: board.now_cycle``);
            without one, cycle fields are 0.0 and only wall durations are
            meaningful.
        label: tags every record, like the sampler's label.
        trace_id: optional deterministic trace identity (see
            :func:`derive_trace_id`).  When set, records carry
            ``trace_id`` / ``span_id`` / ``parent_id``.
        parent_id: span ID of the enclosing span in *another* process;
            becomes the ``parent_id`` of this trace's top-level spans.
        span_prefix: prefix for generated span IDs (defaults to
            ``label``).  Must be unique per trace participant — e.g.
            ``worker-e3-1`` for the second worker of journal epoch 3 —
            so IDs never collide across restarts.
    """

    def __init__(
        self,
        sink: TelemetrySink = NULL_SINK,
        clock: Optional[Callable[[], float]] = None,
        label: str = "run",
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        span_prefix: Optional[str] = None,
    ) -> None:
        self.sink = sink
        self.label = label
        self.trace_id = trace_id
        self.parent_id = parent_id
        self._clock = clock
        self._span_prefix = span_prefix if span_prefix is not None else label
        self._stack: List[str] = []
        self._id_stack: List[str] = []
        self._seq = 0
        self._opened = 0

    def bind_clock(self, clock: Optional[Callable[[], float]]) -> None:
        """Attach (or detach) the cycle-domain clock after construction."""
        self._clock = clock

    @property
    def current_span_id(self) -> Optional[str]:
        """ID of the innermost open span (or the external parent).

        This is what a parent hands to a child process so the child's
        spans link into the tree.
        """
        if self._id_stack:
            return self._id_stack[-1]
        return self.parent_id

    def _now_cycle(self) -> float:
        return float(self._clock()) if self._clock is not None else 0.0

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        """Time one named phase; extra keyword attributes ride along.

        Attribute values must be JSON-serialisable and deterministic
        (record counts, configuration names — not timings; wall clock is
        recorded separately).
        """
        self._stack.append(name)
        path = "/".join(self._stack)
        depth = len(self._stack) - 1
        span_id = f"{self._span_prefix}:{self._opened}"
        self._opened += 1
        parent_id = self._id_stack[-1] if self._id_stack else self.parent_id
        self._id_stack.append(span_id)
        begin_cycle = self._now_cycle()
        begin_wall = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - begin_wall
            end_cycle = self._now_cycle()
            self._stack.pop()
            self._id_stack.pop()
            record = {
                "type": "span",
                "v": SPAN_VERSION,
                "label": self.label,
                "seq": self._seq,
                "name": name,
                "path": path,
                "depth": depth,
                "begin_cycle": begin_cycle,
                "end_cycle": end_cycle,
                "wall": {"seconds": elapsed},
            }
            if self.trace_id is not None:
                record["trace_id"] = self.trace_id
                record["span_id"] = span_id
                record["parent_id"] = parent_id
            if attrs:
                record["attrs"] = dict(attrs)
            self._seq += 1
            self.sink.emit(record)

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)
