"""Prometheus text-exposition export of telemetry series.

Long monitoring campaigns (the paper's 30-hour runs) want scraping, not
log-grepping.  :func:`render_exposition` turns accumulated counter totals
into the Prometheus `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_, and
:func:`series_exposition` does so straight from a recorded time series —
summing the wrap-aware deltas, so exported totals are the *true* event
counts even after the 40-bit hardware readouts have aliased.

:func:`parse_exposition` is a minimal reader of the same format, used by
the CI smoke job to assert the exporter's output round-trips.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.common.errors import TraceFormatError, ValidationError

#: Metric family names.
COUNTER_METRIC = "memories_counter_total"
CYCLE_METRIC = "memories_cycle"
TRANSACTIONS_METRIC = "memories_transactions_total"
SAMPLES_METRIC = "memories_samples_total"
WINDOW_METRIC = "memories_window"
WRAPPED_METRIC = "memories_wrapped_counters"

#: Histogram metric families, one per measurement domain (the cycle /
#: wall segregation of :mod:`repro.telemetry.histogram`).
LATENCY_WALL_METRIC = "memories_latency_seconds"
LATENCY_CYCLE_METRIC = "memories_latency_cycles"

_LATENCY_METRICS = {
    "wall": (
        LATENCY_WALL_METRIC,
        "Host wall-clock latency at run choke points (seconds).",
    ),
    "cycle": (
        LATENCY_CYCLE_METRIC,
        "Emulated cycle-domain latency at run choke points "
        "(deterministic).",
    ),
}

#: A parsed sample: (metric name, sorted label pairs) -> value.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _sample_line(metric: str, labels: Mapping[str, str], value: float) -> str:
    rendered = ",".join(
        f'{name}="{_escape_label(str(labels[name]))}"' for name in sorted(labels)
    )
    return f"{metric}{{{rendered}}} {_format_value(value)}"


def render_exposition(
    totals: Mapping[str, int],
    label: str = "board",
    cycle: Optional[float] = None,
    transactions: Optional[int] = None,
    samples: Optional[int] = None,
    window: Optional[Mapping[str, float]] = None,
    wrapped: Optional[Iterable[str]] = None,
) -> str:
    """Render one component's accumulated totals as an exposition page.

    Args:
        totals: true (un-aliased) cumulative counter values.
        label: the sampler label, attached to every sample.
        cycle / transactions / samples: clock position, transactions
            observed and samples emitted, when known.
        window: last window's derived rates (miss ratios, utilization).
        wrapped: names of 40-bit counters whose raw readouts have wrapped.
    """
    lines: List[str] = [
        f"# HELP {COUNTER_METRIC} MemorIES event counters "
        "(wrap-corrected cumulative totals).",
        f"# TYPE {COUNTER_METRIC} counter",
    ]
    for name in sorted(totals):
        lines.append(
            _sample_line(
                COUNTER_METRIC, {"label": label, "counter": name}, totals[name]
            )
        )
    if cycle is not None:
        lines.append(f"# TYPE {CYCLE_METRIC} gauge")
        lines.append(_sample_line(CYCLE_METRIC, {"label": label}, float(cycle)))
    if transactions is not None:
        lines.append(f"# TYPE {TRANSACTIONS_METRIC} counter")
        lines.append(
            _sample_line(TRANSACTIONS_METRIC, {"label": label}, transactions)
        )
    if samples is not None:
        lines.append(f"# TYPE {SAMPLES_METRIC} counter")
        lines.append(_sample_line(SAMPLES_METRIC, {"label": label}, samples))
    if window:
        lines.append(f"# TYPE {WINDOW_METRIC} gauge")
        for name in sorted(window):
            lines.append(
                _sample_line(
                    WINDOW_METRIC, {"label": label, "metric": name}, window[name]
                )
            )
    if wrapped is not None:
        names = sorted(wrapped)
        lines.append(f"# TYPE {WRAPPED_METRIC} gauge")
        lines.append(_sample_line(WRAPPED_METRIC, {"label": label}, len(names)))
    return "\n".join(lines) + "\n"


def histogram_exposition(histograms: Iterable, label: str = "board") -> str:
    """Render histograms as Prometheus ``_bucket``/``_sum``/``_count``.

    Histograms are grouped by domain into the two latency families and
    sorted by name, so the page is byte-identical for identical
    histogram states.  An empty iterable renders an empty page — no
    dangling headers.

    Args:
        histograms: :class:`repro.telemetry.histogram.Histogram` objects.
        label: attached to every sample, like the sampler label.
    """
    by_domain: Dict[str, list] = {}
    for hist in histograms:
        by_domain.setdefault(hist.domain, []).append(hist)
    lines: List[str] = []
    for domain in sorted(by_domain):
        metric, help_text = _LATENCY_METRICS[domain]
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} histogram")
        for hist in sorted(by_domain[domain], key=lambda h: h.name):
            base = {"label": label, "stage": hist.name}
            cumulative = hist.cumulative()
            for bound, count in zip(hist.bounds, cumulative):
                labels = dict(base)
                labels["le"] = _format_value(bound)
                lines.append(_sample_line(f"{metric}_bucket", labels, count))
            labels = dict(base)
            labels["le"] = "+Inf"
            lines.append(_sample_line(f"{metric}_bucket", labels, hist.count))
            lines.append(_sample_line(f"{metric}_sum", base, hist.sum))
            lines.append(_sample_line(f"{metric}_count", base, hist.count))
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def series_exposition(records: Iterable[dict]) -> str:
    """Exposition page for a recorded series (all labels it contains).

    Counter totals are reconstructed by summing each label's wrap-aware
    deltas; gauges take the last sample's values.
    """
    per_label: Dict[str, dict] = {}
    for record in records:
        if record.get("type") not in ("sample", "final"):
            continue
        label = str(record.get("label", "board"))
        state = per_label.setdefault(
            label,
            {
                "totals": {},
                "cycle": None,
                "transactions": None,
                "samples": 0,
                "window": {},
                "wrapped": [],
            },
        )
        for name, delta in record.get("deltas", {}).items():
            state["totals"][name] = state["totals"].get(name, 0) + int(delta)
        state["cycle"] = record.get("cycle", state["cycle"])
        state["transactions"] = record.get("transactions", state["transactions"])
        state["samples"] += 1
        state["window"] = record.get("window", state["window"])
        state["wrapped"] = record.get("wrapped", state["wrapped"])
    pages = [
        render_exposition(
            state["totals"],
            label=label,
            cycle=state["cycle"],
            transactions=state["transactions"],
            samples=state["samples"],
            window=state["window"],
            wrapped=state["wrapped"],
        )
        for label, state in sorted(per_label.items())
    ]
    return "".join(pages)


def parse_exposition(text: str) -> Dict[MetricKey, float]:
    """Parse exposition text back into ``{(metric, labels): value}``.

    Minimal on purpose (no exemplars, no timestamps) — enough to validate
    our own exporter's output and to let tests assert on scraped values.

    Raises:
        TraceFormatError: on a malformed sample line.
    """
    parsed: Dict[MetricKey, float] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            name_part, value_part = line.rsplit(" ", 1)
            value = float(value_part)
            if "{" in name_part:
                metric, label_part = name_part.split("{", 1)
                if not label_part.endswith("}"):
                    raise ValidationError("unterminated label set")
                labels = _parse_labels(label_part[:-1])
            else:
                metric, labels = name_part, []
            if not metric.replace("_", "").replace(":", "").isalnum():
                raise ValidationError(f"bad metric name {metric!r}")
        except ValueError as exc:
            raise TraceFormatError(
                f"exposition line {number} is malformed: {raw!r} ({exc})"
            ) from exc
        parsed[(metric, tuple(labels))] = value
    return parsed


def _parse_labels(body: str) -> List[Tuple[str, str]]:
    """Parse ``name="value",...`` with backslash escapes."""
    labels: List[Tuple[str, str]] = []
    index = 0
    while index < len(body):
        equals = body.index("=", index)
        name = body[index:equals].strip().lstrip(",").strip()
        if body[equals + 1] != '"':
            raise ValidationError(f"label {name!r} value is not quoted")
        value_chars: List[str] = []
        cursor = equals + 2
        while cursor < len(body):
            char = body[cursor]
            if char == "\\" and cursor + 1 < len(body):
                escaped = body[cursor + 1]
                value_chars.append({"n": "\n"}.get(escaped, escaped))
                cursor += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            cursor += 1
        else:
            raise ValidationError(f"label {name!r} value is unterminated")
        labels.append((name, "".join(value_chars)))
        index = cursor + 1
    return sorted(labels)
