"""Periodic counter sampling with wrap-aware delta encoding.

The real board's 400+ counters are 40 bits wide: long enough for ">30
hours" at 20% bus utilization (Section 3), but an operator polling less
often than the wrap horizon silently reads aliased values.
:class:`CounterSampler` solves this the way periodic stats extraction
does on hardware: snapshot every counter bank every N emulated cycles (or
every M observed transactions) and store the *delta* since the previous
snapshot, computed modulo 2^40 via :func:`wrap_aware_delta` — so as long
as no single sampling window overflows a whole counter period, the summed
series reconstructs the true un-aliased totals even though every raw
readout wraps.

The sampler is a pure observer: it reads :meth:`statistics` snapshots and
never mutates emulation state, which is why an instrumented replay is
bit-identical to a bare one.  Its own cursor (previous snapshot, sequence
number, cadence position) participates in board checkpoints, so a
restored run continues its time series exactly where the interrupted one
stopped.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol

from repro.common.errors import ConfigurationError
from repro.memories.counters import COUNTER_BITS
from repro.telemetry.sink import NULL_SINK, TelemetrySink

#: Default sampling cadence in observed transactions when neither cadence
#: is given explicitly.
DEFAULT_EVERY_TRANSACTIONS = 1024

#: Current sample-record schema revision.
SAMPLE_VERSION = 1


def wrap_aware_delta(previous: int, current: int, bits: int = COUNTER_BITS) -> int:
    """Events between two wrapped readouts of one ``bits``-wide counter.

    Hardware counters only count up, so a readout smaller than the
    previous one means the counter wrapped (exactly once, provided the
    sampling window is shorter than a full counter period — the whole
    point of sampling on a cadence).
    """
    if current >= previous:
        return current - previous
    return current + (1 << bits) - previous


class SampleSource(Protocol):
    """What the sampler needs from an instrumented component."""

    @property
    def now_cycle(self) -> float:
        """Current position on the component's cycle-domain clock."""
        ...

    def statistics(self) -> dict:
        """Key-sorted merged counter snapshot (wrapped 40-bit values)."""
        ...


class CounterSampler:
    """Snapshots a component's counters on a cadence into a sink.

    Args:
        sink: where sample records go (default: the null sink).
        every_transactions: emit a sample every M observed transactions.
        every_cycles: emit a sample every N emulated bus cycles.  Both
            cadences may be active at once; when neither is given the
            default transaction cadence applies.
        label: tags every record (useful when several samplers share one
            sink, e.g. a fault campaign's baseline and faulted boards).

    Raises:
        ConfigurationError: on a non-positive cadence.
    """

    def __init__(
        self,
        sink: TelemetrySink = NULL_SINK,
        every_transactions: Optional[int] = None,
        every_cycles: Optional[float] = None,
        label: str = "board",
    ) -> None:
        if every_transactions is None and every_cycles is None:
            every_transactions = DEFAULT_EVERY_TRANSACTIONS
        if every_transactions is not None and every_transactions <= 0:
            raise ConfigurationError(
                f"every_transactions must be positive, got {every_transactions}"
            )
        if every_cycles is not None and every_cycles <= 0:
            raise ConfigurationError(
                f"every_cycles must be positive, got {every_cycles}"
            )
        self.sink = sink
        self.label = label
        self.every_transactions = every_transactions
        self.every_cycles = every_cycles
        self._prev: Optional[Dict[str, int]] = None
        self._seq = 0
        self._transactions = 0
        self._tx_since = 0
        self._next_cycle: Optional[float] = every_cycles
        # Fast-path countdown: instrumented components decrement
        # ``_countdown`` once per transaction (either inline, the way the
        # board's dispatch loop does, or via :meth:`maybe_sample`) and only
        # call into the sampler when it reaches zero.  ``_issued`` remembers
        # the armed value so elapsed transactions can be recovered exactly
        # (``_issued - _countdown``) at any moment — sampling stays
        # transaction-exact while the per-tenure cost drops to one integer
        # decrement and compare.
        self._issued = 1
        self._countdown = 1

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def maybe_sample(self, source: SampleSource) -> bool:
        """Account one observed transaction; sample when a cadence is due.

        Called by the instrumented component once per transaction, *after*
        the transaction's effects are committed, so window boundaries land
        on exact transaction counts.  Hot loops may inline the countdown
        themselves and call :meth:`on_countdown` at zero instead.
        """
        self._countdown -= 1
        if self._countdown <= 0:
            return self.on_countdown(source)
        return False

    def on_countdown(self, source: SampleSource) -> bool:
        """The countdown hit zero: settle accounts, sample if due, re-arm."""
        self._flush_pending()
        due = (
            self.every_transactions is not None
            and self._tx_since >= self.every_transactions
        )
        if self._next_cycle is not None and source.now_cycle >= self._next_cycle:
            due = True
        if due:
            self._emit(source, "sample")
        self._rearm(source)
        return due

    def _flush_pending(self) -> None:
        """Fold countdown decrements into the exact transaction counts."""
        elapsed = self._issued - self._countdown
        if elapsed > 0:
            self._transactions += elapsed
            self._tx_since += elapsed
        self._issued = self._countdown

    def _rearm(self, source: SampleSource) -> int:
        """Choose how many transactions may pass before the next check.

        Conservative: the countdown reaches zero at (or before) the first
        transaction that can possibly be due.  With a pure transaction
        cadence that is exact; a cycle cadence is converted through the
        source's fixed ``cycles_per_tenure`` when it advertises one (the
        board), else checked every transaction (the bus, whose tenures have
        variable length).
        """
        wait: Optional[int] = None
        if self.every_transactions is not None:
            wait = self.every_transactions - self._tx_since
        if self._next_cycle is not None:
            step = getattr(source, "cycles_per_tenure", None)
            if step:
                remaining = self._next_cycle - source.now_cycle
                cycle_wait = max(1, -int(-remaining // step))
            else:
                cycle_wait = 1
            wait = cycle_wait if wait is None else min(wait, cycle_wait)
        wait = max(1, wait if wait is not None else 1)
        self._issued = wait
        self._countdown = wait
        return wait

    def sample(self, source: SampleSource, kind: str = "sample") -> dict:
        """Emit one sample record now, regardless of cadence position."""
        self._flush_pending()
        record = self._emit(source, kind)
        self._rearm(source)
        return record

    def _emit(self, source: SampleSource, kind: str) -> dict:
        counters = source.statistics()
        deltas = self._deltas(counters)
        record = {
            "type": kind,
            "v": SAMPLE_VERSION,
            "label": self.label,
            "seq": self._seq,
            "cycle": float(source.now_cycle),
            "transactions": self._transactions,
            "deltas": deltas,
            "window": _window_metrics(deltas),
            "wrapped": _wrapped_of(source),
        }
        self._seq += 1
        self._tx_since = 0
        if self._next_cycle is not None:
            now = source.now_cycle
            step = self.every_cycles or 1.0
            while self._next_cycle <= now:
                self._next_cycle += step
        self._prev = {
            name: int(value)
            for name, value in counters.items()
            if isinstance(value, int)
        }
        self.sink.emit(record)
        return record

    def finish(self, source: SampleSource) -> dict:
        """Emit the final (possibly partial) window, tagged ``"final"``."""
        return self.sample(source, kind="final")

    def detach(self) -> None:
        """Checkpoint the cadence cursor on detachment from a source.

        An armed countdown is a *prediction* — ``_rearm`` converted "next
        window boundary" into a transaction count using the source's clock
        position at arm time.  Once the sampler is detached that prediction
        goes stale: the source may keep running uninstrumented, be reset,
        or the sampler may be reattached to a different source, and a
        stale (too-large) countdown would push the first post-reattach
        window past its boundary.  Folding the elapsed transactions in and
        re-arming at 1 makes the first observed transaction after reattach
        re-derive the cadence from the live source — the same contract
        :meth:`load_state_dict` uses after a checkpoint restore.
        """
        self._flush_pending()
        self._issued = 1
        self._countdown = 1

    def _deltas(self, counters: dict) -> Dict[str, int]:
        """Wrap-aware per-counter deltas since the previous snapshot.

        The first snapshot deltas against zero, so summing a series from
        its first record reconstructs true cumulative totals.  Only
        non-zero deltas are stored (delta encoding keeps long series of
        idle counters compact).
        """
        prev = self._prev or {}
        deltas: Dict[str, int] = {}
        for name, value in counters.items():
            if not isinstance(value, int):
                continue
            before = prev.get(name, 0)
            delta = wrap_aware_delta(before, value)
            if delta:
                deltas[name] = delta
        return deltas

    def reset(self) -> None:
        """Forget the sampling cursor (after a board reset, for example)."""
        self._prev = None
        self._seq = 0
        self._transactions = 0
        self._tx_since = 0
        self._next_cycle = self.every_cycles
        self._issued = 1
        self._countdown = 1

    # ------------------------------------------------------------------ #
    # Checkpoint support
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Sampling cursor for board checkpoints.

        Cadence and label are construction parameters (like the board
        programming itself) and are not checkpointed.
        """
        self._flush_pending()
        return {
            "prev": dict(self._prev) if self._prev is not None else None,
            "seq": self._seq,
            "transactions": self._transactions,
            "tx_since": self._tx_since,
            "next_cycle": self._next_cycle,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed cursor; the series continues seamlessly."""
        prev = state.get("prev")
        self._prev = (
            {str(name): int(value) for name, value in prev.items()}
            if prev is not None
            else None
        )
        self._seq = int(state["seq"])
        self._transactions = int(state["transactions"])
        self._tx_since = int(state["tx_since"])
        next_cycle = state.get("next_cycle")
        self._next_cycle = float(next_cycle) if next_cycle is not None else None
        # Re-arm lazily: the first transaction after restore lands in
        # on_countdown, which recomputes the cadence from the live source.
        self._issued = 1
        self._countdown = 1


def _window_metrics(deltas: Dict[str, int]) -> Dict[str, float]:
    """Derived per-window rates: node miss ratios, bus utilization.

    Computed from the window's own deltas, so the series shows ratios
    *converging* over a run instead of one cumulative average — the live
    view the real console could not offer.
    """
    window: Dict[str, float] = {}
    prefixes = sorted(
        {
            name.split(".", 1)[0]
            for name in deltas
            if name.startswith("node") and ".local." in name
        }
    )
    for prefix in prefixes:
        references = deltas.get(f"{prefix}.local.read", 0) + deltas.get(
            f"{prefix}.local.write", 0
        )
        if references:
            misses = deltas.get(f"{prefix}.miss.read", 0) + deltas.get(
                f"{prefix}.miss.write", 0
            )
            window[f"{prefix}.miss_ratio"] = misses / references
    total_cycles = deltas.get("bus.total_cycles", 0)
    if total_cycles:
        window["bus.utilization"] = deltas.get("bus.busy_cycles", 0) / total_cycles
    return window


def _wrapped_of(source: SampleSource) -> List[str]:
    """Names of currently-wrapped counters, when the source can tell."""
    hook = getattr(source, "wrapped_counters", None)
    if hook is None:
        return []
    wrapped: Iterable[str] = hook()
    return sorted(wrapped)
