"""Loaded telemetry series: totals, window series, text dashboards.

:class:`TelemetrySeries` wraps a list of telemetry records (from a
:class:`~repro.telemetry.sink.MemorySink` or re-read from a JSONL file)
and answers the questions an operator watching a long run asks: what are
the true cumulative totals (wrap-corrected), how is each window metric
trending, where did the wall-clock time go, and did any counter wrap.
:meth:`dashboard` renders the live ``watch`` screen of the console using
the same sparklines the experiment harness prints for Figure 10.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.analysis.ascii_chart import render_sparkline
from repro.telemetry.sink import load_jsonl


class TelemetrySeries:
    """An in-memory view over one recorded telemetry stream."""

    def __init__(self, records: Iterable[dict]) -> None:
        self.records: List[dict] = list(records)

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "TelemetrySeries":
        """Load a series previously written by a ``JsonlSink``."""
        return cls(load_jsonl(path))

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #

    def samples(self, label: Optional[str] = None) -> List[dict]:
        """Sample records (including the final partial window), in order."""
        return [
            record
            for record in self.records
            if record.get("type") in ("sample", "final")
            and (label is None or record.get("label") == label)
        ]

    def spans(self, label: Optional[str] = None) -> List[dict]:
        """Span records, in emission (close) order."""
        return [
            record
            for record in self.records
            if record.get("type") == "span"
            and (label is None or record.get("label") == label)
        ]

    def labels(self) -> List[str]:
        """Distinct sampler labels present, sorted."""
        return sorted(
            {str(record.get("label", "")) for record in self.records if record}
        )

    def totals(self, label: Optional[str] = None) -> Dict[str, int]:
        """True cumulative counter totals: the summed wrap-aware deltas."""
        totals: Dict[str, int] = {}
        for record in self.samples(label):
            for name, delta in record.get("deltas", {}).items():
                totals[name] = totals.get(name, 0) + int(delta)
        return dict(sorted(totals.items()))

    def window_keys(self, label: Optional[str] = None) -> List[str]:
        """Every derived window metric the series ever reported."""
        keys = set()
        for record in self.samples(label):
            keys.update(record.get("window", {}))
        return sorted(keys)

    def window_series(
        self, key: str, label: Optional[str] = None
    ) -> List[float]:
        """One window metric over time (samples missing the key skipped)."""
        return [
            float(record["window"][key])
            for record in self.samples(label)
            if key in record.get("window", {})
        ]

    def wrapped(self, label: Optional[str] = None) -> List[str]:
        """Counters flagged as wrapped by the most recent sample."""
        samples = self.samples(label)
        return list(samples[-1].get("wrapped", [])) if samples else []

    def span_summary(self, label: Optional[str] = None) -> Dict[str, dict]:
        """Per-span-path aggregate: count, total wall seconds, cycles."""
        summary: Dict[str, dict] = {}
        for span in self.spans(label):
            path = str(span.get("path", span.get("name", "?")))
            entry = summary.setdefault(
                path, {"count": 0, "wall_seconds": 0.0, "cycles": 0.0}
            )
            entry["count"] += 1
            entry["wall_seconds"] += float(span.get("wall", {}).get("seconds", 0.0))
            entry["cycles"] += float(span.get("end_cycle", 0.0)) - float(
                span.get("begin_cycle", 0.0)
            )
        return dict(sorted(summary.items()))

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def summary(self) -> str:
        """A few lines an operator reads first: volume, labels, wraps."""
        samples = self.samples()
        lines = [
            f"{len(self.records)} records: {len(samples)} samples, "
            f"{len(self.spans())} spans; labels: "
            + (", ".join(self.labels()) or "none")
        ]
        if samples:
            first, last = samples[0], samples[-1]
            lines.append(
                f"cycles {first.get('cycle', 0.0):.0f} .. "
                f"{last.get('cycle', 0.0):.0f}, "
                f"{last.get('transactions', 0):,} transactions observed"
            )
        wrapped = self.wrapped()
        if wrapped:
            lines.append(
                "WRAPPED 40-bit counters (raw readouts aliased): "
                + ", ".join(wrapped)
            )
        return "\n".join(lines)

    def dashboard(self, width: int = 48, label: Optional[str] = None) -> str:
        """The ``watch`` screen: one sparkline per window metric + spans."""
        lines = [self.summary()]
        for key in self.window_keys(label):
            series = self.window_series(key, label)
            if not series:
                continue
            spark = render_sparkline(series, width=width)
            lines.append(
                f"{key:28s} last {series[-1]:.4f}  peak {max(series):.4f}"
            )
            lines.append(f"{'':28s} [{spark}]")
        span_summary = self.span_summary(label)
        if span_summary:
            lines.append("spans (wall-clock profile):")
            for path, entry in span_summary.items():
                lines.append(
                    f"  {path:26s} x{entry['count']:<4d} "
                    f"{entry['wall_seconds'] * 1e3:9.2f} ms  "
                    f"{entry['cycles']:.0f} cycles"
                )
        return "\n".join(lines)
