"""Deterministic fixed-bucket latency histograms.

The paper's DIMM firmware histograms memory traffic in real time with a
*fixed* bucket layout burned into the FPGA bitstream; the reproduction
keeps the same discipline in software.  A :class:`Histogram` is born with
an immutable, strictly increasing bucket boundary tuple plus an implicit
``+Inf`` overflow bucket, so two runs that observe the same values render
byte-identical Prometheus exposition — no adaptive resizing, no
growth-by-observation.

Two *domains* are kept segregated, exactly like the reserved ``"wall"``
record key in :mod:`repro.telemetry.sink`:

* ``cycle`` — durations measured on the emulated clock (segment replay
  cycles).  Pure functions of the seed: byte-identical across reruns and
  across kill/resume, and safe to embed at the top level of records.
* ``wall`` — host seconds (queue wait, checkpoint write, backoff).
  Never reproducible; state embedded in records must ride under the
  ``"wall"`` key so :func:`repro.telemetry.sink.strip_wall` removes it
  from deterministic comparisons.

Histogram state checkpoints and restores through ``state_dict`` /
``load_state_dict``, mirroring the :class:`CounterSampler` cursor: a
cycle-domain histogram carried in a run checkpoint survives a worker
SIGKILL without double-counting the replayed-again stretch.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ValidationError

#: Current histogram state-schema revision.
HISTOGRAM_VERSION = 1

#: The two measurement domains; see the module docstring.
DOMAIN_CYCLE = "cycle"
DOMAIN_WALL = "wall"

#: Default wall-domain bounds (seconds): sub-millisecond control-plane
#: hops up to minute-scale queue waits, in a 1-2.5-5 decade ladder.
DEFAULT_WALL_BOUNDS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default cycle-domain bounds: powers of four from ~1K cycles (a short
#: segment on a small trace) to ~17G cycles (a 30-hour-campaign segment).
DEFAULT_CYCLE_BOUNDS: Tuple[float, ...] = tuple(
    float(4 ** k) for k in range(5, 18)
)

_DOMAIN_BOUNDS = {
    DOMAIN_WALL: DEFAULT_WALL_BOUNDS,
    DOMAIN_CYCLE: DEFAULT_CYCLE_BOUNDS,
}


class Histogram:
    """A fixed-bucket, checkpointable latency histogram.

    Args:
        name: the stage this histogram measures (``segment_replay`` …);
            becomes the ``stage`` label in Prometheus exposition.
        domain: ``"cycle"`` or ``"wall"`` — which clock the observations
            come from.  Determines the default bounds and where embedded
            state may live in telemetry records.
        bounds: optional explicit bucket upper bounds, strictly
            increasing, finite, positive.  An ``+Inf`` overflow bucket is
            always appended implicitly.
    """

    def __init__(
        self,
        name: str,
        domain: str = DOMAIN_WALL,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        if not name or not name.replace("_", "").isalnum():
            raise ValidationError(
                f"histogram name {name!r} must be a non-empty "
                f"identifier-like string"
            )
        if domain not in _DOMAIN_BOUNDS:
            raise ValidationError(
                f"histogram domain must be one of "
                f"{sorted(_DOMAIN_BOUNDS)}, got {domain!r}"
            )
        if bounds is None:
            bounds = _DOMAIN_BOUNDS[domain]
        checked: List[float] = []
        for bound in bounds:
            value = float(bound)
            if not math.isfinite(value) or value <= 0:
                raise ValidationError(
                    f"histogram bound {bound!r} must be finite and > 0"
                )
            if checked and value <= checked[-1]:
                raise ValidationError(
                    f"histogram bounds must be strictly increasing; "
                    f"{value!r} follows {checked[-1]!r}"
                )
            checked.append(value)
        if not checked:
            raise ValidationError("histogram needs at least one bound")
        self.name = name
        self.domain = domain
        self.bounds: Tuple[float, ...] = tuple(checked)
        #: Per-bucket observation counts; the final slot is ``+Inf``.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (Prometheus ``le`` semantics: ``<=``)."""
        value = float(value)
        if math.isnan(value):
            raise ValidationError(
                f"histogram {self.name!r} cannot observe NaN"
            )
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts, ``+Inf`` last (equals ``count``)."""
        running = 0
        out: List[int] = []
        for bucket in self.counts:
            running += bucket
            out.append(running)
        return out

    # -- checkpoint / restore (the sampler-cursor pattern) --------------

    def state_dict(self) -> dict:
        """Checkpointable state; restore with :meth:`load_state_dict`."""
        return {
            "v": HISTOGRAM_VERSION,
            "name": self.name,
            "domain": self.domain,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore from :meth:`state_dict` output.

        Raises:
            ValidationError: the state belongs to a histogram with a
                different name, domain, or bucket layout.
        """
        if state.get("name") != self.name or state.get("domain") != self.domain:
            raise ValidationError(
                f"histogram state for "
                f"{state.get('domain')!r}/{state.get('name')!r} does not "
                f"match {self.domain!r}/{self.name!r}"
            )
        bounds = tuple(float(b) for b in state.get("bounds", ()))
        if bounds != self.bounds:
            raise ValidationError(
                f"histogram {self.name!r} state has a different bucket "
                f"layout ({len(bounds)} bound(s) vs {len(self.bounds)})"
            )
        counts = [int(c) for c in state.get("counts", ())]
        if len(counts) != len(self.counts):
            raise ValidationError(
                f"histogram {self.name!r} state has {len(counts)} "
                f"bucket count(s); expected {len(self.counts)}"
            )
        self.counts = counts
        self.sum = float(state.get("sum", 0.0))
        self.count = int(state.get("count", 0))

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "Histogram":
        """Rebuild a histogram entirely from checkpointed state."""
        hist = cls(
            str(state.get("name", "")),
            domain=str(state.get("domain", DOMAIN_WALL)),
            bounds=[float(b) for b in state.get("bounds", ())],
        )
        hist.load_state_dict(state)
        return hist

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        if (
            other.name != self.name
            or other.domain != self.domain
            or other.bounds != self.bounds
        ):
            raise ValidationError(
                f"cannot merge histogram {other.domain!r}/{other.name!r} "
                f"into {self.domain!r}/{self.name!r}"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self.sum += other.sum
        self.count += other.count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.state_dict() == other.state_dict()

    def __repr__(self) -> str:
        return (
            f"Histogram(name={self.name!r}, domain={self.domain!r}, "
            f"count={self.count}, sum={self.sum!r})"
        )


def split_histogram_states(
    histograms: Iterable[Histogram],
) -> Tuple[Dict[str, dict], Dict[str, dict]]:
    """Split histogram states into ``(cycle, wall)`` dicts by domain.

    Callers embedding state in telemetry records must place the wall
    dict under the reserved ``"wall"`` key so deterministic encoding
    strips it; the cycle dict is reproducible and rides at top level.
    """
    cycle: Dict[str, dict] = {}
    wall: Dict[str, dict] = {}
    for hist in histograms:
        target = cycle if hist.domain == DOMAIN_CYCLE else wall
        target[hist.name] = hist.state_dict()
    return cycle, wall
