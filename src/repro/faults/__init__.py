"""Fault injection, recovery measurement and board checkpoints.

The real MemorIES board ran for days at a time attached to a production
bus; this package reproduces the *failure* side of that story.  A seeded
:class:`FaultPlan` describes what can go wrong — dropped snoops, directory
bit flips, transaction-buffer overflow bursts, counter saturation, trace
corruption — and :class:`FaultInjector` makes it happen deterministically
against a live or replaying board.  :class:`FaultCampaign` measures how far
the injected faults (and the ECC/scrub/retry recovery machinery) move the
emulated miss ratio from a fault-free baseline, and
:mod:`repro.faults.checkpoint` saves/restores complete board state so long
campaigns survive interruption.
"""

from repro.faults.campaign import (
    CampaignResult,
    FaultCampaign,
    run_campaign,
    supervised_campaign,
)
from repro.faults.checkpoint import (
    CheckpointRotation,
    find_latest_checkpoint,
    load_checkpoint,
    load_checkpoint_payload,
    restore_checkpoint,
    save_checkpoint,
)
from repro.faults.plan import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    corrupt_trace_bytes,
)
from repro.faults.service_chaos import ServiceChaosPlan

__all__ = [
    "CampaignResult",
    "CheckpointRotation",
    "FaultCampaign",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "ServiceChaosPlan",
    "corrupt_trace_bytes",
    "find_latest_checkpoint",
    "load_checkpoint",
    "load_checkpoint_payload",
    "restore_checkpoint",
    "run_campaign",
    "save_checkpoint",
    "supervised_campaign",
]
