"""Board checkpoint files.

Long campaigns (the paper's multi-day monitoring runs) need to survive
console restarts.  :func:`save_checkpoint` serialises a board's complete
mutable state — directories (with ECC check bits), counter banks,
transaction buffers, SDRAM timing state, scrubber position, replacement
RNG and the board clock — as JSON; :func:`restore_checkpoint` loads it
into an identically-programmed board, after which continued emulation
produces statistics identical to an uninterrupted run.

Crash safety (the contract :mod:`repro.supervisor` builds on):

* **Atomic**: the file is written to a same-directory temp name, fsynced,
  and ``os.replace``'d into place — a crash mid-write leaves either the
  previous checkpoint or none, never a half-written one.
* **Self-validating**: version-2 files embed a CRC32 over the canonical
  encoding of their body; :func:`load_checkpoint` recomputes it, so a
  truncated or bit-rotted file raises
  :class:`~repro.common.errors.TraceFormatError` instead of half-restoring
  a board.
* **Programming-checked**: the checkpoint records the target machine's
  :meth:`~repro.target.mapping.TargetMachine.fingerprint`;
  :func:`restore_checkpoint` refuses a board programmed differently.
* **Fallback-aware**: :func:`find_latest_checkpoint` picks the newest
  *valid* generation in a directory, skipping corrupt candidates, so
  rotation (keep-N) plus this function make the newest file's corruption
  a one-generation setback rather than a lost run.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.common.errors import ConfigurationError, TraceFormatError
from repro.memories.board import MemoriesBoard

#: Format tag of checkpoint files.
CHECKPOINT_FORMAT = "memories-checkpoint"
#: Current checkpoint file revision (2 adds the CRC32 body digest, the
#: machine fingerprint and the optional ``extra`` sidecar; v1 still loads).
CHECKPOINT_VERSION = 2


def _canonical(body: dict) -> bytes:
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _board_fingerprint(board: MemoriesBoard) -> Optional[str]:
    machine = getattr(board.firmware, "machine", None)
    fingerprint = getattr(machine, "fingerprint", None)
    return fingerprint() if callable(fingerprint) else None


def save_checkpoint(
    board: MemoriesBoard,
    path: Union[str, Path],
    extra: Optional[dict] = None,
) -> None:
    """Atomically write the board's full mutable state to ``path`` (JSON).

    Args:
        extra: optional JSON-serialisable sidecar state committed in the
            same atomic write (e.g. a fault injector's RNG cursor, so a
            supervised fault campaign resumes bit-identically).
    """
    path = Path(path)
    body: dict = {"state": board.checkpoint()}
    if extra is not None:
        body["extra"] = extra
    fingerprint = _board_fingerprint(board)
    if fingerprint is not None:
        body["machine"] = fingerprint
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "crc": zlib.crc32(_canonical(body)) & 0xFFFFFFFF,
        **body,
    }
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    # Durability of the rename itself: fsync the containing directory so a
    # power cut cannot resurrect the old directory entry after the replace.
    dir_fd = os.open(path.parent or Path("."), os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def load_checkpoint_payload(path: Union[str, Path]) -> dict:
    """Read and fully validate a checkpoint file; returns the payload dict.

    The payload carries ``state`` (the board state), and optionally
    ``extra`` (caller sidecar) and ``machine`` (programming fingerprint).

    Raises:
        TraceFormatError: on unreadable JSON, a foreign file, an
            unsupported revision, or a CRC mismatch (truncation/garbling).
    """
    path = Path(path)
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"{path}: not a checkpoint file: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise TraceFormatError(f"{path}: not a MemorIES checkpoint file")
    version = payload.get("version")
    if version not in (1, CHECKPOINT_VERSION):
        raise TraceFormatError(
            f"{path}: unsupported checkpoint version {version!r}"
        )
    if version >= 2:
        recorded = payload.get("crc")
        body = {
            key: value
            for key, value in payload.items()
            if key not in ("format", "version", "crc")
        }
        if recorded is None:
            raise TraceFormatError(f"{path}: checkpoint carries no CRC")
        if zlib.crc32(_canonical(body)) & 0xFFFFFFFF != int(recorded):
            raise TraceFormatError(
                f"{path}: CRC mismatch — checkpoint file is corrupt"
            )
    state = payload.get("state")
    if not isinstance(state, dict):
        raise TraceFormatError(f"{path}: checkpoint carries no board state")
    return payload


def load_checkpoint(path: Union[str, Path]) -> dict:
    """Read and validate a checkpoint file; returns the board state dict.

    Raises:
        TraceFormatError: on unreadable JSON, a foreign file, an
            unsupported revision, or a corrupt (CRC-failing) file.
    """
    return load_checkpoint_payload(path)["state"]


def restore_checkpoint(
    board: MemoriesBoard, path: Union[str, Path]
) -> Optional[dict]:
    """Load ``path`` into ``board``; returns the ``extra`` sidecar, if any.

    Raises:
        TraceFormatError: when the file is corrupt (see
            :func:`load_checkpoint`).
        ConfigurationError: when the checkpoint was taken on a board
            programmed with a different target machine — restoring it would
            silently mis-replay, so the mismatch is refused up front.
    """
    payload = load_checkpoint_payload(path)
    recorded = payload.get("machine")
    current = _board_fingerprint(board)
    if recorded is not None and current is not None and recorded != current:
        raise ConfigurationError(
            f"{path}: checkpoint was taken on a differently-programmed "
            f"machine (fingerprint {recorded[:12]}… != {current[:12]}…)"
        )
    board.restore(payload["state"])
    return payload.get("extra")


def find_latest_checkpoint(
    directory: Union[str, Path], pattern: str = "*.json"
) -> Optional[Path]:
    """Newest *valid* checkpoint in ``directory``, or None.

    Candidates are ordered newest-first by filename (rotation names encode
    the segment number, so lexicographic order is generation order) and
    each is fully validated; corrupt or foreign files are skipped, so a
    damaged newest generation falls back to the previous one instead of
    aborting a resume.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    for candidate in sorted(directory.glob(pattern), reverse=True):
        try:
            load_checkpoint_payload(candidate)
        except TraceFormatError:
            continue
        return candidate
    return None


def checkpoint_generation(path: Union[str, Path]) -> Optional[int]:
    """Segment number encoded in a rotation filename, or None.

    Rotation names checkpoints ``ckpt-<segment:08d>.json``; foreign names
    yield None rather than raising so callers can mix in manual files.
    """
    stem = Path(path).stem
    _prefix, _sep, digits = stem.rpartition("-")
    return int(digits) if digits.isdigit() else None


class CheckpointRotation:
    """Keep-N atomic checkpoint generations in one directory.

    Each :meth:`save` writes ``ckpt-<segment:08d>.json`` atomically (see
    :func:`save_checkpoint`) and then prunes the oldest generations beyond
    ``keep`` — never the one just written.  :meth:`latest` returns the
    newest generation that still validates, falling back past corrupt
    files.

    Args:
        directory: where generations live (created on first save).
        keep: how many generations to retain (>= 1).
    """

    def __init__(self, directory: Union[str, Path], keep: int = 3) -> None:
        if keep < 1:
            raise ConfigurationError(f"rotation must keep >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep

    def path_for(self, segment: int) -> Path:
        return self.directory / f"ckpt-{segment:08d}.json"

    def save(
        self, board: MemoriesBoard, segment: int, extra: Optional[dict] = None
    ) -> Path:
        """Write generation ``segment`` durably, then prune old ones."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(segment)
        save_checkpoint(board, path, extra=extra)
        self.prune()
        return path

    def prune(self) -> None:
        """Drop the oldest generations beyond the retention count."""
        generations = sorted(self.directory.glob("ckpt-*.json"))
        for stale in generations[: max(0, len(generations) - self.keep)]:
            stale.unlink(missing_ok=True)

    def latest(self) -> Optional[Tuple[int, Path]]:
        """(segment, path) of the newest valid generation, or None."""
        path = find_latest_checkpoint(self.directory, pattern="ckpt-*.json")
        if path is None:
            return None
        segment = checkpoint_generation(path)
        if segment is None:
            return None
        return segment, path
