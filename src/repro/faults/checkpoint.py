"""Board checkpoint files.

Long campaigns (the paper's multi-day monitoring runs) need to survive
console restarts.  :func:`save_checkpoint` serialises a board's complete
mutable state — directories (with ECC check bits), counter banks,
transaction buffers, SDRAM timing state, scrubber position, replacement
RNG and the board clock — as JSON; :func:`restore_checkpoint` loads it
into an identically-programmed board, after which continued emulation
produces statistics identical to an uninterrupted run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.common.errors import TraceFormatError
from repro.memories.board import MemoriesBoard

#: Format tag of checkpoint files.
CHECKPOINT_FORMAT = "memories-checkpoint"
#: Current checkpoint file revision.
CHECKPOINT_VERSION = 1


def save_checkpoint(board: MemoriesBoard, path: Union[str, Path]) -> None:
    """Write the board's full mutable state to ``path`` (JSON)."""
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "state": board.checkpoint(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_checkpoint(path: Union[str, Path]) -> dict:
    """Read and validate a checkpoint file; returns the board state dict.

    Raises:
        TraceFormatError: on unreadable JSON, a foreign file, or an
            unsupported revision.
    """
    path = Path(path)
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: not a checkpoint file: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("format") != CHECKPOINT_FORMAT:
        raise TraceFormatError(f"{path}: not a MemorIES checkpoint file")
    if payload.get("version") != CHECKPOINT_VERSION:
        raise TraceFormatError(
            f"{path}: unsupported checkpoint version {payload.get('version')!r}"
        )
    state = payload.get("state")
    if not isinstance(state, dict):
        raise TraceFormatError(f"{path}: checkpoint carries no board state")
    return state


def restore_checkpoint(board: MemoriesBoard, path: Union[str, Path]) -> None:
    """Load ``path`` into ``board`` (which must be identically programmed)."""
    board.restore(load_checkpoint(path))
