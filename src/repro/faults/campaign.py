"""Fault campaigns: fault-free baseline vs faulted replay of one trace.

A campaign replays the same captured trace twice through identically
programmed boards — once bare, once behind a :class:`FaultInjector` — and
reports how far the injected faults moved the emulated statistics.  With a
zero-rate plan the two runs are byte-identical (the CI smoke job asserts
exactly this); with real rates the miss-ratio error quantifies how well
the recovery machinery (ECC + scrubbing, snoop-loss resync, bounded bus
retries) contains the damage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.faults.plan import FaultEvent, FaultInjector, FaultPlan
from repro.memories.board import (
    DEFAULT_ASSUMED_UTILIZATION,
    MemoriesBoard,
    board_for_machine,
)
from repro.target.mapping import TargetMachine


def _aggregate_miss_ratio(board: MemoriesBoard) -> float:
    """Machine-wide emulated miss ratio (cache-emulation firmware only)."""
    nodes = getattr(board.firmware, "nodes", None)
    if not nodes:
        return 0.0
    references = sum(node.references() for node in nodes)
    if references == 0:
        return 0.0
    return sum(node.misses() for node in nodes) / references


@dataclass
class CampaignResult:
    """Outcome of one baseline-vs-faulted pair of replays.

    ``baseline`` and ``faulted`` are the boards' merged counter snapshots
    (:meth:`MemoriesBoard.statistics`); with a zero-rate plan they compare
    equal key-for-key.
    """

    plan: FaultPlan
    records: int
    baseline: Dict[str, int]
    faulted: Dict[str, int]
    baseline_miss_ratio: float
    faulted_miss_ratio: float
    fault_counts: Dict[str, int] = field(default_factory=dict)
    events: List[FaultEvent] = field(default_factory=list)

    @property
    def miss_ratio_error(self) -> float:
        """Absolute miss-ratio deviation the faults caused."""
        return abs(self.faulted_miss_ratio - self.baseline_miss_ratio)

    @property
    def identical(self) -> bool:
        """True when the faulted run matched the baseline byte-for-byte."""
        return json.dumps(self.baseline, sort_keys=True) == json.dumps(
            self.faulted, sort_keys=True
        )

    def summary(self) -> str:
        """One-line human-readable outcome."""
        faults = sum(self.fault_counts.values())
        return (
            f"{self.records:,} records, {faults} faults "
            f"({', '.join(f'{k}={v}' for k, v in sorted(self.fault_counts.items())) or 'none'}); "
            f"miss ratio {self.baseline_miss_ratio:.4f} -> "
            f"{self.faulted_miss_ratio:.4f} "
            f"(error {self.miss_ratio_error:.4f})"
        )

    def to_dict(self) -> dict:
        """JSON-serialisable form for reports and the CLI."""
        return {
            "plan": self.plan.to_dict(),
            "records": self.records,
            "baseline_miss_ratio": self.baseline_miss_ratio,
            "faulted_miss_ratio": self.faulted_miss_ratio,
            "miss_ratio_error": self.miss_ratio_error,
            "identical": self.identical,
            "fault_counts": dict(self.fault_counts),
            "events": [event.as_dict() for event in self.events],
            "baseline": dict(self.baseline),
            "faulted": dict(self.faulted),
        }


class FaultCampaign:
    """Run seeded fault plans against one target-machine programming.

    Args:
        machine: the board programming both replays use.
        seed: replacement-policy seed (distinct from each plan's fault seed).
        ecc: build ECC-protected directories with patrol scrubbers — the
            recovery arm.  Pass False to measure the unprotected board.
        scrub_interval: scrubber cadence override in bus cycles.
        assumed_utilization: board clock model parameter.
        telemetry_sink: optional :class:`repro.telemetry.TelemetrySink`;
            when given, every replay of the campaign emits a counter time
            series into it, labeled ``baseline`` / ``faulted`` (fault
            sweeps additionally suffix the plan index), so an operator can
            watch *when* during a run the faults bent the statistics, not
            just the end-state error.
        sample_every: sampling cadence in replayed transactions (defaults
            to the sampler's own default cadence).
    """

    def __init__(
        self,
        machine: TargetMachine,
        seed: int = 0,
        ecc: bool = True,
        scrub_interval: Optional[float] = None,
        assumed_utilization: float = DEFAULT_ASSUMED_UTILIZATION,
        telemetry_sink=None,
        sample_every: Optional[int] = None,
    ) -> None:
        self.machine = machine
        self.seed = seed
        self.ecc = ecc
        self.scrub_interval = scrub_interval
        self.assumed_utilization = assumed_utilization
        self.telemetry_sink = telemetry_sink
        self.sample_every = sample_every

    def build_board(self, telemetry_label: Optional[str] = None) -> MemoriesBoard:
        """A fresh identically-programmed board.

        With a campaign sink configured and ``telemetry_label`` given, the
        board comes up with a sampler already attached.
        """
        board = board_for_machine(
            self.machine,
            seed=self.seed,
            assumed_utilization=self.assumed_utilization,
            ecc=self.ecc,
            scrub_interval=self.scrub_interval,
        )
        if self.telemetry_sink is not None and telemetry_label is not None:
            from repro.telemetry import CounterSampler

            board.attach_telemetry(
                CounterSampler(
                    self.telemetry_sink,
                    every_transactions=self.sample_every,
                    label=telemetry_label,
                )
            )
        return board

    def _finish_telemetry(self, board: MemoriesBoard) -> None:
        """Flush the final partial sampling window, if instrumented."""
        if board.telemetry is not None:
            board.telemetry.finish(board)

    def run(
        self,
        words: np.ndarray,
        plan: FaultPlan,
        baseline: Optional[Dict[str, int]] = None,
        baseline_miss_ratio: Optional[float] = None,
        telemetry_label: str = "faulted",
    ) -> CampaignResult:
        """Replay ``words`` bare and under ``plan``; compare the outcomes.

        ``baseline`` / ``baseline_miss_ratio`` let sweeps reuse one
        fault-free replay instead of recomputing it per plan.
        """
        if baseline is None:
            board = self.build_board(telemetry_label="baseline")
            board.replay_words(words)
            self._finish_telemetry(board)
            baseline = board.statistics()
            baseline_miss_ratio = _aggregate_miss_ratio(board)
        faulted_board = self.build_board(telemetry_label=telemetry_label)
        injector = FaultInjector(faulted_board, plan)
        injector.replay_words(words)
        self._finish_telemetry(faulted_board)
        return CampaignResult(
            plan=plan,
            records=int(words.shape[0]),
            baseline=baseline,
            faulted=faulted_board.statistics(),
            baseline_miss_ratio=float(baseline_miss_ratio or 0.0),
            faulted_miss_ratio=_aggregate_miss_ratio(faulted_board),
            fault_counts=injector.fault_counts(),
            events=list(injector.events),
        )

    def sweep(
        self, words: np.ndarray, plans: Sequence[FaultPlan]
    ) -> List[CampaignResult]:
        """Run several plans against one shared fault-free baseline."""
        board = self.build_board(telemetry_label="baseline")
        board.replay_words(words)
        self._finish_telemetry(board)
        baseline = board.statistics()
        baseline_miss_ratio = _aggregate_miss_ratio(board)
        return [
            self.run(
                words,
                plan,
                baseline=baseline,
                baseline_miss_ratio=baseline_miss_ratio,
                telemetry_label=f"faulted{index}",
            )
            for index, plan in enumerate(plans)
        ]


def run_campaign(
    words: np.ndarray,
    machine: TargetMachine,
    plan: FaultPlan,
    seed: int = 0,
    ecc: bool = True,
    scrub_interval: Optional[float] = None,
) -> CampaignResult:
    """One-shot convenience wrapper around :class:`FaultCampaign`."""
    campaign = FaultCampaign(
        machine, seed=seed, ecc=ecc, scrub_interval=scrub_interval
    )
    return campaign.run(words, plan)


def supervised_campaign(
    words: np.ndarray,
    machine: TargetMachine,
    plan: FaultPlan,
    run_dir,
    seed: int = 0,
    ecc: bool = True,
    segment_records: int = 5_000,
    max_restarts: int = 3,
) -> CampaignResult:
    """Crash-safe variant of :func:`run_campaign`.

    The faulted arm runs under a :class:`~repro.supervisor.RunSupervisor`
    in ``run_dir``: the trace is staged as a segmented file and replayed
    in journaled, checkpointed segments by a watchdog-supervised worker
    process.  Kill the campaign at any point and call this again with the
    same ``run_dir`` — it resumes from the last committed checkpoint and
    the result is bit-identical to an uninterrupted run.

    The final board state (counters *and* injector RNG streams) is
    rebuilt from the run's last checkpoint and cross-checked against the
    journaled statistics digest, so the returned :class:`CampaignResult`
    carries the same fault events and counter snapshots the in-process
    :class:`FaultCampaign` would have produced.
    """
    from pathlib import Path

    from repro.faults.checkpoint import CheckpointRotation, restore_checkpoint
    from repro.supervisor import (
        RunSupervisor,
        SupervisedRunSpec,
        SupervisorError,
        statistics_digest,
    )

    spec = SupervisedRunSpec(
        machine=machine,
        seed=seed,
        ecc=ecc,
        fault_plan=plan,
        segment_records=segment_records,
        max_restarts=max_restarts,
    )
    run_dir = Path(run_dir)
    if (run_dir / RunSupervisor.JOURNAL_NAME).exists():
        supervisor = RunSupervisor.open(run_dir)
    else:
        supervisor = RunSupervisor.create(spec, words, run_dir)
    result = supervisor.run()

    baseline_board = spec.build_board()
    baseline_board.replay_words(words)
    baseline = baseline_board.statistics()
    baseline_miss_ratio = _aggregate_miss_ratio(baseline_board)

    faulted_board = spec.build_board()
    injector = spec.build_injector(faulted_board)
    events: List[FaultEvent] = []
    latest = CheckpointRotation(
        run_dir / "checkpoints", keep=spec.keep_checkpoints
    ).latest()
    if latest is not None:
        extra = restore_checkpoint(faulted_board, latest[1])
        if injector is not None and extra and "injector" in extra:
            injector.load_state_dict(extra["injector"])
            events = list(injector.events)
    faulted = faulted_board.statistics()
    if statistics_digest(faulted) != result.digest:
        raise SupervisorError(
            f"{run_dir}: final checkpoint does not match the journaled "
            f"run result"
        )
    return CampaignResult(
        plan=plan,
        records=int(words.shape[0]),
        baseline=baseline,
        faulted=faulted,
        baseline_miss_ratio=baseline_miss_ratio,
        faulted_miss_ratio=_aggregate_miss_ratio(faulted_board),
        fault_counts=dict(result.fault_counts),
        events=events,
    )
