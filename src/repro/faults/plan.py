"""Seeded fault plans and the injection overlay.

:class:`FaultPlan` is a frozen description of *what* can go wrong and at
what per-tenure rate; :class:`FaultInjector` wraps a
:class:`~repro.memories.board.MemoriesBoard` (as a bus monitor, or as an
offline replay driver) and makes it go wrong.  All randomness comes from
:class:`repro.common.rng.RngStreams` seeded by the plan, one independent
stream per fault site, so the same ``(seed, plan, trace)`` triple always
reproduces the same fault sites and the same final statistics.

A zero-rate plan is bit-identical to running the bare board: every fault
site is gated on its rate *before* any random draw, so the injector makes
no RNG calls and mutates nothing on the default path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass
from typing import Dict, List

import numpy as np

from repro.bus.transaction import BusCommand, BusTransaction, SnoopResponse
from repro.common.errors import ValidationError
from repro.common.rng import RngStreams
from repro.memories.board import MemoriesBoard
from repro.memories.counters import COUNTER_MASK


@dataclass(frozen=True)
class FaultPlan:
    """Per-tenure fault rates for one campaign, all seeded from ``seed``.

    Attributes:
        seed: root seed for every fault site's RNG stream.
        drop_snoop_rate: probability the board fails to latch a snooped
            tenure (the passive monitor missing a bus cycle).
        directory_flip_rate: probability of one soft-error bit flip in a
            random resident line of a random node's SDRAM directory.
        buffer_burst_rate: probability of a synthetic burst crowding a
            random node's transaction buffer (forcing the retry path).
        buffer_burst_ops: operations per injected burst.
        counter_saturate_rate: probability of silently wrapping one random
            40-bit counter (adding exactly ``2^40`` so the reported value
            is unchanged but the wrap flag trips).
        trace_corrupt_rate: probability knob consumed by
            :func:`corrupt_trace_bytes` when campaigns damage trace files
            on disk; it does not fire per-tenure.
    """

    seed: int = 0
    drop_snoop_rate: float = 0.0
    directory_flip_rate: float = 0.0
    buffer_burst_rate: float = 0.0
    buffer_burst_ops: int = 64
    counter_saturate_rate: float = 0.0
    trace_corrupt_rate: float = 0.0

    _RATES = (
        "drop_snoop_rate",
        "directory_flip_rate",
        "buffer_burst_rate",
        "counter_saturate_rate",
        "trace_corrupt_rate",
    )

    def validate(self) -> None:
        """Raise :class:`ValidationError` on out-of-range parameters."""
        for name in self._RATES:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValidationError(f"{name} {rate} outside [0, 1]")
        if self.buffer_burst_ops < 1:
            raise ValidationError("buffer_burst_ops must be >= 1")

    @property
    def is_zero(self) -> bool:
        """True when no fault site can ever fire."""
        return all(getattr(self, name) == 0.0 for name in self._RATES)

    def to_dict(self) -> dict:
        """JSON-friendly form (campaign reports, CLI round-trips)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f for f in cls.__dataclass_fields__ if not f.startswith("_")}
        extra = set(data) - known
        if extra:
            raise ValidationError(f"unknown fault-plan fields: {sorted(extra)}")
        plan = cls(**data)
        plan.validate()
        return plan

    @classmethod
    def uniform(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """Every per-tenure fault site at the same rate (sweep helper)."""
        return cls(
            seed=seed,
            drop_snoop_rate=rate,
            directory_flip_rate=rate,
            buffer_burst_rate=rate,
            counter_saturate_rate=rate,
        )


@dataclass(frozen=True)
class FaultEvent:
    """One fault the injector actually committed (the reproducibility log)."""

    tenure: int
    kind: str
    detail: tuple  # sorted (key, value) pairs, hashable for comparisons

    def as_dict(self) -> dict:
        return {"tenure": self.tenure, "kind": self.kind, **dict(self.detail)}


class FaultInjector:
    """Interpose seeded faults between a tenure stream and a board.

    Use it live — ``host.plug_in(FaultInjector(board, plan))`` instead of
    plugging the board in directly — or offline via :meth:`replay` /
    :meth:`replay_words`, which mirror the board's own replay API.

    Args:
        board: the target board (any firmware; directory/buffer/counter
            sites quietly skip firmware images without nodes).
        plan: the validated fault plan.
    """

    def __init__(self, board: MemoriesBoard, plan: FaultPlan) -> None:
        plan.validate()
        self.board = board
        self.plan = plan
        streams = RngStreams(plan.seed)
        self._drop_rng = streams.get("faults.drop_snoop")
        self._flip_rng = streams.get("faults.directory_flip")
        self._burst_rng = streams.get("faults.buffer_burst")
        self._saturate_rng = streams.get("faults.counter_saturate")
        self.tenures_seen = 0
        self.events: List[FaultEvent] = []

    # ------------------------------------------------------------------ #
    # Monitor protocol / replay drivers
    # ------------------------------------------------------------------ #

    def observe(self, txn: BusTransaction) -> SnoopResponse:
        """Bus-monitor entry point (live operation)."""
        return self.dispatch(
            txn.cpu_id, txn.command, txn.address, txn.snoop_response
        )

    def dispatch(
        self,
        cpu_id: int,
        command: BusCommand,
        address: int,
        snoop_response: SnoopResponse,
    ) -> SnoopResponse:
        """Inject any due faults, then forward the tenure to the board."""
        self.tenures_seen += 1
        plan = self.plan
        if plan.drop_snoop_rate and self._drop_rng.random() < plan.drop_snoop_rate:
            # The board never sees this tenure; recovery marks the line
            # suspect instead (conservative invalidate-and-refill).
            invalidated = self.board.note_snoop_loss(address)
            self._log("drop_snoop", address=address, invalidated=invalidated)
            return SnoopResponse.NULL
        if plan.directory_flip_rate and self._flip_rng.random() < plan.directory_flip_rate:
            self._flip_directory_bit()
        if plan.buffer_burst_rate and self._burst_rng.random() < plan.buffer_burst_rate:
            self._burst_buffer()
        if plan.counter_saturate_rate and self._saturate_rng.random() < plan.counter_saturate_rate:
            self._saturate_counter()
        return self.board._dispatch(cpu_id, command, address, snoop_response)

    def replay(self, trace) -> int:
        """Replay a :class:`~repro.bus.trace.BusTrace` through the faults."""
        return self.replay_words(trace.words)

    def replay_words(self, words: np.ndarray) -> int:
        """Replay packed records through the fault overlay (offline path)."""
        from repro.bus.trace import iter_decoded

        dispatch = self.dispatch
        command_of = _COMMANDS
        response_of = _RESPONSES
        for cpu_id, command, address, response in iter_decoded(words):
            dispatch(cpu_id, command_of[command], address, response_of[response])
        return int(words.shape[0])

    # ------------------------------------------------------------------ #
    # Fault sites
    # ------------------------------------------------------------------ #

    def _nodes(self):
        return getattr(self.board.firmware, "nodes", None)

    def _flip_directory_bit(self) -> None:
        nodes = self._nodes()
        if not nodes:
            return
        rng = self._flip_rng
        node = nodes[int(rng.integers(len(nodes)))]
        directory = node.directory
        set_index = int(rng.integers(directory.config.num_sets))
        ways = directory.ways_in_set(set_index)
        if ways == 0:
            # The strike hit an empty frame — no architectural effect, but
            # it is logged so the fault-site sequence stays reproducible.
            self._log("directory_flip", node=node.index, set=set_index, way=-1, bit=-1)
            return
        way = int(rng.integers(ways))
        bit = int(rng.integers(directory.stored_bits))
        directory.inject_bit_flip(set_index, way, bit)
        self._log("directory_flip", node=node.index, set=set_index, way=way, bit=bit)

    def _burst_buffer(self) -> None:
        nodes = self._nodes()
        if not nodes:
            return
        rng = self._burst_rng
        node = nodes[int(rng.integers(len(nodes)))]
        injected = node.buffer.inject_occupancy(
            self.board.now_cycle, self.plan.buffer_burst_ops
        )
        self._log("buffer_burst", node=node.index, injected=injected)

    def _saturate_counter(self) -> None:
        nodes = self._nodes()
        if not nodes:
            return
        rng = self._saturate_rng
        node = nodes[int(rng.integers(len(nodes)))]
        names = sorted(node.counters.state_dict())
        if not names:
            self._log("counter_saturate", node=node.index, counter="")
            return
        name = names[int(rng.integers(len(names)))]
        # One full wrap: read() is unchanged, wrapped() trips — the silent
        # modulo corruption the console's 'overflows' command exists for.
        node.counters.increment(name, COUNTER_MASK + 1)
        self._log("counter_saturate", node=node.index, counter=name)

    def _log(self, kind: str, **detail) -> None:
        self.events.append(
            FaultEvent(
                tenure=self.tenures_seen,
                kind=kind,
                detail=tuple(sorted(detail.items())),
            )
        )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def fault_counts(self) -> Dict[str, int]:
        """Committed faults by kind."""
        return dict(Counter(event.kind for event in self.events))

    # ------------------------------------------------------------------ #
    # Checkpoint support (supervised fault campaigns)
    # ------------------------------------------------------------------ #

    def state_dict(self) -> dict:
        """Mutable injector state, JSON-serialisable.

        Rides in a checkpoint's ``extra`` sidecar so a supervised fault
        campaign resumed mid-run draws the *same* remaining fault sites as
        an uninterrupted one (the RNG cursors are the state; the plan
        itself is immutable and travels in the run spec).
        """
        return {
            "rngs": {
                "drop": self._drop_rng.bit_generator.state,
                "flip": self._flip_rng.bit_generator.state,
                "burst": self._burst_rng.bit_generator.state,
                "saturate": self._saturate_rng.bit_generator.state,
            },
            "tenures_seen": self.tenures_seen,
            "events": [event.as_dict() for event in self.events],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a checkpointed injector state."""
        rngs = state["rngs"]
        self._drop_rng.bit_generator.state = rngs["drop"]
        self._flip_rng.bit_generator.state = rngs["flip"]
        self._burst_rng.bit_generator.state = rngs["burst"]
        self._saturate_rng.bit_generator.state = rngs["saturate"]
        self.tenures_seen = int(state["tenures_seen"])
        self.events = [
            FaultEvent(
                tenure=int(entry["tenure"]),
                kind=str(entry["kind"]),
                detail=tuple(
                    sorted(
                        (key, value)
                        for key, value in entry.items()
                        if key not in ("tenure", "kind")
                    )
                ),
            )
            for entry in state.get("events", [])
        ]


def corrupt_trace_bytes(
    data: bytes, rng: np.random.Generator, mode: str = "flip"
) -> bytes:
    """Return a damaged copy of a trace file's bytes.

    ``mode="flip"`` flips one random bit anywhere in the file (header,
    payload or CRC trailer); ``mode="truncate"`` cuts the file at a random
    offset.  Both damages are what the v3/v4 trace format's CRC trailer
    must turn into a :class:`~repro.common.errors.TraceFormatError` instead
    of silently replaying garbage.
    """
    if not data:
        return data
    if mode == "flip":
        corrupted = bytearray(data)
        position = int(rng.integers(len(corrupted)))
        corrupted[position] ^= 1 << int(rng.integers(8))
        return bytes(corrupted)
    if mode == "truncate":
        return data[: int(rng.integers(len(data)))]
    raise ValidationError(f"unknown corruption mode {mode!r}")


_COMMANDS = [BusCommand(i) for i in range(len(BusCommand))]
_RESPONSES = [SnoopResponse(i) for i in range(len(SnoopResponse))]
