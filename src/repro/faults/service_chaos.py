"""Deterministic chaos schedule for the multi-session emulation service.

The per-run :class:`~repro.supervisor.ChaosPlan` makes *one* supervised
run fail on cue; a :class:`ServiceChaosPlan` scripts failures across a
whole fleet of sessions, keyed by session label, so the service chaos
test (``tools/service_smoke.py``, ``tests/test_service.py``) can assert
the tentpole guarantee: under worker kills and ingest loss, every
admitted session either completes bit-identical to an undisturbed run or
terminates with a structured reason — nothing silently hangs.

Three failure families:

* ``kill_worker`` — SIGKILL the session's replay worker after N records
  of its first segment (delegates to the supervisor's own ChaosPlan, so
  the restart is a journaled, bit-identical resume).  Consumed by the
  service's launch path.
* ``drop_ingest`` — sever the session's ingest TCP stream after N
  chunks, with neither an end marker nor a close frame: the staged
  prefix is discarded and the session expires in place as
  ``orphaned-ingest``, never hangs.  The server cannot sever its own
  incoming connection, so this family is consumed by the client driver
  (``ServiceClient.ingest_ws(drop_after=...)``) in the tests.
* ``stall_ingest`` — stop consuming the session's ingest after N chunks
  (consumed by the service's stager via
  :func:`~repro.service.ingest.stage_stream`): the bounded buffer fills,
  back-pressure holds the producer, and the session's wall deadline
  resolves the stalemate.

Like every fault schedule in :mod:`repro.faults`, the plan is pure data:
same plan, same labels, same failures — a CI chaos run reproduces
locally byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class ServiceChaosPlan:
    """Failure schedule for a service fleet, keyed by session label.

    Attributes:
        kill_worker: label → kill the replay worker after this many
            records of its first segment (first attempt only; the
            supervisor restart runs clean).
        drop_ingest: label → close the ingest stream after this many
            chunks, without an end marker.
        stall_ingest: label → stop draining ingest after this many
            chunks (the buffer fills; back-pressure engages).
    """

    kill_worker: Dict[str, int] = field(default_factory=dict)
    drop_ingest: Dict[str, int] = field(default_factory=dict)
    stall_ingest: Dict[str, int] = field(default_factory=dict)

    def kill_after_records(self, label: str) -> Optional[int]:
        """Worker-kill point for ``label``, or None for a clean launch."""
        value = self.kill_worker.get(label)
        return int(value) if value is not None else None

    def ingest_drop_after(self, label: str) -> Optional[int]:
        value = self.drop_ingest.get(label)
        return int(value) if value is not None else None

    def ingest_stall_after(self, label: str) -> Optional[int]:
        value = self.stall_ingest.get(label)
        return int(value) if value is not None else None

    @property
    def is_zero(self) -> bool:
        """A zero plan perturbs nothing — the identity baseline."""
        return not (self.kill_worker or self.drop_ingest or self.stall_ingest)

    def to_dict(self) -> dict:
        return {
            "kill_worker": {
                label: int(self.kill_worker[label])
                for label in sorted(self.kill_worker)
            },
            "drop_ingest": {
                label: int(self.drop_ingest[label])
                for label in sorted(self.drop_ingest)
            },
            "stall_ingest": {
                label: int(self.stall_ingest[label])
                for label in sorted(self.stall_ingest)
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceChaosPlan":
        return cls(
            kill_worker=dict(data.get("kill_worker", {})),
            drop_ingest=dict(data.get("drop_ingest", {})),
            stall_ingest=dict(data.get("stall_ingest", {})),
        )
