"""Run every experiment and print the regenerated tables and figures.

Usage::

    python -m repro.experiments.run_all            # full (default) settings
    python -m repro.experiments.run_all --quick    # quick presets

The output of the full run is the source of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablations,
    fault_sweep,
    figure1_growth,
    firmware_studies,
    figure8_tracelen,
    figure9_sharing,
    figure10_profile,
    figure11_l3sweep,
    figure12_breakdown,
    io_effect,
    table1_survey,
    table2_params,
    table3_tracesim,
    table4_augmint,
    table5_splash_char,
    table6_missrates,
    webserver_scaling,
)


def _runners(quick: bool):
    def settings_of(module):
        names = [name for name in dir(module) if name.endswith("Settings")]
        if not names or not quick:
            return None
        cls = getattr(module, names[0])
        return cls.quick() if hasattr(cls, "quick") else None

    modules = [
        table1_survey,
        figure1_growth,
        table2_params,
        table3_tracesim,
        table4_augmint,
        figure8_tracelen,
        figure9_sharing,
        figure10_profile,
        table5_splash_char,
        table6_missrates,
        figure11_l3sweep,
        figure12_breakdown,
        io_effect,
        webserver_scaling,
        fault_sweep,
    ]
    for module in modules:
        yield module.__name__.rsplit(".", 1)[-1], lambda m=module: m.run(
            settings_of(m)
        )
    firmware_settings = (
        firmware_studies.FirmwareStudySettings.quick() if quick else None
    )
    for runner in (
        firmware_studies.hotspot_study,
        firmware_studies.tracer_continuity_study,
        firmware_studies.numa_directory_study,
        firmware_studies.remote_cache_study,
    ):
        yield runner.__name__, lambda r=runner: r(firmware_settings)
    ablation_settings = (
        ablations.AblationSettings.quick() if quick else None
    )
    for runner in (
        ablations.buffer_depth_ablation,
        ablations.protocol_ablation,
        ablations.replacement_ablation,
        ablations.inclusion_ablation,
        ablations.sdram_ablation,
    ):
        yield runner.__name__, lambda r=runner: r(ablation_settings)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use quick presets")
    parser.add_argument(
        "--only", nargs="*", default=None, help="run only the named experiments"
    )
    args = parser.parse_args(argv)

    total_started = time.perf_counter()
    for name, runner in _runners(args.quick):
        if args.only and not any(key in name for key in args.only):
            continue
        started = time.perf_counter()
        print(f"##### {name} " + "#" * max(1, 60 - len(name)))
        sys.stdout.flush()
        result = runner()
        elapsed = time.perf_counter() - started
        print(result)
        print(f"[{name}: {elapsed:.1f}s]")
        print()
        sys.stdout.flush()
    print(f"total: {time.perf_counter() - total_started:.0f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
