"""Table 6: SPLASH2 miss rates — previous-study sizes vs. realistic sizes.

The paper compares misses per thousand instructions for the original
SPLASH2 characterisation sizes (measured there against a 1 MB 4-way cache)
with its own realistic sizes on the S7A's 8 MB 2-way L2, and finds the two
"vastly different" — notably FFT's miss rate *drops* 18x at realistic sizes
(the six-step row working set fits the big L2) while the other codes rise.

The reproduction runs each kernel at both problem scales against the
correspondingly scaled cache (each size/cache pair keeps the paper's
footprint:cache ratio) and reports misses per thousand instructions using
the host's instruction model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.report import render_table
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.host.smp import HostSMP
from repro.workloads.base import Workload
from repro.workloads.splash import (
    BarnesWorkload,
    FftWorkload,
    FmmWorkload,
    OceanWorkload,
    WaterWorkload,
)

#: Paper values: misses per 1000 instructions (small size @1MB 4-way,
#: realistic size @8MB 2-way).
PAPER_TABLE6: Dict[str, Tuple[float, float]] = {
    "FMM": (0.33, 0.7),
    "FFT": (5.5, 0.3),
    "Ocean": (3.7, 8.2),
    "Water": (0.073, 0.2),
    "Barnes": (0.11, 0.3),
}

#: Our generators emit one reference per distinct line touch; real code
#: touches a 128 B line ~16 times at ~330 references per 1000 instructions.
LINE_REFS_PER_KILO_INSTRUCTION = 330.0 / 16.0


@dataclass(frozen=True)
class Table6Settings:
    """Scales for the two problem-size regimes.

    ``small_scale`` divides the original SPLASH2 sizes (and the 1 MB cache);
    ``large_scale`` divides the paper's realistic sizes (and the 8 MB
    cache).  Each regime preserves its footprint-to-cache ratio.
    """

    small_scale: int = 8
    large_scale: int = 1024
    n_refs: int = 400_000
    seed: int = 17

    @classmethod
    def quick(cls) -> "Table6Settings":
        return cls(small_scale=16, large_scale=2048, n_refs=120_000)


def _small_kernels(settings: Table6Settings) -> Dict[str, Workload]:
    s = settings.small_scale
    seed = settings.seed
    small_scale = ExperimentScale(scale=s)
    return {
        "FMM": FmmWorkload.splash2_scale(s, seed=seed),
        "FFT": FftWorkload(
            n_points=max(256, (1 << 16) // s),
            # 64K points: sqrt(n) = 256 -> 12KB rows, 8 butterfly stages;
            # transpose blocks are 32 points (tiny), so the communication
            # is scattered, and it is 1/8th of the work (1/log2 sqrt(n)).
            row_bytes=small_scale.scaled_bytes("12KB") if s <= 96 else 128,
            row_passes=8,
            local_fraction=0.875,
            transpose_scatter=True,
            seed=seed,
        ),
        "Ocean": OceanWorkload.splash2_scale(s, seed=seed),
        "Water": WaterWorkload.splash2_scale(s, seed=seed),
        "Barnes": BarnesWorkload.splash2_scale(s, seed=seed),
    }


def _large_kernels(settings: Table6Settings) -> Dict[str, Workload]:
    s = settings.large_scale
    seed = settings.seed
    large_scale = ExperimentScale(scale=s)
    return {
        "FMM": FmmWorkload.paper_scale(s, seed=seed),
        "FFT": FftWorkload(
            n_points=max(1024, (1 << 28) // s),
            # m=28: sqrt(n) = 16K points -> 768KB rows, 14 butterfly
            # stages; transpose blocks are 2K points (long sequential
            # runs) and only 1/14th of the work.
            row_bytes=large_scale.scaled_bytes("768KB"),
            row_passes=14,
            local_fraction=0.93,
            seed=seed,
        ),
        "Ocean": OceanWorkload.paper_scale(s, seed=seed),
        "Water": WaterWorkload.paper_scale(s, seed=seed),
        "Barnes": BarnesWorkload.paper_scale(s, seed=seed),
    }


def miss_rate_per_kilo_instruction(
    workload: Workload,
    host_scale: ExperimentScale,
    l2_size: str,
    l2_assoc: int,
    n_refs: int,
) -> float:
    """Misses per 1000 instructions for one kernel/cache pairing."""
    workload.reset()
    host = HostSMP(host_scale.host(l2_size=l2_size, l2_assoc=l2_assoc))
    host.run(workload.chunks(n_refs), max_references=n_refs)
    references = host.total_references()
    if references == 0:
        return 0.0
    instructions = references * 1000.0 / LINE_REFS_PER_KILO_INSTRUCTION
    return host.total_l2_misses() * 1000.0 / instructions


def run(settings: Optional[Table6Settings] = None) -> ExperimentResult:
    """Regenerate Table 6."""
    settings = settings or Table6Settings()
    small_scale = ExperimentScale(scale=settings.small_scale)
    large_scale = ExperimentScale(scale=settings.large_scale)
    small_kernels = _small_kernels(settings)
    large_kernels = _large_kernels(settings)

    rows = []
    data: Dict[str, dict] = {}
    for name in PAPER_TABLE6:
        paper_small, paper_large = PAPER_TABLE6[name]
        measured_small = miss_rate_per_kilo_instruction(
            small_kernels[name], small_scale, "1MB", 4, settings.n_refs
        )
        measured_large = miss_rate_per_kilo_instruction(
            large_kernels[name], large_scale, "8MB", 2, settings.n_refs
        )
        rows.append(
            [
                name,
                f"{paper_small:g}",
                f"{measured_small:.2f}",
                f"{paper_large:g}",
                f"{measured_large:.2f}",
                "down" if measured_large < measured_small else "up",
            ]
        )
        data[name] = {
            "paper_small": paper_small,
            "paper_large": paper_large,
            "measured_small": measured_small,
            "measured_large": measured_large,
        }
    table = render_table(
        [
            "Application",
            "SPLASH2 size @1MB/4w (paper)",
            "(measured)",
            "realistic size @8MB/2w (paper)",
            "(measured)",
            "direction",
        ],
        rows,
        title="Table 6: Miss rates (misses per 1000 instructions)",
    )
    notes = [
        "each size/cache pair is scaled by its own factor to preserve the "
        "paper's footprint:cache ratios; absolute rates depend on the "
        "line-touch model (16 touches per 128B line)",
        "the paper's headline finding — scaled sizes are 'vastly different' "
        "from realistic ones — reproduces; FMM/Ocean/Water/Barnes rise at "
        "realistic sizes as in the paper.  FFT's 18x *drop* does not: it "
        "stems from the single-shot, 32-64-processor runs behind the "
        "SPLASH2-size citation (cold transposes dominate one transform), "
        "which a steady-state 8-CPU reference stream cannot express",
    ]
    return ExperimentResult(name="table6", report=table, data=data, notes=notes)


if __name__ == "__main__":
    print(run(Table6Settings.quick()))
