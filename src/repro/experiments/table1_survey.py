"""Table 1: simulated vs. actual cache sizes in previous studies.

The table is a literature survey (sources [WOT+95][FW97][MNL+97][BDH+99]
[FW99]); we reproduce it as structured data plus the derived quantity the
paper's argument rests on — the widening gap between the largest cache
researchers simulate and the caches real machines ship.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import render_table
from repro.common.units import KB, MB, format_size
from repro.experiments.params import ExperimentResult


@dataclass(frozen=True)
class SurveyRow:
    """One row of Table 1."""

    year: int
    application: str
    problem_size: str
    simulated_processors: str
    simulated_l2_min: Optional[int]  # bytes; None = n/a
    simulated_l2_max: Optional[int]
    machine_l2: int
    machine_l3: Optional[int]


SURVEY: List[SurveyRow] = [
    SurveyRow(1995, "FFT", "64K points", "16-64", 8 * KB, 1 * MB, 512 * KB, None),
    SurveyRow(1995, "Barnes Hut", "16K bodies", "16-64", 8 * KB, 1 * MB, 512 * KB, None),
    SurveyRow(1995, "Water", "512 molecules", "16-64", 8 * KB, 1 * MB, 512 * KB, None),
    SurveyRow(1997, "FFT", "64K points", "32-64", 8 * KB, 1 * MB, 4 * MB, 32 * MB),
    SurveyRow(1997, "Barnes Hut", "16K bodies", "32-64", 8 * KB, 1 * MB, 4 * MB, 32 * MB),
    SurveyRow(1997, "Water", "512 molecules", "32-64", 8 * KB, 1 * MB, 4 * MB, 32 * MB),
    SurveyRow(1999, "FFT", "64K points", "32-64", 128 * KB, 512 * KB, 8 * MB, 32 * MB),
    SurveyRow(1999, "Barnes Hut", "16K bodies", "32-64", None, None, 8 * MB, 32 * MB),
    SurveyRow(1999, "Water", "512 molecules", "32-64", 128 * KB, 512 * KB, 8 * MB, 32 * MB),
]


def simulation_gap_by_year() -> Dict[int, float]:
    """Machine L2 size over the largest simulated L2, per survey year.

    The paper's point: this ratio grows from 0.5x (1995, simulations
    actually *exceeded* hardware) to 16x by 1999.
    """
    gaps: Dict[int, float] = {}
    for year in sorted({row.year for row in SURVEY}):
        rows = [r for r in SURVEY if r.year == year and r.simulated_l2_max]
        if not rows:
            continue
        largest_simulated = max(r.simulated_l2_max for r in rows)
        machine = max(r.machine_l2 for r in rows)
        gaps[year] = machine / largest_simulated
    return gaps


def run(settings: object = None) -> ExperimentResult:
    """Regenerate Table 1 and the derived simulation-gap series."""
    rows = []
    for row in SURVEY:
        simulated = (
            f"{format_size(row.simulated_l2_min)}-{format_size(row.simulated_l2_max)}"
            if row.simulated_l2_max
            else "n/a"
        )
        rows.append(
            [
                row.year,
                row.application,
                row.problem_size,
                row.simulated_processors,
                simulated,
                format_size(row.machine_l2),
                format_size(row.machine_l3) if row.machine_l3 else "n/a",
            ]
        )
    table = render_table(
        [
            "Year",
            "Application",
            "Problem size",
            "# sim procs",
            "Simulated L2",
            "Machine L2",
            "Machine L3",
        ],
        rows,
        title="Table 1: Simulated vs. actual cache sizes in previous studies",
    )
    gaps = simulation_gap_by_year()
    gap_table = render_table(
        ["Year", "machine L2 / largest simulated L2"],
        [[year, f"{gap:.1f}x"] for year, gap in gaps.items()],
        title="Derived: the widening simulation gap",
    )
    return ExperimentResult(
        name="table1",
        report=f"{table}\n\n{gap_table}",
        data={"rows": SURVEY, "gaps": gaps},
    )


if __name__ == "__main__":
    print(run())
