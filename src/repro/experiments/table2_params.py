"""Table 2: summary of cache emulation parameters.

The table is the board's hardware envelope.  Reproducing it means more than
printing four rows: the experiment sweeps the whole parameter lattice,
checking that every in-envelope combination passes validation (and fits the
node controller's 256 MB SDRAM, or is rejected with the directory-size
error) and that every out-of-envelope direction is refused — i.e. the
console software enforces exactly Table 2.
"""

from __future__ import annotations

from typing import List

from repro.analysis.report import render_table
from repro.common.errors import ConfigurationError
from repro.common.units import GB, KB, MB, format_size
from repro.experiments.params import ExperimentResult
from repro.memories.config import (
    CacheNodeConfig,
    MAX_ASSOC,
    MAX_CACHE_SIZE,
    MAX_LINE_SIZE,
    MAX_PROCS_PER_NODE,
    MIN_CACHE_SIZE,
    MIN_LINE_SIZE,
    NODE_SDRAM_BYTES,
)

SIZES = [2 * MB, 16 * MB, 128 * MB, 1 * GB, 8 * GB]
ASSOCS = [1, 2, 4, 8]
LINE_SIZES = [128, 512, 4 * KB, 16 * KB]
PROCS = [1, 2, 4, 8]

OUT_OF_ENVELOPE = [
    dict(size=1 * MB),                      # below 2 MB
    dict(size=16 * GB),                     # above 8 GB
    dict(size=16 * MB, assoc=16),           # above 8-way
    dict(size=16 * MB, line_size=64),       # below 128 B lines
    dict(size=16 * MB, line_size=32 * KB),  # above 16 KB lines
    dict(size=16 * MB, procs_per_node=12),  # above 8 CPUs/node
]


def sweep() -> tuple[int, int, List[str]]:
    """Validate the full lattice; returns (accepted, rejected, reject reasons)."""
    accepted = 0
    rejected = 0
    reasons: List[str] = []
    for size in SIZES:
        for assoc in ASSOCS:
            for line_size in LINE_SIZES:
                for procs in PROCS:
                    config = CacheNodeConfig(
                        size=size,
                        assoc=assoc,
                        line_size=line_size,
                        procs_per_node=procs,
                    )
                    try:
                        config.validate()
                    except ConfigurationError as exc:
                        rejected += 1
                        reasons.append(str(exc))
                    else:
                        accepted += 1
    return accepted, rejected, reasons


def run(settings: object = None) -> ExperimentResult:
    """Regenerate Table 2 and exercise the validation envelope."""
    table = render_table(
        ["Feature", "Parameters"],
        [
            ["Cache size", f"{format_size(MIN_CACHE_SIZE)} - {format_size(MAX_CACHE_SIZE)}"],
            ["Cache associativity", f"Direct mapped to {MAX_ASSOC}-way set associative"],
            ["Processors per shared cache node", f"1 - {MAX_PROCS_PER_NODE}"],
            ["Cache line size", f"{format_size(MIN_LINE_SIZE)} - {format_size(MAX_LINE_SIZE)}"],
        ],
        title="Table 2: Summary of cache emulation parameters",
    )

    accepted, rejected, reasons = sweep()
    directory_rejects = sum("SDRAM" in reason for reason in reasons)

    boundary_failures = 0
    for kwargs in OUT_OF_ENVELOPE:
        config = CacheNodeConfig(**{"size": 16 * MB, **kwargs})
        try:
            config.validate()
        except ConfigurationError:
            boundary_failures += 1

    summary = render_table(
        ["Check", "Result"],
        [
            ["in-envelope combinations accepted", accepted],
            ["combinations rejected (directory > 256MB SDRAM)", directory_rejects],
            ["other geometric rejections", rejected - directory_rejects],
            ["out-of-envelope probes refused", f"{boundary_failures}/{len(OUT_OF_ENVELOPE)}"],
        ],
        title="Envelope validation sweep",
    )
    note = (
        f"an 8GB cache with 128B lines needs a "
        f"{format_size(CacheNodeConfig(size=8 * GB, line_size=128).directory_bytes)} "
        f"directory and is rightly refused by the {format_size(NODE_SDRAM_BYTES)} "
        f"node SDRAM — the constraint that forces the 1KB L3 lines in Figure 12"
    )
    return ExperimentResult(
        name="table2",
        report=f"{table}\n\n{summary}",
        data={
            "accepted": accepted,
            "rejected": rejected,
            "directory_rejects": directory_rejects,
            "boundary_failures": boundary_failures,
        },
        notes=[note],
    )


if __name__ == "__main__":
    print(run())
