"""Shared scaling machinery for the experiment harness.

DESIGN.md's substitution rule in code: every experiment divides the paper's
footprints, cache sizes and trace lengths by one common ``scale`` factor, so
the *geometry* of each case study (working set : cache size : trace length)
matches the paper while the absolute work fits a laptop-scale Python run.

``ExperimentScale`` carries that factor plus helpers to build scaled host
and cache configurations; each experiment module defines default and quick
presets on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.errors import ConfigurationError
from repro.common.units import MB, parse_size
from repro.host.smp import HostConfig
from repro.memories.config import CacheNodeConfig


@dataclass(frozen=True)
class ExperimentScale:
    """Common scaling factor and derived configuration builders.

    Attributes:
        scale: divisor applied to every footprint and cache size.
        n_cpus: host processors (the paper's case studies use 8).
        line_size: cache line size used for scaled caches.  Kept at the
            host's 128 B rather than scaled — scaling it below the bus
            transfer unit would be meaningless.
    """

    scale: int = 1024
    n_cpus: int = 8
    line_size: int = 128

    def scaled_bytes(self, paper_size: int | str) -> int:
        """A paper-scale byte size divided by the scale factor."""
        size = parse_size(paper_size) // self.scale
        if size < self.line_size:
            raise ConfigurationError(
                f"{paper_size} scaled by {self.scale} drops below one line"
            )
        return size

    def cache(
        self,
        paper_size: int | str,
        assoc: int = 4,
        replacement: str = "lru",
        protocol: str = "mesi",
        name: str = "",
    ) -> CacheNodeConfig:
        """A scaled cache config (geometry-validated; Table 2 min size
        deliberately waived for scaled-down experiments)."""
        config = CacheNodeConfig(
            size=self.scaled_bytes(paper_size),
            assoc=assoc,
            line_size=self.line_size,
            procs_per_node=self.n_cpus,
            replacement=replacement,
            protocol=protocol,
            name=name or str(paper_size),
        )
        config.validate_geometry()
        return config

    def host(self, l2_size: int | str = 8 * MB, l2_assoc: int = 4) -> HostConfig:
        """The S7A host with its L2 scaled by the common factor.

        The paper reconfigures the host L2 at boot between 8 MB 4-way and
        1 MB direct-mapped (Section 5); pass those here.
        """
        return HostConfig(
            n_cpus=self.n_cpus,
            l2_size=self.scaled_bytes(l2_size),
            l2_assoc=l2_assoc,
            line_size=self.line_size,
        )


@dataclass
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes:
        name: artefact id ("figure8", "table3", ...).
        report: rendered text (the regenerated table/figure).
        data: structured results for tests and EXPERIMENTS.md.
        notes: caveats recorded during the run (scaling, deviations).
    """

    name: str
    report: str
    data: Dict[str, object] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        parts = [self.report]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)
