"""Figure 10: TPC-C miss-ratio profile over time with OS-journaling spikes.

Case Study 2: a multi-hour MemorIES profile of TPC-C showed "periodic
spikes in the miss ratio around every 5 minutes, no matter what cache size
is being modeled", later traced to a file-system journaling bug.  Two
properties make the figure: the spikes' *periodicity* (only visible in a
profile far longer than conventional traces) and their *cache-size
independence* (journal writes are cold traffic no cache absorbs) — the
paper plots a 16 MB direct-mapped and a 1 GB 8-way cache to make the point.

The reproduction injects the fault with
:class:`~repro.workloads.osjournal.JournalBugOverlay`, captures a long
trace, replays it through both cache configurations on one board, and
detects the spikes and their period in each node's interval profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.profiles import IntervalProfile, profile_replay
from repro.analysis.report import render_table
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.experiments.pipeline import capture_records
from repro.memories.board import board_for_machine
from repro.target.configs import multi_config_machine
from repro.workloads.osjournal import JOURNAL_BASE, JournalBugOverlay
from repro.workloads.tpcc import TpccWorkload


@dataclass(frozen=True)
class Figure10Settings:
    """Scales, fault-injection period and profiling interval."""

    scale: ExperimentScale = ExperimentScale(scale=1024)
    total_records: int = 600_000
    # The paper's spikes recur every ~5 minutes ~= 2 billion bus references;
    # scaled, one period is total/periods references.
    spike_periods: int = 10
    burst_fraction: float = 0.04
    intervals_per_period: int = 8
    seed: int = 9

    @classmethod
    def quick(cls) -> "Figure10Settings":
        return cls(total_records=200_000, spike_periods=8)


def run(settings: Optional[Figure10Settings] = None) -> ExperimentResult:
    """Regenerate Figure 10 and verify spike periodicity on both caches."""
    settings = settings or Figure10Settings()
    scale = settings.scale

    base = TpccWorkload(
        db_bytes=scale.scaled_bytes("150GB"),
        n_cpus=scale.n_cpus,
        private_bytes=scale.scaled_bytes("8MB"),
        p_private=0.05,
        p_common=0.4,
        common_region_bytes=scale.scaled_bytes("48MB"),
        common_write_fraction=0.02,
        affine_region_bytes=scale.scaled_bytes("2GB"),
        zipf_exponent=1.5,
        seed=settings.seed,
    )
    # Reference-domain period chosen so the requested number of spike
    # periods lands inside the captured trace.
    period_refs = max(1000, settings.total_records // settings.spike_periods)
    burst_refs = max(100, int(period_refs * settings.burst_fraction))
    workload = JournalBugOverlay(
        base, period_refs=period_refs, burst_refs=burst_refs
    )
    capture_stats: dict = {}
    trace = capture_records(
        workload, settings.total_records, scale.host(), stats_out=capture_stats
    )

    machine = multi_config_machine(
        [
            scale.cache("16MB", assoc=1, name="16MB direct-mapped"),
            scale.cache("1GB", assoc=8, name="1GB 8-way"),
        ],
        n_cpus=scale.n_cpus,
        name="figure10",
    )
    board = board_for_machine(machine, seed=settings.seed)
    interval_records = max(
        500, settings.total_records // (settings.spike_periods * settings.intervals_per_period)
    )
    profiles: List[IntervalProfile] = profile_replay(board, trace, interval_records)

    # The injection period is set in the reference domain; bursts are
    # denser on the bus than base traffic (every journal write misses and
    # later casts out), so locate the ground-truth period in the record
    # domain by counting journal records in the captured trace.
    _cpu, _cmd, trace_addresses, _resp = trace.arrays()
    journal_records = int((trace_addresses >= JOURNAL_BASE).sum())
    bursts_in_trace = max(1.0, journal_records / (2.0 * burst_refs))
    expected_period_intervals = len(trace) / bursts_in_trace / interval_records
    warmup = settings.intervals_per_period  # skip the cold-start period
    rows = []
    for spec, profile in zip(machine.nodes, profiles):
        period = profile.spike_period(rel_delta=0.25, skip=warmup)
        rows.append(
            [
                spec.config.name,
                len(profile.miss_ratios),
                len(profile.spike_indices(rel_delta=0.25, skip=warmup)),
                f"{period:.1f}" if period else "n/a",
                f"{expected_period_intervals:.1f}",
            ]
        )
    summary = render_table(
        ["Cache", "intervals", "spikes", "measured period", "injected period"],
        rows,
        title="Figure 10: periodic miss-ratio spikes (intervals)",
    )

    # A text sketch of the profile itself, one char per interval.
    sketches = []
    for spec, profile in zip(machine.nodes, profiles):
        values = profile.miss_ratios
        peak = max(values) if values else 1.0
        sketch = "".join(
            " .:-=+*#%@"[min(9, int(10 * value / peak))] if peak else " "
            for value in values
        )
        sketches.append(f"{spec.config.name:>20s} |{sketch}|")
    report = summary + "\n\nminiature profile (miss ratio per interval):\n" + "\n".join(
        sketches
    )

    notes = [
        "spikes appear at the injected period in BOTH cache sizes — the "
        "signature that told the authors the problem was software, not "
        "cache design",
    ]
    return ExperimentResult(
        name="figure10",
        report=report,
        data={
            "profiles": profiles,
            "expected_period_intervals": expected_period_intervals,
            "configs": [spec.config for spec in machine.nodes],
        },
        notes=notes,
    )


if __name__ == "__main__":
    print(run(Figure10Settings.quick()))
