"""Figure 9: L3 miss ratio vs. processors per shared L3, short vs. long traces.

Case Study 1's second finding.  Eight processors, 64 MB of L3 per cache;
the design question is whether to share one L3 among all 8 or to give
smaller groups their own.  "The long trace results indicate that miss ratio
increases with increasing number of processors per L3 cache, while the
short trace results indicate an opposite trend":

* short traces are cold-dominated, and processors sharing a cache prefetch
  each other's common data — sharing looks good;
* at steady state each processor's affine working set must coexist in the
  shared cache, the aggregate exceeds it, and sharing looks bad.

The reproduction replays prefixes of one TPC-C capture through four target
machines (1, 2, 4 and 8 processors per node; the 8-node target emulates its
first four nodes, the board's controller budget, with the remaining CPUs
contributing coherence traffic as unmapped masters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.ascii_chart import render_chart
from repro.analysis.report import render_series
from repro.analysis.stats import MissCurve, crossover_exists
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.experiments.pipeline import capture_records, replay_machine
from repro.target.configs import split_smp_machine
from repro.workloads.tpcc import TpccWorkload

#: Paper configuration: 64 MB L3 per cache, 8 processors total.
PAPER_L3 = "64MB"
SHARING_DEGREES = (1, 2, 4, 8)


@dataclass(frozen=True)
class Figure9Settings:
    """Scales and trace lengths for the Figure 9 reproduction."""

    scale: ExperimentScale = ExperimentScale(scale=512)
    # Paper: 10 billion vs 45 million L3 references; lengths follow the
    # same coverage ratios at the reproduction scale.
    long_records: int = 600_000
    short_records: int = 12_000
    sharing_degrees: Sequence[int] = SHARING_DEGREES
    # TPC-C traffic decomposition (calibrated; see DESIGN.md):
    # a read-mostly bounded common working set (index upper levels) sized
    # at 3/4 of the 64 MB cache, plus per-process affine working sets.
    common_region: str = "48MB"
    p_common: float = 0.5
    common_write_fraction: float = 0.02
    affine_region: str = "2GB"
    zipf_exponent: float = 1.5
    seed: int = 5

    @classmethod
    def quick(cls) -> "Figure9Settings":
        return cls(
            scale=ExperimentScale(scale=1024),
            long_records=300_000,
            short_records=6_000,
        )


def _machine_for_degree(settings: Figure9Settings, degree: int):
    config = settings.scale.cache(PAPER_L3)
    return split_smp_machine(
        config,
        n_cpus=settings.scale.n_cpus,
        procs_per_node=degree,
        truncate=True,
        name=f"{degree}-proc",
    )


def run(settings: Optional[Figure9Settings] = None) -> ExperimentResult:
    """Regenerate both panels of Figure 9."""
    settings = settings or Figure9Settings()
    scale = settings.scale

    workload = TpccWorkload(
        db_bytes=scale.scaled_bytes("150GB"),
        n_cpus=scale.n_cpus,
        private_bytes=scale.scaled_bytes("8MB"),
        p_private=0.05,
        p_common=settings.p_common,
        common_region_bytes=scale.scaled_bytes(settings.common_region),
        common_write_fraction=settings.common_write_fraction,
        affine_region_bytes=scale.scaled_bytes(settings.affine_region),
        zipf_exponent=settings.zipf_exponent,
        seed=settings.seed,
    )
    long_trace = capture_records(workload, settings.long_records, scale.host())
    traces = {
        "short trace (45M-ref analogue)": long_trace.head(settings.short_records),
        "long trace (10B-ref analogue)": long_trace,
    }

    curves: List[MissCurve] = []
    for name, trace in traces.items():
        curve = MissCurve(name=name)
        for degree in settings.sharing_degrees:
            board = replay_machine(
                trace, _machine_for_degree(settings, degree), seed=settings.seed
            )
            nodes = board.firmware.nodes
            refs = sum(node.references() for node in nodes)
            misses = sum(node.misses() for node in nodes)
            curve.add(
                degree,
                misses / refs if refs else 0.0,
                label=f"{degree} proc",
            )
        curves.append(curve)

    report = "\n\n".join(
        [
            render_series(
                curves,
                title=(
                    f"Figure 9: L3 miss ratio vs processors per {PAPER_L3} L3 "
                    f"(scale 1/{scale.scale})"
                ),
                x_header="procs per L3",
            ),
            render_chart(curves),
        ]
    )
    short_ys = curves[0].ys()
    long_ys = curves[1].ys()
    has_crossover = crossover_exists(short_ys, long_ys)
    notes = [
        f"crossover (short trace favours sharing, long trace penalises it): "
        f"{'REPRODUCED' if has_crossover else 'NOT reproduced'}",
    ]
    return ExperimentResult(
        name="figure9",
        report=report,
        data={"curves": curves, "crossover": has_crossover},
        notes=notes,
    )


if __name__ == "__main__":
    print(run(Figure9Settings.quick()))
