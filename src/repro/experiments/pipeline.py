"""Reusable experiment pipeline: capture a trace once, sweep many caches.

The paper's case studies all share one methodology: run the workload on the
host (with MemorIES collecting the bus trace in real time), then evaluate
many cache configurations against the *same* reference stream — up to four
at a time on one board (Figure 4's multi-configuration mode).  These helpers
encode that pipeline so each experiment module stays declarative.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.bus.trace import BusTrace
from repro.host.smp import HostConfig, HostSMP
from repro.memories.board import MemoriesBoard, board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.memories.firmware.tracer import TraceCollectorFirmware
from repro.target.configs import multi_config_machine
from repro.target.mapping import MAX_EMULATED_NODES
from repro.workloads.base import Workload

if TYPE_CHECKING:
    from repro.supervisor import SupervisedRunResult
    from repro.telemetry.sink import TelemetrySink
    from repro.telemetry.spans import RunTrace


def capture_records(
    workload: Workload,
    n_records: int,
    host_config: HostConfig,
    chunk_size: int = 65536,
    max_references: Optional[int] = None,
    stats_out: Optional[dict] = None,
    run_trace: Optional["RunTrace"] = None,
) -> BusTrace:
    """Run ``workload`` on the host until ``n_records`` bus records exist.

    Unlike :func:`repro.workloads.capture.capture_bus_trace` (which runs a
    fixed number of processor references), this drives the host until the
    board's trace buffer holds the requested number of *bus* records — the
    unit the paper's trace-length case study is denominated in.

    Args:
        stats_out: optional dict that receives ``references`` (processor
            references executed) and ``records_per_reference`` — needed when
            an experiment must convert between the reference and bus-record
            domains (e.g. Figure 10's injection period).
        run_trace: optional :class:`repro.telemetry.RunTrace`; the whole
            capture is timed as one ``capture`` span on the host bus's
            cycle clock.
    """
    host = HostSMP(host_config)
    tracer = TraceCollectorFirmware(capacity=n_records)
    board = MemoriesBoard(tracer, name="capture")
    host.plug_in(board)
    references = 0
    limit = max_references if max_references is not None else n_records * 100
    chunks = workload.chunks(limit, chunk_size)
    if run_trace is not None:
        run_trace.bind_clock(lambda: float(host.bus.stats.total_cycles))
        context = run_trace.span("capture", records=n_records)
    else:
        context = nullcontext()
    with context:
        for cpu_ids, addresses, is_writes in chunks:
            host.run_chunk(cpu_ids, addresses, is_writes)
            references += len(cpu_ids)
            if tracer.writer.full:
                break
    if run_trace is not None:
        run_trace.bind_clock(None)
    trace = tracer.to_trace()
    if stats_out is not None:
        stats_out["references"] = references
        stats_out["records_per_reference"] = (
            len(trace) / references if references else 0.0
        )
    return trace


def l3_size_sweep_nodes(
    trace: BusTrace,
    configs: Sequence[CacheNodeConfig],
    n_cpus: int = 8,
    seed: int = 0,
    telemetry_sink: Optional["TelemetrySink"] = None,
    sample_every: Optional[int] = None,
) -> List:
    """Replay one trace against many single-node cache configs.

    Configurations are grouped four at a time onto multi-configuration
    boards (one coherence group each), exactly as the real board evaluates
    "multiple cache structures for the same workload in parallel".

    Returns the node controllers, one per configuration in input order, so
    callers can read any counter (miss ratios, satisfied breakdowns, ...).
    With ``telemetry_sink`` given, each batch board emits a counter time
    series (labels ``sweep0``, ``sweep1``, ...) so the sweep's miss
    ratios can be watched converging instead of only read at the end.
    """
    nodes: List = []
    for batch_index, start in enumerate(range(0, len(configs), MAX_EMULATED_NODES)):
        batch = list(configs[start : start + MAX_EMULATED_NODES])
        machine = multi_config_machine(batch, n_cpus=n_cpus)
        board = board_for_machine(machine, seed=seed)
        if telemetry_sink is not None:
            from repro.telemetry import CounterSampler

            board.attach_telemetry(
                CounterSampler(
                    telemetry_sink,
                    every_transactions=sample_every,
                    label=f"sweep{batch_index}",
                )
            )
        board.replay(trace)
        if board.telemetry is not None:
            board.telemetry.finish(board)
        nodes.extend(board.firmware.nodes)
    return nodes


def l3_size_sweep(
    trace: BusTrace,
    configs: Sequence[CacheNodeConfig],
    n_cpus: int = 8,
    seed: int = 0,
) -> List[float]:
    """Like :func:`l3_size_sweep_nodes`, returning just the miss ratios."""
    return [
        node.miss_ratio()
        for node in l3_size_sweep_nodes(trace, configs, n_cpus, seed)
    ]


def replay_machine(
    trace: BusTrace,
    machine,
    seed: int = 0,
    telemetry_sink: Optional["TelemetrySink"] = None,
    sample_every: Optional[int] = None,
    run_trace: Optional["RunTrace"] = None,
) -> MemoriesBoard:
    """Replay a trace through a board programmed with ``machine``.

    Optional observability: ``telemetry_sink`` attaches a counter sampler
    (cadence ``sample_every`` transactions) and flushes its final window
    after the replay; ``run_trace`` times the replay as a span on the
    board's cycle clock.
    """
    board = board_for_machine(machine, seed=seed)
    if telemetry_sink is not None:
        from repro.telemetry import CounterSampler

        board.attach_telemetry(
            CounterSampler(
                telemetry_sink,
                every_transactions=sample_every,
                label=machine.name,
            )
        )
    if run_trace is not None:
        board.attach_telemetry(run_trace=run_trace)
    board.replay(trace)
    if board.telemetry is not None:
        board.telemetry.finish(board)
    return board


def validate_sharding(machine, shards: int, board: Optional[MemoriesBoard] = None) -> int:
    """Check ``machine`` can be replayed in ``shards`` set-interleaved parts.

    Returns the shard shift (the address bit where the shard index field
    starts).  Sharding partitions the trace by address bits that fall
    inside **every** node's set-index field, so no cache set — and hence
    no directory line, replacement-policy position, or per-set hit/miss
    decision — is ever touched by two workers.  The merged statistics are
    then bit-identical to a serial replay.  Raises
    :class:`~repro.common.errors.ConfigurationError` when a feature breaks
    that argument:

    * ``random`` replacement draws victims from one board-wide RNG stream,
      whose draw order depends on global (not per-set) miss order;
    * an SDRAM timing model or a transaction-buffer service time longer
      than the bus tenure lets queue depth exceed one, making occupancy
      history depend on global arrival order;
    * a shard field wider than some node's set-index field would split one
      of that node's sets across workers.

    Those arguments are no longer checked here: the engine registry's
    static capability prover (:func:`repro.engines.registry.decide`)
    evaluates the ``sharded`` engine's declared requirements against the
    board, and this helper raises from the resulting decision — so the
    CLI's ``verify engines`` shows exactly the verdict replay will act on.
    """
    from repro.common.errors import ConfigurationError
    from repro.engines.registry import decide

    decision = decide("sharded", board=board, machine=machine, shards=shards)
    if not decision.eligible:
        raise ConfigurationError(decision.reason())
    return decision.shard_shift


def sharded_replay(
    trace: BusTrace,
    machine,
    shards: int,
    seed: int = 0,
    assumed_utilization: Optional[float] = None,
    processes: bool = True,
) -> MemoriesBoard:
    """Replay a trace split by set index across ``shards`` workers.

    The trace is partitioned on address bits inside every node's set-index
    field (:func:`validate_sharding`), each partition replays on a private
    board — in worker processes, or inline with ``processes=False`` — and
    the counter banks merge wrap-aware back into one board.  The returned
    board's :meth:`~repro.memories.board.MemoriesBoard.statistics` are
    bit-identical to :func:`replay_machine` on the same trace.

    ``shards=1`` degenerates to a plain serial replay (no partitioning,
    no worker overhead) and is always valid.
    """
    from repro.bus.trace import decode_arrays
    from repro.memories.board import DEFAULT_ASSUMED_UTILIZATION
    from repro.supervisor.worker import merge_shard_payloads, shard_worker_main

    if assumed_utilization is None:
        assumed_utilization = DEFAULT_ASSUMED_UTILIZATION
    board = board_for_machine(
        machine, seed=seed, assumed_utilization=assumed_utilization
    )
    if shards == 1:
        board.replay(trace)
        return board
    shard_shift = validate_sharding(machine, shards, board)

    words = trace.words
    _cpus, _commands, addresses, _responses = decode_arrays(words)
    shard_of = (addresses >> shard_shift) & (shards - 1)
    tasks = [
        {
            "machine": machine,
            "seed": seed,
            "assumed_utilization": assumed_utilization,
            "words": words[shard_of == shard],
        }
        for shard in range(shards)
    ]
    if processes:
        from repro.supervisor.supervisor import _mp_context

        with _mp_context().Pool(processes=shards) as pool:
            payloads = pool.map(shard_worker_main, tasks)
    else:
        payloads = [shard_worker_main(task) for task in tasks]
    merge_shard_payloads(board, payloads)
    # Reconstruct the serial clock: the merged counters correspond to a
    # serial replay of every record, whose clock is len(words) repeated
    # additions of cycles_per_tenure (cumsum matches that accumulation
    # bit for bit; see the batched engine).
    count = int(words.shape[0])
    if count:
        import numpy as np

        steps = np.full(count, board.cycles_per_tenure, dtype=np.float64)
        board.now_cycle = float(np.cumsum(steps)[-1])
    return board


def supervised_replay(
    trace: BusTrace,
    machine,
    run_dir,
    seed: int = 0,
    ecc: bool = False,
    segment_records: int = 5_000,
) -> "SupervisedRunResult":
    """Crash-safe variant of :func:`replay_machine` for long runs.

    Stages ``trace`` into ``run_dir`` and replays it in journaled,
    checkpointed segments under a :class:`~repro.supervisor.RunSupervisor`
    (see :mod:`repro.supervisor`).  Interrupted runs resume from the last
    committed checkpoint when called again with the same ``run_dir``;
    the final counters are bit-identical to :func:`replay_machine` either
    way.  Returns the :class:`~repro.supervisor.SupervisedRunResult`
    (statistics snapshot, per-node miss ratios, degradation accounting).
    """
    from pathlib import Path

    from repro.supervisor import RunSupervisor, SupervisedRunSpec

    run_dir = Path(run_dir)
    if (run_dir / RunSupervisor.JOURNAL_NAME).exists():
        supervisor = RunSupervisor.open(run_dir)
    else:
        spec = SupervisedRunSpec(
            machine=machine,
            seed=seed,
            ecc=ecc,
            segment_records=segment_records,
        )
        supervisor = RunSupervisor.create(spec, trace, run_dir)
    return supervisor.run()
