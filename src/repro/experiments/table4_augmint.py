"""Table 4: execution times, Augmint vs. MemorIES (SPLASH2 FFT, 8 threads).

The modeled columns come from :mod:`repro.sim.timing` (per-event Augmint
cost and an n·log n host-runtime model, both calibrated to the paper's m=20
anchors).  The measured column runs this repository's execution-driven
simulator on a scaled FFT, demonstrating the same methodology gap — an
execution-driven simulator pays a large constant per memory event, while the
host (observed in real time by the board) pays roughly a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.analysis.report import render_table
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.sim.augmint import AugmintModel
from repro.sim.timing import (
    augmint_runtime_seconds,
    fft_host_runtime_seconds,
    fft_reference_count,
)
from repro.workloads.splash.fft import FftWorkload

#: Table 4 rows: (m, paper Augmint time, paper host/MemorIES time).
PAPER_ROWS = [
    (20, "47 minutes", "3 seconds"),
    (22, "3.2 hours", "13 seconds"),
    (24, "13 hours", "53 seconds"),
    (26, "> 2 days", "196 seconds"),
]


@dataclass(frozen=True)
class Table4Settings:
    """Knobs for the measured execution-driven run."""

    scale: ExperimentScale = ExperimentScale()
    measured_m: int = 14          # FFT size actually executed in Python
    measured_refs: int = 200_000  # instrumented events to execute
    seed: int = 11

    @classmethod
    def quick(cls) -> "Table4Settings":
        return cls(measured_refs=40_000)


def _format_seconds(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.1f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} min"
    if seconds < 2 * 86400:
        return f"{seconds / 3600:.1f} h"
    return f"{seconds / 86400:.1f} days"


def run(settings: Optional[Table4Settings] = None) -> ExperimentResult:
    """Regenerate Table 4 with modeled columns and a measured sample."""
    settings = settings or Table4Settings()

    rows: List[List[object]] = []
    slowdowns = []
    for m, paper_augmint, paper_host in PAPER_ROWS:
        modeled_augmint = augmint_runtime_seconds(m)
        modeled_host = fft_host_runtime_seconds(m)
        slowdowns.append(modeled_augmint / modeled_host)
        rows.append(
            [
                m,
                paper_augmint,
                _format_seconds(modeled_augmint),
                paper_host,
                _format_seconds(modeled_host),
                f"{modeled_augmint / modeled_host:.0f}x",
            ]
        )
    table = render_table(
        [
            "FFT m",
            "Augmint (paper)",
            "Augmint (modeled)",
            "MemorIES (paper)",
            "MemorIES (modeled)",
            "slowdown",
        ],
        rows,
        title="Table 4: Execution time of Augmint vs. MemorIES (FFT, 8 threads)",
    )

    # Measured sample: actually execute a scaled FFT under the
    # execution-driven model and report its modeled simulation time.
    workload = FftWorkload(n_points=1 << settings.measured_m, seed=settings.seed)
    model = AugmintModel(settings.scale.cache("64MB"))
    measured = model.run(workload, settings.measured_refs)
    events_full = fft_reference_count(settings.measured_m)
    notes = [
        (
            f"measured: execution-driven run of FFT m={settings.measured_m} "
            f"({settings.measured_refs:,} of ~{events_full:,.0f} events) took "
            f"{measured.measured_seconds:.2f} s of Python and models to "
            f"{_format_seconds(measured.modeled_seconds)} of 133MHz Augmint time"
        ),
        f"modeled Augmint-vs-host slowdown spans {min(slowdowns):.0f}x-{max(slowdowns):.0f}x "
        "(the paper's multiprocessor slowdowns for execution-driven simulation)",
    ]
    return ExperimentResult(
        name="table4",
        report=table,
        data={
            "paper_rows": PAPER_ROWS,
            "modeled_augmint_seconds": [augmint_runtime_seconds(m) for m, _a, _h in PAPER_ROWS],
            "modeled_host_seconds": [fft_host_runtime_seconds(m) for m, _a, _h in PAPER_ROWS],
            "measured": measured,
        },
        notes=notes,
    )


if __name__ == "__main__":
    print(run())
