"""Extension experiments for the Section 2.3 alternate firmware images.

The paper describes four non-default firmware functions without tabulating
them; these studies give each one a quantitative result:

* :func:`hotspot_study` — plant hot lines in a workload and verify the
  hot-spot profiler ranks them first ("identify hot spots in cache lines or
  in memory pages ... for OS and application tuning").
* :func:`tracer_continuity_study` — compare the board's gap-free capture
  against a logic-analyzer model that must stop the world to dump its
  buffer ("the program that is running must be periodically stopped ...
  MemorIES requires no such stoppage").
* :func:`numa_directory_study` — sweep the sparse-directory size and
  measure eviction-invalidations, the cost knob of sparse directories
  [WEB93].
* :func:`remote_cache_study` — sweep the remote-cache size and measure the
  fraction of remote-home misses it absorbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.report import render_table
from repro.bus.trace import BusTrace
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.experiments.pipeline import capture_records
from repro.memories.board import MemoriesBoard
from repro.memories.firmware.hotspot import HotSpotFirmware
from repro.memories.firmware.numa_directory import NumaDirectoryFirmware
from repro.memories.firmware.remote_cache import RemoteCacheFirmware
from repro.workloads.osjournal import JOURNAL_BASE, JournalBugOverlay
from repro.workloads.tpcc import TpccWorkload


@dataclass(frozen=True)
class FirmwareStudySettings:
    """Shared knobs for the firmware studies."""

    scale: ExperimentScale = ExperimentScale(scale=1024)
    records: int = 150_000
    seed: int = 41

    @classmethod
    def quick(cls) -> "FirmwareStudySettings":
        return cls(scale=ExperimentScale(scale=2048), records=60_000)


def _tpcc(settings: FirmwareStudySettings) -> TpccWorkload:
    scale = settings.scale
    return TpccWorkload(
        db_bytes=scale.scaled_bytes("150GB"),
        n_cpus=scale.n_cpus,
        private_bytes=scale.scaled_bytes("8MB"),
        p_private=0.05,
        p_common=0.4,
        common_region_bytes=scale.scaled_bytes("48MB"),
        common_write_fraction=0.02,
        affine_region_bytes=scale.scaled_bytes("2GB"),
        zipf_exponent=1.5,
        seed=settings.seed,
    )


# ---------------------------------------------------------------------- #
# Hot-spot identification
# ---------------------------------------------------------------------- #

def hotspot_study(
    settings: Optional[FirmwareStudySettings] = None,
) -> ExperimentResult:
    """Check the profiler attributes heat to the regions we know are hot.

    The TPC-C generator has ground truth built in: the per-process private
    scratch regions take frequent *writes*, while the shared common working
    set (index upper levels) is *read*-hot and nearly write-free.  A
    correct profiler must rank private pages at the top of the write table
    and common-region pages at the top of the read table — the separation
    an OS tuner would act on.
    """
    settings = settings or FirmwareStudySettings()
    workload = _tpcc(settings)
    trace = capture_records(workload, settings.records, settings.scale.host())

    firmware = HotSpotFirmware(granularity_bytes=4096)
    MemoriesBoard(firmware).replay(trace)

    private_limit = workload._db_base  # private regions precede the database
    common_limit = (
        workload._db_base + workload.common_region_lines * 128
    )

    def origin_of(region: int) -> str:
        address = firmware.region_address(region)
        if address < private_limit:
            return "private scratch"
        if address < common_limit:
            return "common working set"
        return "database (affine)"

    top_writes = firmware.hottest(10, kind="writes")
    top_reads = firmware.hottest(10, kind="reads")
    writes_private = sum(
        1 for region, _count in top_writes if origin_of(region) == "private scratch"
    )
    reads_common = sum(
        1
        for region, _count in top_reads
        if origin_of(region) == "common working set"
    )

    rows = [
        ["writes", f"{firmware.region_address(r):#012x}", c, origin_of(r)]
        for r, c in top_writes[:5]
    ] + [
        ["reads", f"{firmware.region_address(r):#012x}", c, origin_of(r)]
        for r, c in top_reads[:5]
    ]
    table = render_table(
        ["table", "page", "touches", "origin"],
        rows,
        title="Hot-spot firmware: hottest pages by access type",
    )
    notes = [
        f"{writes_private}/10 hottest write pages are private scratch and "
        f"{reads_common}/10 hottest read pages are the common working set — "
        "the read/write separation the Section 2.3 tuning use case needs",
    ]
    return ExperimentResult(
        "hotspot_study",
        table,
        {
            "writes_private": writes_private,
            "reads_common": reads_common,
            "top_writes": top_writes,
            "top_reads": top_reads,
        },
        notes,
    )


# ---------------------------------------------------------------------- #
# Gap-free trace collection vs a logic analyzer
# ---------------------------------------------------------------------- #

def tracer_continuity_study(
    settings: Optional[FirmwareStudySettings] = None,
    analyzer_buffer: int = 8_192,
    dump_gap_records: int = 24_576,
) -> ExperimentResult:
    """Quantify what a stop-and-dump logic analyzer misses.

    The analyzer model fills its small buffer, then goes blind for the
    records that pass while it dumps to disk; MemorIES records everything.
    The study injects periodic journal bursts and counts how many bursts
    each tool observed.
    """
    settings = settings or FirmwareStudySettings()
    base = _tpcc(settings)
    period = 15_000
    workload = JournalBugOverlay(base, period_refs=period, burst_refs=800)
    trace = capture_records(workload, settings.records, settings.scale.host())

    _cpus, _commands, addresses, _responses = trace.arrays()
    journal_mask = addresses >= JOURNAL_BASE

    def bursts_in(mask: np.ndarray) -> int:
        indices = np.where(mask)[0]
        if indices.size == 0:
            return 0
        return int(1 + (np.diff(indices) > 2_000).sum())

    # The logic analyzer: capture analyzer_buffer records, miss the next
    # dump_gap_records, repeat.
    cycle = analyzer_buffer + dump_gap_records
    positions = np.arange(len(trace))
    analyzer_visible = (positions % cycle) < analyzer_buffer

    board_bursts = bursts_in(journal_mask)
    analyzer_bursts = bursts_in(journal_mask & analyzer_visible)
    coverage = analyzer_visible.mean()

    table = render_table(
        ["collector", "records captured", "journal bursts seen"],
        [
            ["MemorIES (gap-free)", f"{len(trace):,}", board_bursts],
            [
                f"logic analyzer ({analyzer_buffer // 1024}K buffer)",
                f"{int(analyzer_visible.sum()):,}",
                analyzer_bursts,
            ],
        ],
        title="Trace collection: continuous capture vs stop-and-dump",
    )
    notes = [
        f"the analyzer sees only {coverage:.0%} of the bus and "
        f"{analyzer_bursts}/{board_bursts} of the periodic bursts — gaps are "
        "exactly where Figure 10-class phenomena hide",
    ]
    return ExperimentResult(
        "tracer_continuity",
        table,
        {
            "board_bursts": board_bursts,
            "analyzer_bursts": analyzer_bursts,
            "coverage": float(coverage),
        },
        notes,
    )


# ---------------------------------------------------------------------- #
# Sparse-directory sizing
# ---------------------------------------------------------------------- #

def numa_directory_study(
    settings: Optional[FirmwareStudySettings] = None,
    entry_counts: Sequence[int] = (256, 1024, 4096, 16384),
) -> ExperimentResult:
    """Sweep sparse-directory capacity; measure eviction invalidations."""
    settings = settings or FirmwareStudySettings()
    trace = capture_records(
        _tpcc(settings), settings.records, settings.scale.host()
    )
    cpu_nodes = [cpu % 4 for cpu in range(settings.scale.n_cpus)]
    rows: List[List[object]] = []
    data = {}
    for entries in entry_counts:
        firmware = NumaDirectoryFirmware(
            l3_config=settings.scale.cache("64MB"),
            cpu_nodes=cpu_nodes,
            sparse_entries=entries,
        )
        MemoriesBoard(firmware).replay(trace)
        counters = firmware.counters
        refs = counters.read("l3.hits") + counters.read("l3.misses")
        evictions = counters.read("sparse.evictions")
        invalidations = counters.read("invalidations.sent")
        miss_ratio = counters.read("l3.misses") / refs if refs else 0.0
        rows.append(
            [
                entries,
                evictions,
                invalidations,
                f"{miss_ratio * 100:.2f}%",
                f"{firmware.remote_access_fraction():.1%}",
            ]
        )
        data[entries] = {
            "evictions": evictions,
            "invalidations": invalidations,
            "miss_ratio": miss_ratio,
        }
    table = render_table(
        [
            "sparse entries",
            "directory evictions",
            "invalidations sent",
            "L3 miss ratio",
            "remote accesses",
        ],
        rows,
        title="NUMA sparse-directory sizing (4 home nodes)",
    )
    notes = [
        "a too-sparse directory evicts live entries and invalidates cached "
        "lines, inflating the miss ratio — the sizing trade-off of [WEB93]",
    ]
    return ExperimentResult("numa_directory_study", table, data, notes)


# ---------------------------------------------------------------------- #
# Remote-cache sizing
# ---------------------------------------------------------------------- #

def remote_cache_study(
    settings: Optional[FirmwareStudySettings] = None,
    sizes: Sequence[str] = ("8MB", "32MB", "128MB", "512MB"),
) -> ExperimentResult:
    """Sweep the remote-cache size; measure remote-miss absorption."""
    settings = settings or FirmwareStudySettings()
    trace = capture_records(
        _tpcc(settings), settings.records, settings.scale.host()
    )
    cpu_nodes = [cpu % 4 for cpu in range(settings.scale.n_cpus)]
    rows: List[List[object]] = []
    data = {}
    for size in sizes:
        firmware = RemoteCacheFirmware(
            l3_config=settings.scale.cache("16MB"),
            remote_config=settings.scale.cache(size),
            cpu_nodes=cpu_nodes,
        )
        MemoriesBoard(firmware).replay(trace)
        hit_ratio = firmware.remote_hit_ratio()
        rows.append(
            [
                size,
                firmware.counters.read("remote.references"),
                f"{hit_ratio:.1%}",
            ]
        )
        data[size] = hit_ratio
    table = render_table(
        ["remote cache (paper scale)", "remote-home L3 misses", "absorbed"],
        rows,
        title="Remote-cache sizing (4 NUMA nodes, 16MB L3s)",
    )
    values = list(data.values())
    notes = [
        f"a larger remote cache absorbs more interconnect trips: "
        f"{values[0]:.1%} -> {values[-1]:.1%} across the sweep",
    ]
    return ExperimentResult("remote_cache_study", table, data, notes)


if __name__ == "__main__":
    quick = FirmwareStudySettings.quick()
    for runner in (
        hotspot_study,
        tracer_continuity_study,
        numa_directory_study,
        remote_cache_study,
    ):
        print(runner(quick))
        print()
