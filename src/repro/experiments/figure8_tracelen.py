"""Figure 8: L3 miss ratio vs. cache size for different trace lengths.

Case Study 1's first finding: "using too small a trace may suggest that
larger caches (for example, beyond 128MB in TPC-C) have no impact on miss
rate, when in reality larger caches continue to reduce the miss rate", the
short trace over-estimating because cold (startup) misses dominate it.

The reproduction captures one long bus trace per workload (TPC-C and TPC-H,
scaled), derives the shorter traces as its prefixes — exactly what a shorter
collection window would have recorded — and replays each length against a
sweep of emulated L3 sizes, four at a time on multi-configuration boards.

Trace lengths follow the paper's ratios against the scaled footprint: the
long trace covers the working set several times (steady state), the short
trace touches only a fraction of it (cold-dominated).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.ascii_chart import render_chart
from repro.analysis.report import render_series
from repro.analysis.stats import MissCurve
from repro.common.units import format_size, parse_size
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.experiments.pipeline import capture_records, l3_size_sweep
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.tpch import TpchWorkload

#: The paper's TPC-C / TPC-H L3 size sweep (bytes, paper scale).
PAPER_L3_SIZES = ["16MB", "32MB", "64MB", "128MB", "256MB", "512MB", "1GB"]


@dataclass(frozen=True)
class Figure8Settings:
    """Scales and trace lengths for the Figure 8 reproduction."""

    scale: ExperimentScale = ExperimentScale(scale=2048)
    l3_sizes: Sequence[str] = tuple(PAPER_L3_SIZES)
    # TPC-C: paper compares 10 billion vs 20 million references; the short
    # length is exactly the paper's 20M divided by the scale factor, which
    # is what makes its unique footprint land at the paper's ~128MB knee.
    tpcc_long_records: int = 1_200_000
    tpcc_short_records: int = 9_800
    # TPC-H: paper compares 400 billion / 200 billion / 10 billion (40:1).
    tpch_long_records: int = 1_200_000
    tpch_mid_records: int = 700_000
    tpch_short_records: int = 30_000
    seed: int = 3

    @classmethod
    def quick(cls) -> "Figure8Settings":
        return cls(
            scale=ExperimentScale(scale=8192),
            l3_sizes=("16MB", "64MB", "256MB", "1GB"),
            tpcc_long_records=220_000,
            tpcc_short_records=2_400,
            tpch_long_records=220_000,
            tpch_mid_records=130_000,
            tpch_short_records=5_500,
        )


def _sweep_curves(
    trace_by_name: Dict[str, "object"],
    settings: Figure8Settings,
) -> List[MissCurve]:
    configs = [settings.scale.cache(size) for size in settings.l3_sizes]
    curves = []
    for name, trace in trace_by_name.items():
        miss_ratios = l3_size_sweep(
            trace, configs, n_cpus=settings.scale.n_cpus, seed=settings.seed
        )
        curve = MissCurve(name=name)
        for size, ratio in zip(settings.l3_sizes, miss_ratios):
            curve.add(parse_size(size), ratio, label=size)
        curves.append(curve)
    return curves


def run(settings: Optional[Figure8Settings] = None) -> ExperimentResult:
    """Regenerate both panels of Figure 8."""
    settings = settings or Figure8Settings()
    scale = settings.scale
    host_config = scale.host()  # 8 MB 4-way L2, scaled

    # --- TPC-C panel ---------------------------------------------------- #
    tpcc = TpccWorkload(
        db_bytes=scale.scaled_bytes("150GB"),
        n_cpus=scale.n_cpus,
        private_bytes=scale.scaled_bytes("64MB"),
        zipf_exponent=1.05,
        seed=settings.seed,
    )
    tpcc_long = capture_records(tpcc, settings.tpcc_long_records, host_config)
    tpcc_curves = _sweep_curves(
        {
            "long trace (10B-ref analogue)": tpcc_long,
            "short trace (20M-ref analogue)": tpcc_long.head(
                settings.tpcc_short_records
            ),
        },
        settings,
    )

    # --- TPC-H panel ---------------------------------------------------- #
    tpch = TpchWorkload(
        fact_bytes=scale.scaled_bytes("85GB"),
        dim_bytes=scale.scaled_bytes("15GB"),
        n_cpus=scale.n_cpus,
        segment_bytes=scale.scaled_bytes("64MB"),
        seed=settings.seed,
    )
    tpch_long = capture_records(tpch, settings.tpch_long_records, host_config)
    tpch_curves = _sweep_curves(
        {
            "400B-ref analogue": tpch_long,
            "200B-ref analogue": tpch_long.head(settings.tpch_mid_records),
            "10B-ref analogue": tpch_long.head(settings.tpch_short_records),
        },
        settings,
    )

    report = "\n\n".join(
        [
            render_series(
                tpcc_curves,
                title=(
                    "Figure 8 (left): TPC-C L3 miss ratio vs cache size "
                    f"(scale 1/{scale.scale})"
                ),
                x_header="L3 size (paper scale)",
            ),
            render_chart(tpcc_curves),
            render_series(
                tpch_curves,
                title="Figure 8 (right): TPC-H L3 miss ratio vs cache size",
                x_header="L3 size (paper scale)",
            ),
            render_chart(tpch_curves),
        ]
    )
    notes = [
        (
            "trace lengths are prefixes of one capture, scaled to keep the "
            "paper's coverage ratios: the long trace sweeps the working set "
            "several times, the short trace is cold-dominated"
        ),
    ]
    return ExperimentResult(
        name="figure8",
        report=report,
        data={"tpcc": tpcc_curves, "tpch": tpch_curves},
        notes=notes,
    )


if __name__ == "__main__":
    print(run(Figure8Settings.quick()))
