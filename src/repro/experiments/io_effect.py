"""Extension experiment: the effect of I/O on the emulated hit ratio.

Section 2 lists "effect of I/O on hit ratio" among the statistics the board
collects.  DMA writes arrive on the bus as castout-style tenures from an
I/O bridge (bus ID above the processor range) and **invalidate** cached
copies of the written lines — so disk traffic into the database's buffer
pool steadily erodes the emulated L3's hit ratio.

The experiment runs TPC-C live with a board plugged in, sweeping the DMA
intensity (DMA writes per thousand processor references, landing on
database pages), and reports the L3 miss ratio at each intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.ascii_chart import render_chart
from repro.analysis.report import render_series
from repro.analysis.stats import MissCurve
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.host.smp import HostSMP
from repro.memories.board import board_for_machine
from repro.target.configs import single_node_machine
from repro.workloads.tpcc import TpccWorkload


@dataclass(frozen=True)
class IoEffectSettings:
    """Scale, DMA sweep and run length."""

    scale: ExperimentScale = ExperimentScale(scale=512)
    l3_size: str = "64MB"
    dma_per_kiloref: Sequence[int] = (0, 10, 40, 120)
    n_refs: int = 150_000
    seed: int = 31

    @classmethod
    def quick(cls) -> "IoEffectSettings":
        return cls(scale=ExperimentScale(scale=1024), n_refs=60_000)


def _run_with_dma(
    settings: IoEffectSettings, dma_per_kiloref: int
) -> float:
    """One live run at a given DMA intensity; returns the L3 miss ratio."""
    scale = settings.scale
    # The Figure 9 TPC-C decomposition: a bounded, read-mostly common
    # working set (the buffer-pool pages the disk also writes into).
    workload = TpccWorkload(
        db_bytes=scale.scaled_bytes("150GB"),
        n_cpus=scale.n_cpus,
        private_bytes=scale.scaled_bytes("8MB"),
        p_private=0.05,
        p_common=0.5,
        common_region_bytes=scale.scaled_bytes("48MB"),
        common_write_fraction=0.02,
        affine_region_bytes=scale.scaled_bytes("2GB"),
        zipf_exponent=1.5,
        seed=settings.seed,
    )
    host = HostSMP(scale.host())
    board = board_for_machine(
        single_node_machine(scale.cache(settings.l3_size), n_cpus=scale.n_cpus),
        seed=settings.seed,
    )
    host.plug_in(board)
    dma_rng = np.random.default_rng(settings.seed + dma_per_kiloref)
    db_base = workload._db_base
    region_lines = workload.common_region_lines

    executed = 0
    for cpu_ids, addresses, is_writes in workload.chunks(settings.n_refs, 8192):
        host.run_chunk(cpu_ids, addresses, is_writes)
        executed += len(cpu_ids)
        # Disk controller writing fresh pages into the buffer pool: DMA
        # writes land on popular database lines (the same heat the CPUs
        # have, which is exactly why they hurt).
        n_dma = (len(cpu_ids) * dma_per_kiloref) // 1000
        if n_dma:
            # The disk refreshes buffer-pool pages: DMA writes land
            # uniformly over the common working set every CPU keeps hot.
            targets = dma_rng.integers(0, region_lines, n_dma)
            for line in targets.tolist():
                host.io_bridge.dma_write(db_base + int(line) * 128)
        if executed >= settings.n_refs:
            break
    return board.firmware.nodes[0].miss_ratio()


def run(settings: Optional[IoEffectSettings] = None) -> ExperimentResult:
    """Sweep DMA intensity and report the emulated miss ratio."""
    settings = settings or IoEffectSettings()
    curve = MissCurve(name=f"{settings.l3_size} L3")
    for intensity in settings.dma_per_kiloref:
        miss_ratio = _run_with_dma(settings, intensity)
        curve.add(float(intensity), miss_ratio, label=f"{intensity}/1k refs")
    report = "\n\n".join(
        [
            render_series(
                [curve],
                title=(
                    "Effect of I/O (DMA writes) on the emulated L3 miss "
                    f"ratio (scale 1/{settings.scale.scale})"
                ),
                x_header="DMA writes per 1000 refs",
            ),
            render_chart([curve]),
        ]
    )
    ys = curve.ys()
    notes = [
        (
            "DMA writes invalidate cached lines, so the miss ratio rises "
            f"monotonically with I/O intensity: {ys[0] * 100:.1f}% with no "
            f"I/O to {ys[-1] * 100:.1f}% at the highest rate"
        )
    ]
    return ExperimentResult(
        name="io_effect",
        report=report,
        data={"curve": curve},
        notes=notes,
    )


if __name__ == "__main__":
    print(run(IoEffectSettings.quick()))
