"""Table 5: SPLASH2 application characteristics at realistic sizes.

For each application the paper reports the memory footprint and the runtime
under the host's two boot-time L2 configurations (8 MB 4-way vs 1 MB
direct-mapped).  The reproduction:

* reconstructs each footprint from the generator's geometry (scaled back up
  by the common factor) and compares it against the paper's value;
* runs each kernel through the host model under both L2 configurations,
  measures the L2 miss ratios, and converts them to runtimes with a simple
  CPI model anchored at the paper's 8 MB runtime — so the 1 MB column is a
  genuine prediction from measured miss behaviour, and the shape check is
  that it always exceeds the 8 MB column (as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.report import render_table
from repro.common.units import GB
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.host.smp import HostSMP
from repro.workloads.base import Workload
from repro.workloads.splash import (
    BarnesWorkload,
    FftWorkload,
    FmmWorkload,
    OceanWorkload,
    WaterWorkload,
)

#: Paper values: (footprint GB, runtime 8MB 4-way L2 s, runtime 1MB DM L2 s).
PAPER_TABLE5: Dict[str, Tuple[float, int, int]] = {
    "FMM (4M particles)": (8.34, 633, 653),
    "FFT -m28 -l7": (12.58, 777, 853),
    "OCEAN -n8194": (14.5, 860, 971),
    "WATER (spatial, 125^3)": (1.38, 1794, 2008),
    "BARNES-HUT (16M bodies)": (3.1, 2021, 2082),
}

#: CPI model: base CPI, line-granular references per instruction (real codes
#: touch a 128 B line ~16 times at 8 B per access, and our generators emit
#: one reference per line touch), and L2 miss penalty in CPU cycles.
CPI_BASE = 1.2
LINE_REFS_PER_INSTRUCTION = 0.33 / 16.0
MISS_PENALTY_CYCLES = 60.0


@dataclass(frozen=True)
class Table5Settings:
    """Scale and measurement length for the characterisation runs."""

    scale: ExperimentScale = ExperimentScale(scale=1024)
    n_refs: int = 400_000
    seed: int = 13

    @classmethod
    def quick(cls) -> "Table5Settings":
        return cls(n_refs=120_000)


def _kernels(settings: Table5Settings) -> Dict[str, Workload]:
    scale_factor = settings.scale.scale
    seed = settings.seed
    return {
        "FMM (4M particles)": FmmWorkload.paper_scale(scale_factor, seed=seed),
        "FFT -m28 -l7": FftWorkload(
            n_points=max(1024, (1 << 28) // scale_factor),
            row_bytes=settings.scale.scaled_bytes("768KB"),
            row_passes=14,
            seed=seed,
        ),
        "OCEAN -n8194": OceanWorkload.paper_scale(scale_factor, seed=seed),
        "WATER (spatial, 125^3)": WaterWorkload.paper_scale(scale_factor, seed=seed),
        "BARNES-HUT (16M bodies)": BarnesWorkload.paper_scale(scale_factor, seed=seed),
    }


def measured_miss_ratio(
    workload: Workload,
    settings: Table5Settings,
    l2_size: str,
    l2_assoc: int,
) -> float:
    """Aggregate host L2 miss ratio for one kernel under one L2 config."""
    workload.reset()
    host = HostSMP(settings.scale.host(l2_size=l2_size, l2_assoc=l2_assoc))
    host.run(workload.chunks(settings.n_refs), max_references=settings.n_refs)
    return host.aggregate_miss_ratio()


def runtime_from_anchor(
    anchor_seconds: float, miss_ratio_anchor: float, miss_ratio_other: float
) -> float:
    """Predict the other config's runtime from the anchored CPI model."""

    def cpi(miss_ratio: float) -> float:
        return CPI_BASE + LINE_REFS_PER_INSTRUCTION * miss_ratio * MISS_PENALTY_CYCLES

    return anchor_seconds * cpi(miss_ratio_other) / cpi(miss_ratio_anchor)


def run(settings: Optional[Table5Settings] = None) -> ExperimentResult:
    """Regenerate Table 5."""
    settings = settings or Table5Settings()
    rows: List[List[object]] = []
    data: Dict[str, dict] = {}
    for name, workload in _kernels(settings).items():
        paper_gb, paper_t8, paper_t1 = PAPER_TABLE5[name]
        footprint_gb = (
            workload.geometry.total_bytes * settings.scale.scale / GB
        )
        mr8 = measured_miss_ratio(workload, settings, "8MB", 4)
        mr1 = measured_miss_ratio(workload, settings, "1MB", 1)
        predicted_t1 = runtime_from_anchor(paper_t8, mr8, mr1)
        rows.append(
            [
                name,
                f"{paper_gb:.2f}",
                f"{footprint_gb:.2f}",
                paper_t8,
                f"{mr8 * 100:.1f}%",
                paper_t1,
                f"{predicted_t1:.0f}",
                f"{mr1 * 100:.1f}%",
            ]
        )
        data[name] = {
            "footprint_gb": footprint_gb,
            "paper_footprint_gb": paper_gb,
            "miss_ratio_8mb": mr8,
            "miss_ratio_1mb_dm": mr1,
            "paper_runtime_8mb": paper_t8,
            "paper_runtime_1mb": paper_t1,
            "predicted_runtime_1mb": predicted_t1,
        }
    table = render_table(
        [
            "Application",
            "GB (paper)",
            "GB (model)",
            "t 8MB/4w (paper s)",
            "L2 mr 8MB/4w",
            "t 1MB/DM (paper s)",
            "t 1MB/DM (predicted s)",
            "L2 mr 1MB/DM",
        ],
        rows,
        title="Table 5: SPLASH2 application characteristics (8 processors)",
    )
    notes = [
        "the 8MB runtime anchors the CPI model; the 1MB-DM runtime is "
        "predicted from the measured miss-ratio delta",
    ]
    return ExperimentResult(name="table5", report=table, data=data, notes=notes)


if __name__ == "__main__":
    print(run(Table5Settings.quick()))
