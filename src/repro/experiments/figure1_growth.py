"""Figure 1: L2/L3 cache sizes of high-end servers over time, with projection.

The paper motivates MemorIES with a growth chart: database working sets grew
~10x between 1995 and 1999 (TPC-C 10 GB -> 100 GB, TPC-D/H 10 GB -> 300 GB),
dragging server L2/L3 sizes up with them, and the trend was expected to
continue.  We reproduce the chart from the data the paper itself cites: fit
an exponential to the anchors and project the shaded min/max range forward,
"assuming the current rate of increase in workload demands remains the same".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.report import render_table
from repro.common.units import GB, MB, format_size
from repro.experiments.params import ExperimentResult

#: Anchors from the paper's text and Table 1: machine L2/L3 capacity per
#: processor in high-end servers (min, max observed that year, bytes).
CACHE_ANCHORS: Dict[int, Tuple[int, int]] = {
    1995: (512 * 1024, 1 * 1024 * 1024),
    1997: (4 * MB, 32 * MB),
    1999: (8 * MB, 32 * MB),
}

#: Workload (database) growth anchors, bytes.
WORKLOAD_ANCHORS: Dict[int, Tuple[int, int]] = {
    1995: (10 * GB, 10 * GB),
    1999: (100 * GB, 300 * GB),
}


def _fit_growth(anchors: Dict[int, Tuple[int, int]]) -> Tuple[float, float]:
    """Least-squares exponential growth rates for the (min, max) series.

    Returns (min_rate, max_rate) as per-year multiplicative factors.
    """
    years = sorted(anchors)
    rates = []
    for index in (0, 1):
        first, last = anchors[years[0]][index], anchors[years[-1]][index]
        span = years[-1] - years[0]
        rates.append((last / first) ** (1.0 / span))
    return rates[0], rates[1]


def projected_range(year: int) -> Tuple[int, int]:
    """Projected (min, max) cache size for ``year`` (>= 1999)."""
    base_year = 1999
    low, high = CACHE_ANCHORS[base_year]
    min_rate, max_rate = _fit_growth(CACHE_ANCHORS)
    span = year - base_year
    return (
        int(low * min_rate ** span),
        int(high * max_rate ** span),
    )


def run(settings: object = None) -> ExperimentResult:
    """Regenerate Figure 1's series: observed ranges plus a projection."""
    min_rate, max_rate = _fit_growth(CACHE_ANCHORS)
    rows: List[List[object]] = []
    for year in sorted(CACHE_ANCHORS):
        low, high = CACHE_ANCHORS[year]
        rows.append([year, format_size(low), format_size(high), "observed"])
    projection: Dict[int, Tuple[int, int]] = {}
    for year in (2001, 2003, 2005):
        low, high = projected_range(year)
        projection[year] = (low, high)
        rows.append([year, format_size(low), format_size(high), "projected"])
    table = render_table(
        ["Year", "L2/L3 min", "L2/L3 max", "Kind"],
        rows,
        title="Figure 1: L2/L3 cache size ranges in server systems",
    )
    # Sanity figure the paper quotes: the board's 8 GB ceiling covers the
    # projected range for several generations.
    years_covered = 0
    year = 1999
    while projected_range(year)[1] <= 8 * GB and year < 2015:
        years_covered += 1
        year += 1
    note = (
        f"cache capacity grows ~{min_rate:.2f}-{max_rate:.2f}x/year; the "
        f"board's 8GB emulation ceiling covers projections through "
        f"{1999 + years_covered - 1}"
    )
    return ExperimentResult(
        name="figure1",
        report=table,
        data={
            "anchors": CACHE_ANCHORS,
            "projection": projection,
            "growth_rates": (min_rate, max_rate),
        },
        notes=[note],
    )


if __name__ == "__main__":
    print(run())
