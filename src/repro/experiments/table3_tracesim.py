"""Table 3: execution times, trace-driven C simulator vs. MemorIES.

Two columns per trace size:

* **modeled** — the paper's own arithmetic.  The board is real-time (N refs
  at 100 MHz / 20% utilization), the C simulator costs ~30.5 us/reference on
  its 133 MHz host; both models are calibrated in :mod:`repro.sim.timing`
  and reproduce the paper's entries to within rounding.
* **measured** — this repository's trace-driven simulator actually runs a
  trace and its measured throughput is extrapolated to each row, making the
  "software simulation becomes prohibitive" trend a measured fact rather
  than a citation.  (Our *board* is also software, so real time is
  unattainable here — that is the reproduction's fundamental substitution;
  the measured board-replay throughput is reported alongside for honesty.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.report import render_table
from repro.bus.trace import BusTrace, encode_arrays
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.memories.board import board_for_machine
from repro.sim.timing import csim_runtime_seconds, memories_runtime_seconds
from repro.sim.trace_sim import TraceSimulator
from repro.target.configs import single_node_machine

#: The paper's Table 3 rows: (trace vectors, paper C-sim time, paper board time).
PAPER_ROWS = [
    (32_768, "1 second", "3.28 milliseconds"),
    (262_144, "8 seconds", "26.21 milliseconds"),
    (10_000_000, "5 minutes", "1 second"),
    (10_000_000_000, "approx 3 days", "16.67 minutes"),
]


@dataclass(frozen=True)
class Table3Settings:
    """Knobs for the measured part of the experiment."""

    scale: ExperimentScale = ExperimentScale()
    measure_records: int = 400_000
    seed: int = 7

    @classmethod
    def quick(cls) -> "Table3Settings":
        return cls(measure_records=60_000)


def _synthetic_trace(n_records: int, seed: int) -> BusTrace:
    """A bus-plausible synthetic trace for throughput measurement."""
    rng = np.random.default_rng(seed)
    cpu_ids = rng.integers(0, 8, n_records).astype(np.uint64)
    commands = np.where(rng.random(n_records) < 0.3, 1, 0).astype(np.uint64)
    addresses = (rng.integers(0, 1 << 22, n_records) << 7).astype(np.uint64)
    return BusTrace(encode_arrays(cpu_ids, commands, addresses))


def _format_seconds(seconds: float) -> str:
    if seconds < 1:
        return f"{seconds * 1000:.2f} ms"
    if seconds < 120:
        return f"{seconds:.2f} s"
    if seconds < 7200:
        return f"{seconds / 60:.1f} min"
    if seconds < 2 * 86400:
        return f"{seconds / 3600:.1f} h"
    return f"{seconds / 86400:.1f} days"


def run(settings: Optional[Table3Settings] = None) -> ExperimentResult:
    """Regenerate Table 3 with modeled and measured columns."""
    settings = settings or Table3Settings()
    trace = _synthetic_trace(settings.measure_records, settings.seed)

    simulator = TraceSimulator(settings.scale.cache("64MB"))
    result = simulator.simulate(trace)
    csim_measured_rps = simulator.throughput_refs_per_second(result)

    board = board_for_machine(
        single_node_machine(settings.scale.cache("64MB"), n_cpus=8)
    )
    import time

    started = time.perf_counter()
    board.replay(trace)
    board_measured_rps = settings.measure_records / (time.perf_counter() - started)

    rows: List[List[object]] = []
    for n_refs, paper_csim, paper_board in PAPER_ROWS:
        rows.append(
            [
                f"{n_refs:,}",
                paper_csim,
                _format_seconds(csim_runtime_seconds(n_refs)),
                _format_seconds(n_refs / csim_measured_rps),
                paper_board,
                _format_seconds(memories_runtime_seconds(n_refs)),
            ]
        )
    table = render_table(
        [
            "Trace size",
            "C sim (paper)",
            "C sim (modeled)",
            "C sim (measured, this repo)",
            "MemorIES (paper)",
            "MemorIES (modeled)",
        ],
        rows,
        title="Table 3: Execution times of C simulator vs. MemorIES",
    )
    notes = [
        f"measured trace-driven simulator throughput: {csim_measured_rps / 1e6:.2f}M refs/s",
        (
            f"measured Python board-replay throughput: {board_measured_rps / 1e3:.0f}k refs/s "
            "— the software board is NOT real time; real-time operation is a "
            "hardware property reproduced only by the timing model"
        ),
    ]
    return ExperimentResult(
        name="table3",
        report=table,
        data={
            "paper_rows": PAPER_ROWS,
            "csim_measured_rps": csim_measured_rps,
            "board_measured_rps": board_measured_rps,
            "modeled_board_seconds": [
                memories_runtime_seconds(n) for n, _a, _b in PAPER_ROWS
            ],
            "modeled_csim_seconds": [
                csim_runtime_seconds(n) for n, _a, _b in PAPER_ROWS
            ],
        },
        notes=notes,
    )


if __name__ == "__main__":
    print(run())
