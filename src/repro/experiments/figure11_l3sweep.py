"""Figure 11: SPLASH2 L3 miss ratio vs. L3 size (8 MB 4-way L2 in front).

Section 5.3: with realistic problem sizes, "the miss ratios and miss rates
are monotonically decreasing [with L3 size], further suggesting an incentive
for large L3 caches" — i.e. even behind an 8 MB L2, large L3s keep absorbing
misses.  Eight processors share a single emulated L3; the L2 and L3 line
sizes are both 128 B (the figure's caption).

The reproduction runs each kernel through the scaled host, captures the bus
trace once per kernel, and replays it against the L3 size sweep four
configurations at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.ascii_chart import render_chart
from repro.analysis.performance_model import project_performance
from repro.analysis.report import render_series, render_table
from repro.analysis.stats import MissCurve
from repro.common.units import parse_size
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.experiments.pipeline import capture_records, l3_size_sweep_nodes
from repro.workloads.base import Workload
from repro.workloads.splash import (
    BarnesWorkload,
    FftWorkload,
    FmmWorkload,
    OceanWorkload,
    WaterWorkload,
)

#: L3 sizes swept (paper scale); Figure 11's axis spans up to multi-GB.
PAPER_L3_SIZES = ("32MB", "64MB", "128MB", "256MB", "512MB", "1GB")


@dataclass(frozen=True)
class Figure11Settings:
    """Scale, sweep and capture length for the Figure 11 reproduction."""

    scale: ExperimentScale = ExperimentScale(scale=1024)
    l3_sizes: Sequence[str] = PAPER_L3_SIZES
    records_per_kernel: int = 500_000
    seed: int = 19

    @classmethod
    def quick(cls) -> "Figure11Settings":
        return cls(
            scale=ExperimentScale(scale=2048),
            l3_sizes=("32MB", "128MB", "512MB", "1GB"),
            records_per_kernel=150_000,
        )


def _kernels(settings: Figure11Settings) -> Dict[str, Workload]:
    s = settings.scale.scale
    seed = settings.seed
    return {
        "FMM": FmmWorkload.paper_scale(s, seed=seed),
        "FFT": FftWorkload(
            n_points=max(1024, (1 << 28) // s),
            row_bytes=settings.scale.scaled_bytes("768KB"),
            row_passes=14,
            local_fraction=0.93,
            seed=seed,
        ),
        "Ocean": OceanWorkload.paper_scale(s, seed=seed),
        "Water": WaterWorkload.paper_scale(s, seed=seed),
        "Barnes": BarnesWorkload.paper_scale(s, seed=seed),
    }


def run(settings: Optional[Figure11Settings] = None) -> ExperimentResult:
    """Regenerate Figure 11."""
    settings = settings or Figure11Settings()
    scale = settings.scale
    host_config = scale.host()  # 8 MB 4-way L2
    configs = [scale.cache(size) for size in settings.l3_sizes]

    curves: List[MissCurve] = []
    improvements: Dict[str, List[float]] = {}
    # The host L2 miss ratio feeds the CPI weighting of the projection.
    l2_miss_ratio_by_kernel: Dict[str, float] = {}
    for name, workload in _kernels(settings).items():
        stats: dict = {}
        trace = capture_records(
            workload, settings.records_per_kernel, host_config, stats_out=stats
        )
        nodes = l3_size_sweep_nodes(
            trace, configs, n_cpus=scale.n_cpus, seed=settings.seed
        )
        curve = MissCurve(name=name)
        kernel_improvements = []
        for size, node in zip(settings.l3_sizes, nodes):
            curve.add(parse_size(size), node.miss_ratio(), label=size)
            # Section 5.3's "preliminary calculations based on latencies
            # and miss ratios": project the L3's runtime effect.
            projection = project_performance(
                node.satisfied_breakdown(),
                l2_miss_ratio=stats.get("records_per_reference", 0.5),
            )
            kernel_improvements.append(projection.improvement_percent)
        curves.append(curve)
        improvements[name] = kernel_improvements

    report_parts = [
        render_series(
            curves,
            title=(
                "Figure 11: L3 miss ratio with 8MB 4-way L2, 8 processors per L3 "
                f"(scale 1/{scale.scale})"
            ),
            x_header="L3 size (paper scale)",
        )
    ]
    report_parts.append(render_chart(curves))
    perf_rows = []
    for name, values in improvements.items():
        perf_rows.append(
            [name] + [f"{value:+.1f}%" for value in values]
        )
    report_parts.append(
        render_table(
            ["Application"] + list(settings.l3_sizes),
            perf_rows,
            title=(
                "Projected runtime improvement from the L3 "
                "(latency-weighted, Section 5.3)"
            ),
        )
    )
    report = "\n\n".join(report_parts)
    monotone = {
        curve.name: curve.is_monotone_decreasing(tolerance=0.01) for curve in curves
    }
    all_improvements = [v for values in improvements.values() for v in values]
    notes = [
        "monotonically decreasing: "
        + ", ".join(f"{k}={'yes' if v else 'NO'}" for k, v in monotone.items()),
        (
            f"projected improvements span {min(all_improvements):+.1f}% to "
            f"{max(all_improvements):+.1f}% — the paper reports 2-25% with "
            "no degradation at any L3 size"
        ),
    ]
    return ExperimentResult(
        name="figure11",
        report=report,
        data={
            "curves": curves,
            "monotone": monotone,
            "improvements": improvements,
        },
        notes=notes,
    )


if __name__ == "__main__":
    print(run(Figure11Settings.quick()))
