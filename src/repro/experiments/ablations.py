"""Ablation studies for the design choices the paper calls out.

* **A1 — transaction-buffer depth** (Section 3.3): the board never posted a
  retry with 512-entry buffers below 42% sustained utilization; sweep the
  depth and utilization to find where retries start.
* **A2 — protocol table** (Section 3.2): MSI vs MESI vs MOESI on the same
  trace; the programmable-table design exists precisely to measure this.
* **A3 — replacement policy**: LRU vs FIFO vs random vs PLRU on TPC-C.
* **A4 — passive-emulation inclusion error** (Section 3.4): the board
  cannot invalidate host L2 lines when the emulated L3 evicts, so it
  emulates a *non-inclusive* L3; quantify the gap against an inclusive
  oracle (which also counts L2-held lines as L3-resident misses avoided).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.analysis.report import render_table
from repro.bus.trace import BusTrace
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.experiments.pipeline import capture_records
from repro.memories.board import board_for_machine
from repro.memories.tx_buffer import TransactionBuffer, service_cycles_per_op
from repro.target.configs import single_node_machine
from repro.workloads.tpcc import TpccWorkload


@dataclass(frozen=True)
class AblationSettings:
    """Shared knobs for the ablation studies."""

    scale: ExperimentScale = ExperimentScale(scale=2048)
    records: int = 200_000
    seed: int = 29

    @classmethod
    def quick(cls) -> "AblationSettings":
        return cls(records=60_000)


def _tpcc_trace(settings: AblationSettings) -> BusTrace:
    workload = TpccWorkload(
        db_bytes=settings.scale.scaled_bytes("150GB"),
        n_cpus=settings.scale.n_cpus,
        private_bytes=settings.scale.scaled_bytes("8MB"),
        p_private=0.05,
        zipf_exponent=1.05,
        seed=settings.seed,
    )
    return capture_records(workload, settings.records, settings.scale.host())


# ---------------------------------------------------------------------- #
# A1: buffer depth vs retry rate
# ---------------------------------------------------------------------- #

def buffer_depth_ablation(settings: Optional[AblationSettings] = None) -> ExperimentResult:
    """Sweep buffer depth x mean utilization under *bursty* arrivals.

    Section 3.3's buffers exist "to handle occasional bursts exceeding 42%
    bus utilization": traffic arrives in full-rate bursts (one tenure every
    2 cycles) separated by idle gaps that set the mean utilization.  A
    steady stream below 42% never needs buffering at all; depth only
    matters while a burst outruns the SDRAM.
    """
    settings = settings or AblationSettings()
    n = settings.records
    burst_len = 256  # tenures per burst, back to back at full bus rate
    rows: List[List[object]] = []
    data: Dict[str, float] = {}
    for depth in (8, 64, 512):
        for utilization in (0.2, 0.42, 0.6):
            buffer = TransactionBuffer(capacity=depth)
            # A burst occupies burst_len * 2 cycles; the following gap
            # stretches the period so the mean utilization comes out right.
            period_cycles = burst_len * 2.0 / utilization
            now = 0.0
            rejected = 0
            issued = 0
            while issued < n:
                burst_start = now
                for i in range(burst_len):
                    if not buffer.offer(burst_start + 2.0 * i):
                        rejected += 1
                    issued += 1
                now = burst_start + period_cycles
            rate = rejected / issued
            rows.append([depth, f"{utilization:.0%}", f"{rate * 100:.3f}%"])
            data[f"depth{depth}_util{utilization}"] = rate
    table = render_table(
        ["buffer depth", "mean utilization", "retry rate"],
        rows,
        title="A1: transaction-buffer depth vs forced retries under bursts "
        f"(SDRAM at {service_cycles_per_op():.2f} cycles/op, "
        f"{burst_len}-tenure bursts)",
    )
    notes = [
        "512 entries absorb full-rate bursts and never retry at or below "
        "42% mean utilization — Section 3.3's design point; shallow buffers "
        "retry during bursts even at nominal load",
    ]
    return ExperimentResult("ablation_buffers", table, data, notes)


# ---------------------------------------------------------------------- #
# A2: protocol table choice
# ---------------------------------------------------------------------- #

def protocol_ablation(settings: Optional[AblationSettings] = None) -> ExperimentResult:
    """MSI vs MESI vs MOESI on a 2-node split of the same TPC-C trace."""
    settings = settings or AblationSettings()
    trace = _tpcc_trace(settings)
    from repro.target.configs import split_smp_machine

    rows = []
    data: Dict[str, dict] = {}
    for protocol in ("msi", "mesi", "moesi"):
        config = replace(
            settings.scale.cache("64MB"), protocol=protocol, procs_per_node=4
        )
        machine = split_smp_machine(config, n_cpus=8, procs_per_node=4)
        board = board_for_machine(machine, seed=settings.seed)
        board.replay(trace)
        nodes = board.firmware.nodes
        refs = sum(node.references() for node in nodes)
        misses = sum(node.misses() for node in nodes)
        supplied = sum(
            node.counters.read("remote.supplied_dirty") for node in nodes
        )
        invalidated = sum(
            node.counters.read("remote.invalidated") for node in nodes
        )
        rows.append(
            [
                protocol.upper(),
                f"{misses / refs * 100:.2f}%" if refs else "n/a",
                supplied,
                invalidated,
            ]
        )
        data[protocol] = {
            "miss_ratio": misses / refs if refs else 0.0,
            "dirty_supplied": supplied,
            "invalidated": invalidated,
        }
    table = render_table(
        ["protocol", "miss ratio", "dirty lines supplied", "remote invalidations"],
        rows,
        title="A2: coherence protocol tables on TPC-C (2 nodes x 4 CPUs)",
    )
    notes = [
        "MOESI keeps ownership on remote reads (more supplies, no write-back "
        "round trips); MSI forfeits exclusivity (extra upgrade traffic)",
    ]
    return ExperimentResult("ablation_protocol", table, data, notes)


# ---------------------------------------------------------------------- #
# A3: replacement policy
# ---------------------------------------------------------------------- #

def replacement_ablation(settings: Optional[AblationSettings] = None) -> ExperimentResult:
    """LRU / FIFO / random / PLRU on the same TPC-C trace."""
    settings = settings or AblationSettings()
    trace = _tpcc_trace(settings)
    rows = []
    data: Dict[str, float] = {}
    for policy in ("lru", "plru", "fifo", "random"):
        config = replace(settings.scale.cache("64MB"), replacement=policy)
        machine = single_node_machine(config, n_cpus=8)
        board = board_for_machine(machine, seed=settings.seed)
        board.replay(trace)
        miss_ratio = board.firmware.nodes[0].miss_ratio()
        rows.append([policy, f"{miss_ratio * 100:.2f}%"])
        data[policy] = miss_ratio
    table = render_table(
        ["replacement policy", "miss ratio"],
        rows,
        title="A3: replacement policy on TPC-C (single 64MB node)",
    )
    notes = ["LRU/PLRU should lead; random/FIFO trail on a skewed workload"]
    return ExperimentResult("ablation_replacement", table, data, notes)


# ---------------------------------------------------------------------- #
# A4: passive-emulation inclusion error
# ---------------------------------------------------------------------- #

def inclusion_ablation(settings: Optional[AblationSettings] = None) -> ExperimentResult:
    """Quantify the non-inclusive-L3 approximation of Section 3.4.

    Rather than subclass trickery, this measures the observable symptom:
    the fraction of L2 castouts that miss the emulated L3
    (``inclusion.castout_miss``) — every one of them is a line the L3
    evicted (or never held) while the L2 still cached it, which a
    fully-inclusive L3 would have invalidated out of the L2 first.
    """
    settings = settings or AblationSettings()
    trace = _tpcc_trace(settings)
    rows = []
    data: Dict[str, float] = {}
    for size in ("16MB", "64MB", "256MB"):
        machine = single_node_machine(settings.scale.cache(size), n_cpus=8)
        board = board_for_machine(machine, seed=settings.seed)
        board.replay(trace)
        node = board.firmware.nodes[0]
        castouts = node.counters.read("local.castout")
        violations = node.counters.read("inclusion.castout_miss")
        share = violations / castouts if castouts else 0.0
        rows.append([size, castouts, violations, f"{share * 100:.2f}%"])
        data[size] = share
    table = render_table(
        ["L3 size", "L2 castouts", "castouts missing L3", "inclusion-error share"],
        rows,
        title="A4: passive (non-inclusive) emulation error",
    )
    notes = [
        "castouts that miss the L3 mark lines an inclusive L3 would have "
        "invalidated from the L2; the share shrinks as the L3 grows "
        "(fewer L3 evictions of L2-resident lines)",
    ]
    return ExperimentResult("ablation_inclusion", table, data, notes)


# ---------------------------------------------------------------------- #
# A5: constant-rate vs banked SDRAM directory timing
# ---------------------------------------------------------------------- #

def sdram_ablation(settings: Optional[AblationSettings] = None) -> ExperimentResult:
    """Replace the 42%-bandwidth constant with the bank-level SDRAM model.

    Replays one TPC-C trace through two otherwise identical single-node
    boards — one whose node controller charges the constant service time,
    one charging bank/row/refresh-accurate costs — and compares the buffer
    behaviour and the banked model's observed mean against the constant.
    """
    settings = settings or AblationSettings()
    trace = _tpcc_trace(settings)
    from repro.memories.board import CacheEmulationFirmware, MemoriesBoard
    from repro.memories.config import CacheNodeConfig
    from repro.memories.sdram import SdramModel
    from repro.memories.tx_buffer import service_cycles_per_op

    # Use the board's real 64 MB geometry: its 4 MB directory spans many
    # SDRAM rows and banks, which is what the timing model is about (a
    # scaled-down directory would fit inside a single open row).
    config = CacheNodeConfig.create("64MB")

    def run_board(sdram):
        firmware = CacheEmulationFirmware(
            single_node_machine(config, n_cpus=8), seed=settings.seed
        )
        if sdram is not None:
            firmware.nodes[0].sdram = sdram
        board = MemoriesBoard(firmware)
        board.replay(trace)
        return board

    constant_board = run_board(None)
    sdram = SdramModel()
    banked_board = run_board(sdram)

    constant_node = constant_board.firmware.nodes[0]
    banked_node = banked_board.firmware.nodes[0]
    rows = [
        [
            "constant (42% of bus bandwidth)",
            f"{service_cycles_per_op():.2f}",
            constant_node.buffer.stats.high_water,
            constant_node.buffer.stats.rejected,
        ],
        [
            "banked SDRAM (rows + refresh)",
            f"{sdram.average_service_cycles():.2f}",
            banked_node.buffer.stats.high_water,
            banked_node.buffer.stats.rejected,
        ],
    ]
    table = render_table(
        ["directory timing model", "mean cycles/op", "buffer high water", "retries"],
        rows,
        title="A5: SDRAM directory timing — constant vs bank-level model",
    )
    notes = [
        f"row-buffer hit ratio on directory traffic: "
        f"{sdram.stats.row_hit_ratio:.1%}; refreshes: {sdram.stats.refreshes}",
        "miss counts are identical by construction — timing only affects "
        "buffering, which is why the paper's single 42% constant sufficed",
    ]
    assert constant_node.miss_ratio() == banked_node.miss_ratio()
    return ExperimentResult(
        "ablation_sdram",
        table,
        {
            "constant_cycles": service_cycles_per_op(),
            "banked_mean_cycles": sdram.average_service_cycles(),
            "constant_high_water": constant_node.buffer.stats.high_water,
            "banked_high_water": banked_node.buffer.stats.high_water,
        },
        notes,
    )


if __name__ == "__main__":
    quick = AblationSettings.quick()
    for runner in (
        buffer_depth_ablation,
        protocol_ablation,
        replacement_ablation,
        inclusion_ablation,
        sdram_ablation,
    ):
        print(runner(quick))
        print()
