"""Replay throughput benchmark: scalar vs batched vs sharded.

The real board's selling point is keeping up with a 100 MHz bus in real
time; the software model's equivalent currency is **records per second**
through :meth:`~repro.memories.board.MemoriesBoard.replay_words`.  This
module builds a deterministic synthetic workload (a TPC-C-shaped command
mix, roughly 30% of tenures filtered as IO/interrupt/sync/retried, the
rest hitting a hot working set), replays it through the three engines,
and reports throughput plus the statistics digests that prove the fast
paths changed nothing.

Two consumers share it: ``benchmarks/bench_replay_throughput.py`` (the
pytest-benchmark suite) and ``tools/bench_smoke.py`` (the CI gate that
writes ``BENCH_replay.json`` and fails on any digest mismatch).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.bus.trace import BusTrace, encode_arrays
from repro.bus.transaction import BusCommand, SnoopResponse
from repro.memories.board import MemoriesBoard, board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.supervisor.spec import statistics_digest
from repro.target.configs import split_smp_machine

#: Default workload size for the full benchmark (CI smoke uses less).
DEFAULT_RECORDS = 200_000

#: Command mix, TPC-C shaped: mostly reads, a write-intent tail, castouts,
#: and ~20% bus noise the address filter drops (IO, interrupts, syncs).
_COMMAND_MIX = (
    (BusCommand.READ, 0.55),
    (BusCommand.RWITM, 0.12),
    (BusCommand.DCLAIM, 0.05),
    (BusCommand.CASTOUT, 0.08),
    (BusCommand.IO_READ, 0.07),
    (BusCommand.IO_WRITE, 0.06),
    (BusCommand.INTERRUPT, 0.04),
    (BusCommand.SYNC, 0.03),
)

#: Snoop responses; the RETRY share filters memory tenures (retried mix).
_RESPONSE_MIX = (
    (SnoopResponse.NULL, 0.62),
    (SnoopResponse.SHARED, 0.20),
    (SnoopResponse.MODIFIED, 0.08),
    (SnoopResponse.RETRY, 0.10),
)


def bench_trace(n_records: int = DEFAULT_RECORDS, seed: int = 2000) -> BusTrace:
    """Deterministic synthetic bus trace with the benchmark's mix.

    Addresses draw from a hot set (4 MB, 80%) and a cold span (256 MB,
    20%) so the emulated caches see realistic hit ratios rather than
    pure-miss or pure-hit degenerate behaviour.
    """
    rng = np.random.default_rng(seed)
    commands = rng.choice(
        [int(command) for command, _ in _COMMAND_MIX],
        size=n_records,
        p=[share for _, share in _COMMAND_MIX],
    ).astype(np.uint64)
    responses = rng.choice(
        [int(response) for response, _ in _RESPONSE_MIX],
        size=n_records,
        p=[share for _, share in _RESPONSE_MIX],
    ).astype(np.uint64)
    cpu_ids = rng.integers(0, 8, n_records).astype(np.uint64)
    hot = rng.integers(0, 4 << 20, n_records)
    cold = rng.integers(0, 256 << 20, n_records)
    is_hot = rng.random(n_records) < 0.8
    addresses = (np.where(is_hot, hot, cold) & ~np.int64(127)).astype(np.uint64)
    return BusTrace(words=encode_arrays(cpu_ids, commands, addresses, responses))


def bench_machine():
    """The benchmark target: a 4-node coherent split of an 8-CPU SMP."""
    config = CacheNodeConfig(size=1 << 20, assoc=4, line_size=128)
    return split_smp_machine(config, n_cpus=8, procs_per_node=2)


def _timed_replay(board: MemoriesBoard, trace: BusTrace) -> float:
    start = time.perf_counter()
    board.replay(trace)
    return time.perf_counter() - start


def run_replay_benchmark(
    n_records: int = DEFAULT_RECORDS,
    seed: int = 2000,
    shards: int = 4,
    sharded_processes: bool = True,
    machine=None,
    trace: Optional[BusTrace] = None,
) -> dict:
    """Measure scalar, batched and sharded replay over one trace.

    Returns a JSON-ready report: per-engine ``records_per_second``,
    ``seconds``, the ``statistics_digest`` of each run, ``identical``
    (all digests equal) and ``batched_speedup`` over scalar — the
    numbers ``BENCH_replay.json`` records.
    """
    if machine is None:
        machine = bench_machine()
    if trace is None:
        trace = bench_trace(n_records, seed)
    n_records = len(trace)

    scalar_board = board_for_machine(machine, seed=seed)
    scalar_board.batched_replay = False
    scalar_seconds = _timed_replay(scalar_board, trace)

    batched_board = board_for_machine(machine, seed=seed)
    batched_seconds = _timed_replay(batched_board, trace)

    from repro.experiments.pipeline import sharded_replay

    sharded_start = time.perf_counter()
    sharded_board = sharded_replay(
        trace, machine, shards, seed=seed, processes=sharded_processes
    )
    sharded_seconds = time.perf_counter() - sharded_start

    digests = {
        "scalar": statistics_digest(scalar_board.statistics()),
        "batched": statistics_digest(batched_board.statistics()),
        "sharded": statistics_digest(sharded_board.statistics()),
    }
    engines = {
        "scalar": scalar_seconds,
        "batched": batched_seconds,
        "sharded": sharded_seconds,
    }
    return {
        "records": n_records,
        "seed": seed,
        "machine": machine.name,
        "shards": shards,
        "engines": {
            name: {
                "seconds": seconds,
                "records_per_second": n_records / seconds if seconds else 0.0,
                "statistics_digest": digests[name],
            }
            for name, seconds in engines.items()
        },
        "identical": len(set(digests.values())) == 1,
        "batched_speedup": (
            scalar_seconds / batched_seconds if batched_seconds else 0.0
        ),
    }
