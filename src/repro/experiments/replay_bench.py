"""Replay throughput benchmark: scalar vs batched vs compiled vs sharded.

The real board's selling point is keeping up with a 100 MHz bus in real
time; the software model's equivalent currency is **records per second**
through :meth:`~repro.memories.board.MemoriesBoard.replay_words`.  This
module builds a deterministic synthetic workload (a TPC-C-shaped command
mix, roughly 30% of tenures filtered as IO/interrupt/sync/retried, the
rest hitting a hot working set), replays it through every engine, and
reports throughput plus the statistics digests that prove the fast
paths changed nothing.  Timings are best-of-``repeats`` (the minimum is
the least noisy estimator of a deterministic workload's cost), with
every raw sample recorded so the artifact captures the variance.

Two consumers share it: ``benchmarks/bench_replay_throughput.py`` (the
pytest-benchmark suite) and ``tools/bench_smoke.py`` (the CI gate that
writes ``BENCH_replay.json`` and fails on any digest mismatch).
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.bus.trace import BusTrace, encode_arrays
from repro.bus.transaction import BusCommand, SnoopResponse
from repro.memories.board import MemoriesBoard, board_for_machine
from repro.memories.config import CacheNodeConfig
from repro.supervisor.spec import statistics_digest
from repro.target.configs import split_smp_machine

#: Default workload size for the full benchmark (CI smoke uses less).
DEFAULT_RECORDS = 200_000

#: Command mix, TPC-C shaped: mostly reads, a write-intent tail, castouts,
#: and ~20% bus noise the address filter drops (IO, interrupts, syncs).
_COMMAND_MIX = (
    (BusCommand.READ, 0.55),
    (BusCommand.RWITM, 0.12),
    (BusCommand.DCLAIM, 0.05),
    (BusCommand.CASTOUT, 0.08),
    (BusCommand.IO_READ, 0.07),
    (BusCommand.IO_WRITE, 0.06),
    (BusCommand.INTERRUPT, 0.04),
    (BusCommand.SYNC, 0.03),
)

#: Snoop responses; the RETRY share filters memory tenures (retried mix).
_RESPONSE_MIX = (
    (SnoopResponse.NULL, 0.62),
    (SnoopResponse.SHARED, 0.20),
    (SnoopResponse.MODIFIED, 0.08),
    (SnoopResponse.RETRY, 0.10),
)


def bench_trace(n_records: int = DEFAULT_RECORDS, seed: int = 2000) -> BusTrace:
    """Deterministic synthetic bus trace with the benchmark's mix.

    Addresses draw from a hot set (4 MB, 80%) and a cold span (256 MB,
    20%) so the emulated caches see realistic hit ratios rather than
    pure-miss or pure-hit degenerate behaviour.
    """
    rng = np.random.default_rng(seed)
    commands = rng.choice(
        [int(command) for command, _ in _COMMAND_MIX],
        size=n_records,
        p=[share for _, share in _COMMAND_MIX],
    ).astype(np.uint64)
    responses = rng.choice(
        [int(response) for response, _ in _RESPONSE_MIX],
        size=n_records,
        p=[share for _, share in _RESPONSE_MIX],
    ).astype(np.uint64)
    cpu_ids = rng.integers(0, 8, n_records).astype(np.uint64)
    hot = rng.integers(0, 4 << 20, n_records)
    cold = rng.integers(0, 256 << 20, n_records)
    is_hot = rng.random(n_records) < 0.8
    addresses = (np.where(is_hot, hot, cold) & ~np.int64(127)).astype(np.uint64)
    return BusTrace(words=encode_arrays(cpu_ids, commands, addresses, responses))


def bench_machine():
    """The benchmark target: a 4-node coherent split of an 8-CPU SMP."""
    config = CacheNodeConfig(size=1 << 20, assoc=4, line_size=128)
    return split_smp_machine(config, n_cpus=8, procs_per_node=2)


def _timed_board_engine(
    machine, trace: BusTrace, seed: int, engine: str, repeats: int
) -> tuple:
    """Best-of-``repeats`` timing of one board-scope engine, forced
    explicitly (the registry would otherwise route every eligible board
    to the highest-rank engine, making the slower rows unmeasurable)."""
    from repro.engines import ENGINES

    spec = ENGINES[engine]
    seconds_all = []
    digest = ""
    for _ in range(max(repeats, 1)):
        board = board_for_machine(machine, seed=seed)
        start = time.perf_counter()
        spec.replay(board, trace.words)
        seconds_all.append(time.perf_counter() - start)
        digest = statistics_digest(board.statistics())
    return seconds_all, digest


def run_replay_benchmark(
    n_records: int = DEFAULT_RECORDS,
    seed: int = 2000,
    shards: int = 4,
    sharded_processes: bool = True,
    machine=None,
    trace: Optional[BusTrace] = None,
    repeats: int = 1,
) -> dict:
    """Measure scalar, batched, compiled and sharded replay of one trace.

    Returns a JSON-ready report: per-engine ``records_per_second`` and
    ``seconds`` (best of ``repeats``), every raw sample in
    ``seconds_all``, the ``statistics_digest`` of each run, ``identical``
    (all digests equal), ``batched_speedup`` / ``compiled_speedup`` over
    scalar, and whether ``numba`` backed the compiled engine — the
    numbers ``BENCH_replay.json`` records.
    """
    from repro.memories.compiled import HAVE_NUMBA

    if machine is None:
        machine = bench_machine()
    if trace is None:
        trace = bench_trace(n_records, seed)
    n_records = len(trace)

    seconds_all: dict = {}
    digests: dict = {}
    for engine in ("scalar", "batched", "compiled"):
        seconds_all[engine], digests[engine] = _timed_board_engine(
            machine, trace, seed, engine, repeats
        )

    from repro.experiments.pipeline import sharded_replay

    seconds_all["sharded"] = []
    for _ in range(max(repeats, 1)):
        sharded_start = time.perf_counter()
        sharded_board = sharded_replay(
            trace, machine, shards, seed=seed, processes=sharded_processes
        )
        seconds_all["sharded"].append(time.perf_counter() - sharded_start)
    digests["sharded"] = statistics_digest(sharded_board.statistics())

    best = {name: min(samples) for name, samples in seconds_all.items()}
    return {
        "records": n_records,
        "seed": seed,
        "machine": machine.name,
        "shards": shards,
        "repeats": max(repeats, 1),
        "numba": HAVE_NUMBA,
        "engines": {
            name: {
                "seconds": seconds,
                "seconds_all": seconds_all[name],
                "records_per_second": n_records / seconds if seconds else 0.0,
                "statistics_digest": digests[name],
            }
            for name, seconds in best.items()
        },
        "identical": len(set(digests.values())) == 1,
        "batched_speedup": (
            best["scalar"] / best["batched"] if best["batched"] else 0.0
        ),
        "compiled_speedup": (
            best["scalar"] / best["compiled"] if best["compiled"] else 0.0
        ),
    }
