"""Figure 12: where an L2 miss is satisfied — FFT, Ocean and FMM.

Section 5.3's NUMA study: the host is partitioned into 2 nodes of 4
processors and 4 nodes of 2 processors, each node with its own L3, all
coherent.  For every L2 miss the board attributes the data source: main
memory, the node's L3, a modified intervention or a shared intervention
(another L2 supplying the line).  The paper's key observations:

* FFT and Ocean have relatively small intervention traffic (little
  sharing) — memory placement and tertiary caches matter for them;
* FMM shows significant modified and shared intervention traffic (heavy
  sharing) — it rewards fast cache-to-cache transfer instead.

The L3s are 4-way; the paper uses 1 KB L3 lines (the 256 MB SDRAM per node
cannot hold a 128 B-line directory for large caches — see Table 2's
envelope).  At the reproduction's scale a 1 KB line would leave too few
lines, so a 256 B line keeps the line-size ratio's spirit; the deviation is
recorded in the result notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.report import render_breakdown
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.experiments.pipeline import capture_records, replay_machine
from repro.memories.config import CacheNodeConfig
from repro.target.configs import split_smp_machine
from repro.workloads.base import Workload
from repro.workloads.splash import FftWorkload, FmmWorkload, OceanWorkload

CATEGORIES = ("memory", "l3", "mod_int", "shr_int")


@dataclass(frozen=True)
class Figure12Settings:
    """Scale, node configurations and capture length."""

    scale: ExperimentScale = ExperimentScale(scale=1024)
    l3_size: str = "64MB"
    l3_line: str = "256B"
    records_per_kernel: int = 400_000
    seed: int = 23

    @classmethod
    def quick(cls) -> "Figure12Settings":
        return cls(
            scale=ExperimentScale(scale=2048), records_per_kernel=120_000
        )


def _kernels(settings: Figure12Settings) -> Dict[str, Workload]:
    s = settings.scale.scale
    seed = settings.seed
    return {
        "FFT": FftWorkload(
            n_points=max(1024, (1 << 28) // s),
            row_bytes=settings.scale.scaled_bytes("768KB"),
            row_passes=14,
            local_fraction=0.93,
            seed=seed,
        ),
        "Ocean": OceanWorkload.paper_scale(s, seed=seed),
        "FMM": FmmWorkload.paper_scale(s, seed=seed),
    }


def _l3_config(settings: Figure12Settings) -> CacheNodeConfig:
    scale = settings.scale
    return CacheNodeConfig(
        size=scale.scaled_bytes(settings.l3_size),
        assoc=4,
        line_size=256,
        procs_per_node=4,
        name=settings.l3_size,
    )


def run(settings: Optional[Figure12Settings] = None) -> ExperimentResult:
    """Regenerate Figure 12 (both node configurations, three kernels)."""
    settings = settings or Figure12Settings()
    scale = settings.scale
    host_config = scale.host()  # 8 MB 4-way L2, 128 B lines
    config = _l3_config(settings)

    panels: List[str] = []
    data: Dict[str, dict] = {}
    for name, workload in _kernels(settings).items():
        trace = capture_records(workload, settings.records_per_kernel, host_config)
        columns = []
        values = []
        per_config = {}
        for procs_per_node in (4, 2):  # 2x4 nodes, then 4x2 nodes
            machine = split_smp_machine(
                config,
                n_cpus=scale.n_cpus,
                procs_per_node=procs_per_node,
                name=f"{8 // procs_per_node}x{procs_per_node}",
            )
            board = replay_machine(trace, machine, seed=settings.seed)
            totals = {category: 0 for category in CATEGORIES}
            for node in board.firmware.nodes:
                for category in CATEGORIES:
                    totals[category] += node.counters.read(f"satisfied.{category}")
            total = sum(totals.values()) or 1
            fractions = [totals[c] / total for c in CATEGORIES]
            columns.append(machine.name)
            values.append(fractions)
            per_config[machine.name] = dict(zip(CATEGORIES, fractions))
        panels.append(
            render_breakdown(
                CATEGORIES,
                columns,
                values,
                title=f"Figure 12 ({name}): where an L2 miss is satisfied",
            )
        )
        data[name] = per_config

    def intervention_share(kernel: str) -> float:
        shares = [
            config_data["mod_int"] + config_data["shr_int"]
            for config_data in data[kernel].values()
        ]
        return sum(shares) / len(shares)

    fmm_share = intervention_share("FMM")
    fft_share = intervention_share("FFT")
    ocean_share = intervention_share("Ocean")
    notes = [
        f"intervention share: FMM {fmm_share * 100:.1f}% vs "
        f"FFT {fft_share * 100:.1f}%, Ocean {ocean_share * 100:.1f}% — "
        + (
            "FMM shares most, as the paper observes"
            if fmm_share > max(fft_share, ocean_share)
            else "ORDERING NOT REPRODUCED"
        ),
        "L3 lines are 256B instead of the paper's 1KB (scaled geometry; "
        "see module docstring)",
    ]
    return ExperimentResult(
        name="figure12",
        report="\n\n".join(panels),
        data=data,
        notes=notes,
    )


if __name__ == "__main__":
    print(run(Figure12Settings.quick()))
