"""Fault sweep: how far injected faults move the emulated miss ratio.

The paper's numbers are only worth publishing if the board keeps telling
the truth while things go wrong underneath it: SDRAM soft errors in the
tag/state directory, missed snoops on the passive monitor, transaction
buffers crowded into the retry path, silently wrapped counters.  This
experiment quantifies that robustness by replaying one captured TPC-C
trace under :class:`~repro.faults.plan.FaultPlan` rates swept across
several orders of magnitude, once with the recovery machinery on (SECDED
ECC + patrol scrubbing, snoop-loss resync) and once on a bare board, and
plotting the absolute miss-ratio error against the per-tenure fault rate.

Expected shape: the protected curve hugs zero until fault rates become
absurd, the unprotected curve drifts as flipped tags turn hits into
misses and vice versa.  A zero-rate plan must sit at exactly 0.0 error on
both curves (the bit-identity contract the CI smoke job also enforces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.ascii_chart import render_chart
from repro.analysis.report import render_series
from repro.analysis.stats import MissCurve
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.experiments.pipeline import capture_records
from repro.faults import FaultCampaign, FaultPlan
from repro.target.configs import single_node_machine
from repro.workloads.tpcc import TpccWorkload

#: Per-tenure fault rates swept (every fault site at the same rate).
DEFAULT_RATES = (0.0, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2)


@dataclass(frozen=True)
class FaultSweepSettings:
    """Scales, rates and arms for the fault sweep."""

    scale: ExperimentScale = ExperimentScale(scale=2048)
    rates: Sequence[float] = DEFAULT_RATES
    records: int = 60_000
    l3_size: str = "64MB"
    seed: int = 7

    @classmethod
    def quick(cls) -> "FaultSweepSettings":
        return cls(
            scale=ExperimentScale(scale=8192),
            rates=(0.0, 1e-3, 1e-2),
            records=12_000,
        )


def _error_curve(
    name: str,
    campaign: FaultCampaign,
    words,
    settings: FaultSweepSettings,
) -> MissCurve:
    plans = [
        FaultPlan.uniform(rate, seed=settings.seed) for rate in settings.rates
    ]
    curve = MissCurve(name=name)
    for rate, result in zip(settings.rates, campaign.sweep(words, plans)):
        curve.add(rate, result.miss_ratio_error, label=f"{rate:g}")
    return curve


def run(settings: Optional[FaultSweepSettings] = None) -> ExperimentResult:
    """Sweep fault rates against protected and unprotected boards."""
    settings = settings or FaultSweepSettings()
    scale = settings.scale

    tpcc = TpccWorkload(
        db_bytes=scale.scaled_bytes("150GB"),
        n_cpus=scale.n_cpus,
        private_bytes=scale.scaled_bytes("8MB"),
        seed=settings.seed,
    )
    trace = capture_records(tpcc, settings.records, scale.host())
    machine = single_node_machine(
        scale.cache(settings.l3_size), n_cpus=scale.n_cpus
    )

    protected = FaultCampaign(machine, seed=settings.seed, ecc=True)
    unprotected = FaultCampaign(machine, seed=settings.seed, ecc=False)
    curves = [
        _error_curve("ECC + scrub + resync", protected, trace.words, settings),
        _error_curve("unprotected board", unprotected, trace.words, settings),
    ]

    report = "\n\n".join(
        [
            render_series(
                curves,
                title=(
                    "Miss-ratio error vs per-tenure fault rate "
                    f"(TPC-C, {settings.l3_size} L3, scale 1/{scale.scale})"
                ),
                x_header="fault rate",
            ),
            render_chart(curves),
        ]
    )
    zero_errors = [curve.ys()[0] for curve in curves if curve.points]
    notes = [
        (
            "each rate drives every fault site (snoop drop, directory bit "
            "flip, buffer burst, counter saturation) at the same per-tenure "
            "probability, seeded so reruns hit identical fault sites"
        ),
        f"zero-rate error (must be exactly 0.0): {zero_errors}",
    ]
    return ExperimentResult(
        name="fault_sweep",
        report=report,
        data={"curves": curves, "rates": list(settings.rates)},
        notes=notes,
    )


if __name__ == "__main__":
    print(run(FaultSweepSettings.quick()))
