"""Extension experiment: web-server scaling study and projection error.

Two claims of the paper meet here:

* Section 5.3: the board is also meant for "scaling studies involving
  transaction processing, decision support, and **web server workloads**";
* Section 1: absent emulation, designers must make "analytical projections
  of cache statistics from earlier measurements of smaller cache
  configurations ... the accuracy of such predictions would drastically
  decrease as we get into much larger sizes."

The experiment serves a Zipf-popularity fileset at several scales against a
fixed emulated L3, *measures* the miss ratio at each scale, then does what
a designer without MemorIES would do — fit a log-linear projection to the
two smallest configurations and extrapolate — and reports how wrong the
projection gets as the fileset grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.ascii_chart import render_chart
from repro.analysis.report import render_table
from repro.analysis.stats import MissCurve
from repro.common.units import format_size, parse_size
from repro.experiments.params import ExperimentResult, ExperimentScale
from repro.experiments.pipeline import capture_records, l3_size_sweep
from repro.workloads.web import WebWorkload


@dataclass(frozen=True)
class WebScalingSettings:
    """Fileset sweep, cache and run length."""

    scale: ExperimentScale = ExperimentScale(scale=1024)
    l3_size: str = "64MB"
    fileset_sizes: Sequence[str] = ("1GB", "4GB", "16GB", "64GB")
    records_per_point: int = 120_000
    files_per_gb: int = 2048
    seed: int = 37

    @classmethod
    def quick(cls) -> "WebScalingSettings":
        return cls(records_per_point=50_000)


def _measure(settings: WebScalingSettings, fileset: str) -> float:
    scale = settings.scale
    fileset_bytes = scale.scaled_bytes(fileset)
    n_files = max(
        64, settings.files_per_gb * parse_size(fileset) // (1 << 30)
    )
    workload = WebWorkload(
        fileset_bytes=fileset_bytes,
        n_files=n_files,
        n_cpus=scale.n_cpus,
        metadata_bytes=scale.scaled_bytes("64MB"),
        buffer_bytes=max(1024, scale.scaled_bytes("8MB")),
        seed=settings.seed,
    )
    trace = capture_records(workload, settings.records_per_point, scale.host())
    (miss_ratio,) = l3_size_sweep(
        trace,
        [scale.cache(settings.l3_size)],
        n_cpus=scale.n_cpus,
        seed=settings.seed,
    )
    return miss_ratio


def run(settings: Optional[WebScalingSettings] = None) -> ExperimentResult:
    """Sweep fileset sizes; compare measurement against projection."""
    settings = settings or WebScalingSettings()
    sizes = [parse_size(s) for s in settings.fileset_sizes]
    measured = MissCurve(name="measured (emulated)")
    for label, size in zip(settings.fileset_sizes, sizes):
        measured.add(float(size), _measure(settings, label), label=label)

    # The designer's projection: log-linear fit through the two smallest
    # configurations, extrapolated to the rest.
    ys = measured.ys()
    x0, x1 = math.log(sizes[0]), math.log(sizes[1])
    slope = (ys[1] - ys[0]) / (x1 - x0)
    projected = MissCurve(name="projected from 2 smallest")
    for label, size in zip(settings.fileset_sizes, sizes):
        value = ys[0] + slope * (math.log(size) - x0)
        projected.add(float(size), min(1.0, max(0.0, value)), label=label)

    rows: List[List[object]] = []
    errors = []
    for point_m, point_p in zip(measured.points, projected.points):
        error = point_p.miss_ratio - point_m.miss_ratio
        errors.append(error)
        rows.append(
            [
                point_m.display_label(),
                f"{point_m.miss_ratio * 100:.2f}%",
                f"{point_p.miss_ratio * 100:.2f}%",
                f"{error * 100:+.2f} points",
            ]
        )
    table = render_table(
        ["fileset (paper scale)", "measured", "projected", "projection error"],
        rows,
        title=(
            f"Web-server scaling study: {settings.l3_size} L3 "
            f"(scale 1/{settings.scale.scale})"
        ),
    )
    report = "\n\n".join([table, render_chart([measured, projected])])
    notes = [
        (
            "the projection is exact at its two anchor points by "
            f"construction; at the largest fileset it is off by "
            f"{abs(errors[-1]) * 100:.1f} points — Section 1's warning about "
            "extrapolating cache statistics"
        )
    ]
    return ExperimentResult(
        name="webserver_scaling",
        report=report,
        data={
            "measured": measured,
            "projected": projected,
            "errors": errors,
        },
        notes=notes,
    )


if __name__ == "__main__":
    print(run(WebScalingSettings.quick()))
