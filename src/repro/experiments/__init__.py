"""Experiment harness: one module per table and figure of the paper.

Every module exposes ``run(settings=None) -> ExperimentResult`` returning
structured data plus a rendered text report, and the registry below maps
paper artefact ids to the modules.  Benchmarks under ``benchmarks/`` invoke
these with quick settings; EXPERIMENTS.md records full-scale outcomes.
"""

from repro.experiments.params import ExperimentResult, ExperimentScale

ARTEFACTS = {
    "table1": "repro.experiments.table1_survey",
    "figure1": "repro.experiments.figure1_growth",
    "table2": "repro.experiments.table2_params",
    "table3": "repro.experiments.table3_tracesim",
    "table4": "repro.experiments.table4_augmint",
    "figure8": "repro.experiments.figure8_tracelen",
    "figure9": "repro.experiments.figure9_sharing",
    "figure10": "repro.experiments.figure10_profile",
    "table5": "repro.experiments.table5_splash_char",
    "table6": "repro.experiments.table6_missrates",
    "figure11": "repro.experiments.figure11_l3sweep",
    "figure12": "repro.experiments.figure12_breakdown",
}

#: Studies the paper names but does not tabulate: the I/O-on-hit-ratio
#: statistic (Section 2) and the web-server scaling study (Section 5.3),
#: including Section 1's projection-accuracy warning.
EXTENSIONS = {
    "io_effect": "repro.experiments.io_effect",
    "webserver_scaling": "repro.experiments.webserver_scaling",
    "firmware_studies": "repro.experiments.firmware_studies",
    "fault_sweep": "repro.experiments.fault_sweep",
}

__all__ = ["ARTEFACTS", "EXTENSIONS", "ExperimentResult", "ExperimentScale"]
