"""Baseline simulators and runtime models.

The paper positions MemorIES against two software alternatives and validates
it with one of them:

* :mod:`repro.sim.trace_sim` — "a trace-driven C simulator (which was used
  as one of the methods to validate the MemorIES design)".  Ours is an
  independent implementation of the same single-node cache semantics; the
  integration tests require it to produce *identical* hit/miss counts to
  the board's emulation path on any trace.
* :mod:`repro.sim.augmint` — an Augmint-like execution-driven simulator
  model with per-event cost accounting.
* :mod:`repro.sim.timing` — the analytic runtime models behind Tables 3
  and 4 (board real-time arithmetic, C-simulator and Augmint slowdowns).
"""

from repro.sim.augmint import AugmintModel, AugmintResult
from repro.sim.timing import (
    augmint_runtime_seconds,
    csim_runtime_seconds,
    fft_host_runtime_seconds,
    memories_runtime_seconds,
)
from repro.sim.trace_sim import TraceSimResult, TraceSimulator

__all__ = [
    "AugmintModel",
    "AugmintResult",
    "TraceSimResult",
    "TraceSimulator",
    "augmint_runtime_seconds",
    "csim_runtime_seconds",
    "fft_host_runtime_seconds",
    "memories_runtime_seconds",
]
