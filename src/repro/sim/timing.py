"""Analytic runtime models for Tables 3 and 4.

The board's headline property — real-time operation — is arithmetic: a
trace of N references passes through the board in exactly the wall-clock
time the host bus takes to produce it.  These functions encode that
arithmetic plus throughput models of the two software baselines, calibrated
against the paper's own published data points:

Table 3 anchors (C simulator on a 133 MHz machine; board at 100 MHz bus,
20% utilization)::

    32768 refs      ->  C sim 1 s      | MemorIES 3.28 ms
    10 million refs ->  C sim 5 min    | MemorIES 1 s
    10 billion refs ->  C sim ~3 days  | MemorIES 16.67 min

Table 4 anchors (Augmint vs. the 262 MHz, 8-way host)::

    FFT m=20 -> Augmint 47 min  | host (MemorIES) 3 s
    FFT m=26 -> Augmint >2 days | host 196 s
"""

from __future__ import annotations

from repro.bus.bus import ADDRESS_TENURE_CYCLES
from repro.common.errors import ConfigurationError

#: C-simulator cost: ~1 s per 32768 references on 133 MHz => ~30.5 us/ref
#: => ~4060 simulation-host cycles per reference.
CSIM_CYCLES_PER_REF = 4060.0
CSIM_HOST_HZ = 133_000_000

#: Augmint cost per instrumented event (see sim.augmint); calibrated below.
AUGMINT_CYCLES_PER_EVENT = 3200.0
AUGMINT_HOST_HZ = 133_000_000

#: The paper's FFT experiments: 262 MHz processors, 8 threads.
HOST_CPU_HZ = 262_000_000
HOST_N_CPUS = 8

#: Calibrated FFT work model: cycles per point-log-point unit such that
#: m=20 runs in ~3 s on the 8-way host (Table 4's right-hand column).
FFT_CYCLES_PER_UNIT = 300.0

#: Memory references per FFT work unit (n log2 n units): calibrated so
#: Augmint's m=20 run costs ~47 minutes at the per-event rate above.
FFT_REFS_PER_UNIT = 5.6


def memories_runtime_seconds(
    n_references: int,
    bus_hz: int = 100_000_000,
    utilization: float = 0.20,
    tenure_cycles: int = ADDRESS_TENURE_CYCLES,
) -> float:
    """Wall-clock time for the board to process ``n_references``.

    The board is real-time, so this is simply the time the host bus needs
    to carry the references: each tenure occupies ``tenure_cycles`` and the
    bus is busy ``utilization`` of the time, giving
    ``bus_hz * utilization / tenure_cycles`` references per second
    (10 M refs/s at the paper's 100 MHz / 20% — which reproduces every
    Table 3 MemorIES entry exactly).
    """
    if not 0 < utilization <= 1:
        raise ConfigurationError(f"utilization {utilization} outside (0, 1]")
    refs_per_second = bus_hz * utilization / tenure_cycles
    return n_references / refs_per_second


def csim_runtime_seconds(
    n_references: int,
    cycles_per_ref: float = CSIM_CYCLES_PER_REF,
    host_hz: int = CSIM_HOST_HZ,
) -> float:
    """Modeled trace-driven C-simulator runtime (Table 3 left column).

    Assumes, as the paper does, that the entire trace is memory resident —
    the model is pure per-reference simulation cost.
    """
    return n_references * cycles_per_ref / host_hz


def fft_work_units(m: int) -> float:
    """FFT work in n·log2(n) units for a 2**m-point transform."""
    if m < 1:
        raise ConfigurationError(f"FFT exponent m must be >= 1, got {m}")
    n = float(1 << m)
    return n * m


def fft_host_runtime_seconds(
    m: int,
    cpu_hz: int = HOST_CPU_HZ,
    n_cpus: int = HOST_N_CPUS,
    cycles_per_unit: float = FFT_CYCLES_PER_UNIT,
) -> float:
    """Modeled native FFT runtime on the host (Table 4 right column).

    Since MemorIES observes the run in real time, this *is* the MemorIES
    'execution time' for the FFT experiments.
    """
    return fft_work_units(m) * cycles_per_unit / (cpu_hz * n_cpus)


def fft_reference_count(m: int, refs_per_unit: float = FFT_REFS_PER_UNIT) -> float:
    """Modeled instrumented-event count for an FFT of size 2**m."""
    return fft_work_units(m) * refs_per_unit


def augmint_runtime_seconds(
    m: int,
    cycles_per_event: float = AUGMINT_CYCLES_PER_EVENT,
    host_hz: int = AUGMINT_HOST_HZ,
    refs_per_unit: float = FFT_REFS_PER_UNIT,
) -> float:
    """Modeled Augmint runtime for FFT 2**m (Table 4 left column)."""
    return fft_reference_count(m, refs_per_unit) * cycles_per_event / host_hz


def speedup_memories_vs_csim(n_references: int) -> float:
    """How many times faster the board is than the C simulator."""
    return csim_runtime_seconds(n_references) / memories_runtime_seconds(n_references)


def speedup_memories_vs_augmint(m: int) -> float:
    """How many times faster the live host (observed by the board) is."""
    return augmint_runtime_seconds(m) / fft_host_runtime_seconds(m)
