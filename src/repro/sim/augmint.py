"""Execution-driven simulator model (Augmint-like).

Augmint [NMS+96] instruments an application so every memory event traps into
a simulator; the price is a slowdown of two to three orders of magnitude.
:class:`AugmintModel` reproduces that methodology shape: it *executes* a
workload (generating references on the fly, not from a trace — the defining
property of execution-driven simulation), simulates the memory hierarchy on
each reference, and charges a per-event cost against a modeled simulation
host, yielding the simulated-run wall-clock estimates of Table 4.

The per-event cost defaults are calibrated to the paper's own data points
(a 133 MHz simulation host taking 47 minutes for FFT m=20; see
:mod:`repro.sim.timing` for the arithmetic).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig
from repro.sim.trace_sim import TraceSimulator, TraceSimResult
from repro.bus.trace import BusTrace, encode_arrays
from repro.workloads.base import Workload

import numpy as np

#: The paper ran Augmint on a 133 MHz machine.
DEFAULT_SIM_HOST_HZ = 133_000_000

#: Modeled simulation-host cycles charged per instrumented memory event.
#: Calibrated so the Table 4 anchors hold (see timing.augmint_runtime_seconds).
DEFAULT_CYCLES_PER_EVENT = 3200

#: Modeled application instructions per memory reference (the simulator also
#: executes the non-memory instructions, cheaply, via binary augmentation).
DEFAULT_CYCLES_PER_INSTRUCTION = 2.0
DEFAULT_REFS_PER_KILO_INSTRUCTION = 330.0


@dataclass
class AugmintResult:
    """Outcome of an execution-driven run.

    Attributes:
        cache: hit/miss counters from the simulated cache.
        events: instrumented memory events processed.
        modeled_seconds: wall-clock the modeled 133 MHz simulation host
            would need (the Table 4 "Execution time of Augmint" quantity).
        measured_seconds: actual wall-clock this Python model spent.
    """

    cache: TraceSimResult
    events: int
    modeled_seconds: float
    measured_seconds: float

    @property
    def modeled_slowdown_vs(self) -> float:
        """Helper for comparisons: modeled seconds per million events."""
        if self.events == 0:
            return 0.0
        return self.modeled_seconds / (self.events / 1e6)


class AugmintModel:
    """Execution-driven simulation of one cache configuration.

    Args:
        config: the simulated shared cache.
        sim_host_hz: clock of the modeled simulation host.
        cycles_per_event: modeled cost of one instrumented memory event.
        refs_per_kilo_instruction: converts references to instruction
            counts for the non-memory execution cost.
    """

    def __init__(
        self,
        config: CacheNodeConfig,
        sim_host_hz: int = DEFAULT_SIM_HOST_HZ,
        cycles_per_event: float = DEFAULT_CYCLES_PER_EVENT,
        cycles_per_instruction: float = DEFAULT_CYCLES_PER_INSTRUCTION,
        refs_per_kilo_instruction: float = DEFAULT_REFS_PER_KILO_INSTRUCTION,
    ) -> None:
        if sim_host_hz <= 0:
            raise ConfigurationError("simulation host clock must be positive")
        self.config = config
        self.sim_host_hz = sim_host_hz
        self.cycles_per_event = cycles_per_event
        self.cycles_per_instruction = cycles_per_instruction
        self.refs_per_kilo_instruction = refs_per_kilo_instruction
        self._cache_sim = TraceSimulator(config)

    def run(
        self,
        workload: Workload,
        n_refs: int,
        chunk_size: int = 65536,
    ) -> AugmintResult:
        """Execute ``n_refs`` of ``workload`` under instrumentation.

        Every reference is simulated against the cache as it is generated
        (execution-driven), then charged the modeled per-event cost.
        """
        started = time.perf_counter()
        totals = TraceSimResult()
        events = 0
        self._cache_sim.reset()
        for cpu_ids, addresses, is_writes in workload.chunks(n_refs, chunk_size):
            commands = np.where(is_writes, 1, 0).astype(np.uint64)  # RWITM / READ
            words = encode_arrays(
                cpu_ids.astype(np.uint64), commands, addresses.astype(np.uint64)
            )
            partial = self._cache_sim.simulate(BusTrace(words), fresh=False)
            events += len(cpu_ids)
            _merge(totals, partial)
        measured = time.perf_counter() - started

        instructions = events * 1000.0 / self.refs_per_kilo_instruction
        modeled_cycles = (
            events * self.cycles_per_event
            + instructions * self.cycles_per_instruction
        )
        return AugmintResult(
            cache=totals,
            events=events,
            modeled_seconds=modeled_cycles / self.sim_host_hz,
            measured_seconds=measured,
        )


def _merge(into: TraceSimResult, part: TraceSimResult) -> None:
    """Accumulate one chunk's counters into the running totals."""
    into.references += part.references
    into.reads += part.reads
    into.writes += part.writes
    into.castouts += part.castouts
    into.read_hits += part.read_hits
    into.write_hits += part.write_hits
    into.castout_hits += part.castout_hits
    into.read_misses += part.read_misses
    into.write_misses += part.write_misses
    into.castout_misses += part.castout_misses
    into.dirty_evictions += part.dirty_evictions
    into.clean_evictions += part.clean_evictions
    into.filtered += part.filtered
    into.elapsed_seconds += part.elapsed_seconds
