"""The trace-driven software cache simulator ("the C simulator").

Section 4.1: "A trace-driven C simulator (which was used as one of the
methods to validate the MemorIES design) was used to run varying trace sizes
and the resulting run times compared to that of the MemorIES board."

This module plays that role twice over:

* **Validation** — it is an *independent* implementation of single-node
  shared-cache emulation (its own lookup structures, no code shared with
  :class:`~repro.memories.node_controller.NodeController`).  The integration
  suite cross-checks that both produce identical hit/miss/castout counts on
  identical traces, mirroring how the authors validated the board.
* **Table 3** — :meth:`TraceSimulator.simulate` measures its own wall-clock
  time, giving the measured software-simulation column next to the board's
  analytic real-time column.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.bus.trace import BusTrace, iter_decoded
from repro.bus.transaction import BusCommand
from repro.common.addr import log2_int
from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig

_READ = int(BusCommand.READ)
_RWITM = int(BusCommand.RWITM)
_DCLAIM = int(BusCommand.DCLAIM)
_CASTOUT = int(BusCommand.CASTOUT)
_MEMORY_COMMANDS = frozenset({_READ, _RWITM, _DCLAIM, _CASTOUT})
_RETRY = 3  # SnoopResponse.RETRY

# Line states, kept deliberately local to this module (independent impl).
_CLEAN = 1
_DIRTY = 2


@dataclass
class TraceSimResult:
    """Outcome of one trace-driven simulation run.

    Attributes mirror the node controller's counters so results can be
    compared field by field.
    """

    references: int = 0
    reads: int = 0
    writes: int = 0
    castouts: int = 0
    read_hits: int = 0
    write_hits: int = 0
    castout_hits: int = 0
    read_misses: int = 0
    write_misses: int = 0
    castout_misses: int = 0
    dirty_evictions: int = 0
    clean_evictions: int = 0
    filtered: int = 0
    elapsed_seconds: float = 0.0

    @property
    def misses(self) -> int:
        """Data misses (reads + writes, castouts excluded)."""
        return self.read_misses + self.write_misses

    @property
    def miss_ratio(self) -> float:
        """Miss ratio over data references."""
        if self.references == 0:
            return 0.0
        return self.misses / self.references

    def counter_view(self) -> Dict[str, int]:
        """Counters named like the node controller's, for cross-validation."""
        return {
            "local.read": self.reads,
            "local.write": self.writes,
            "local.castout": self.castouts,
            "hit.read": self.read_hits,
            "hit.write": self.write_hits,
            "hit.castout": self.castout_hits,
            "miss.read": self.read_misses,
            "miss.write": self.write_misses,
            "miss.castout": self.castout_misses,
            "evict.dirty": self.dirty_evictions,
            "evict.clean": self.clean_evictions,
        }


class TraceSimulator:
    """Single-node, LRU, write-allocate trace-driven cache simulator.

    Deliberately supports exactly what the paper's validation runs needed:
    one shared cache absorbing every processor's filtered memory traffic.
    Multi-node coherent emulation is the board's job.

    Args:
        config: cache geometry; only LRU replacement is supported here
            (the validation baseline predates fancier policies).
        local_cpus: bus IDs whose traffic the cache absorbs; ``None`` means
            every master is local.  Traffic from non-local masters (DMA
            bridges) is treated the way the board treats it: reads demote
            dirty copies, writes invalidate.
    """

    def __init__(
        self,
        config: CacheNodeConfig,
        local_cpus: Optional[frozenset] = None,
    ) -> None:
        config.validate_geometry()
        if config.replacement != "lru":
            raise ConfigurationError(
                "the C simulator models LRU only; "
                f"got {config.replacement!r}"
            )
        self.config = config
        self.local_cpus = local_cpus
        self._offset_bits = log2_int(config.line_size)
        self._set_mask = config.num_sets - 1
        # sets[i] maps tag -> state, insertion-ordered; Python dicts preserve
        # insertion order, so "delete + reinsert on touch" gives exact LRU
        # (LRU victim at the front, MRU at the back).
        self._sets: list[dict] = [dict() for _ in range(config.num_sets)]

    def reset(self) -> None:
        """Invalidate the simulated cache."""
        for cache_set in self._sets:
            cache_set.clear()

    def simulate(self, trace: BusTrace, fresh: bool = True) -> TraceSimResult:
        """Run a trace; returns counters plus measured wall time.

        Args:
            trace: the packed bus trace to consume.
            fresh: start from an empty cache (default).  Pass False to
                continue from the previous call's state — the
                execution-driven model feeds chunks incrementally this way.
        """
        if fresh:
            self.reset()
        result = TraceSimResult()
        offset_bits = self._offset_bits
        set_mask = self._set_mask
        assoc = self.config.assoc
        sets = self._sets

        local_cpus = self.local_cpus
        started = time.perf_counter()
        for cpu_id, command, address, response in iter_decoded(trace.words):
            if command not in _MEMORY_COMMANDS or response == _RETRY:
                result.filtered += 1
                continue
            line = address >> offset_bits
            cache_set = sets[line & set_mask]
            tag = line  # the full line number doubles as the tag key

            if local_cpus is not None and cpu_id not in local_cpus:
                # Foreign master: reads demote dirty data; ownership claims
                # and DMA writes invalidate; an unmapped *processor's*
                # castout goes to memory and touches nothing — mirroring
                # the board's remote-op routing.
                if command == _CASTOUT and cpu_id <= 15:
                    continue
                state = cache_set.get(tag)
                if state is None:
                    continue
                if command == _READ:
                    if state == _DIRTY:
                        cache_set[tag] = _CLEAN
                else:
                    del cache_set[tag]
                continue

            if command == _READ:
                result.reads += 1
                is_write = False
            elif command == _CASTOUT:
                result.castouts += 1
                is_write = True
            else:
                result.writes += 1
                is_write = True

            state = cache_set.get(tag)
            if state is not None:
                if command == _READ:
                    result.read_hits += 1
                elif command == _CASTOUT:
                    result.castout_hits += 1
                else:
                    result.write_hits += 1
                # Refresh LRU position; promote to dirty on writes.
                del cache_set[tag]
                cache_set[tag] = _DIRTY if (is_write or state == _DIRTY) else _CLEAN
                continue

            if command == _READ:
                result.read_misses += 1
            elif command == _CASTOUT:
                result.castout_misses += 1
            else:
                result.write_misses += 1
            if len(cache_set) >= assoc:
                victim_tag = next(iter(cache_set))
                victim_state = cache_set.pop(victim_tag)
                if victim_state == _DIRTY:
                    result.dirty_evictions += 1
                else:
                    result.clean_evictions += 1
            cache_set[tag] = _DIRTY if is_write else _CLEAN

        result.elapsed_seconds = time.perf_counter() - started
        result.references = result.reads + result.writes
        return result

    def throughput_refs_per_second(self, result: TraceSimResult) -> float:
        """Measured simulation speed of the last run."""
        total = result.references + result.castouts + result.filtered
        if result.elapsed_seconds <= 0:
            return float("inf")
        return total / result.elapsed_seconds


def main(argv=None) -> int:
    """Command-line trace-driven simulation (a dineroIV-style front end).

    Usage::

        python -m repro.sim.trace_sim TRACE --size 64MB [--assoc 4]
            [--line 128] [--cpus 0,1,2,3]

    Prints the hit/miss breakdown, the measured simulation speed, and —
    for the Table 3 comparison — the wall-clock time the real board would
    have taken for the same trace.
    """
    import argparse

    from repro.bus.trace import TraceReader
    from repro.common.units import parse_size
    from repro.sim.timing import memories_runtime_seconds

    parser = argparse.ArgumentParser(
        prog="repro.sim.trace_sim", description=main.__doc__
    )
    parser.add_argument("trace", help="trace file written by TraceWriter")
    parser.add_argument("--size", required=True, help="cache size, e.g. 64MB")
    parser.add_argument("--assoc", type=int, default=4)
    parser.add_argument("--line", type=int, default=128)
    parser.add_argument(
        "--cpus",
        default=None,
        help="comma-separated local CPU IDs (default: all masters local)",
    )
    args = parser.parse_args(argv)

    local_cpus = (
        frozenset(int(c) for c in args.cpus.split(",")) if args.cpus else None
    )
    config = CacheNodeConfig(
        size=parse_size(args.size), assoc=args.assoc, line_size=args.line
    )
    config.validate_geometry()
    trace = TraceReader(args.trace).load()
    simulator = TraceSimulator(config, local_cpus=local_cpus)
    result = simulator.simulate(trace)

    print(f"trace     : {args.trace} ({len(trace):,} records)")
    print(f"cache     : {args.size} {args.assoc}-way, {args.line}B lines")
    for name, value in result.counter_view().items():
        print(f"  {name:16s} {value:>12,}")
    print(f"miss ratio: {result.miss_ratio:.4f}")
    print(
        f"simulated in {result.elapsed_seconds:.3f}s "
        f"({simulator.throughput_refs_per_second(result) / 1e6:.2f}M refs/s); "
        f"the board would have taken "
        f"{memories_runtime_seconds(len(trace)):.4f}s of real time"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
