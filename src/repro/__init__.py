"""MemorIES reproduction: programmable bus-snooping cache emulation.

A software reproduction of *MemorIES: A Programmable, Real-Time Hardware
Emulation Tool for Multiprocessor Server Design* (Nanda et al., IBM T.J.
Watson / ASPLOS 2000).  The package models the full stack the paper
describes: an S7A-class host SMP with snooping L2 caches on a 6xx bus
(:mod:`repro.host`, :mod:`repro.bus`), the MemorIES board itself — address
filter, counter FPGAs, four programmable cache-node controllers, SDRAM
directory with realistic buffering, console software and alternate firmware
images (:mod:`repro.memories`) — plus the synthetic workloads, baseline
simulators and experiment harness needed to regenerate every table and
figure of the paper's evaluation (:mod:`repro.workloads`, :mod:`repro.sim`,
:mod:`repro.experiments`).

Quickstart::

    from repro import (CacheNodeConfig, MemoriesConsole, HostSMP,
                       single_node_machine, paper_tpcc)

    console = MemoriesConsole()
    board = console.power_up(
        single_node_machine(CacheNodeConfig.create("64MB"), n_cpus=8))
    host = HostSMP()
    host.plug_in(board)
    workload = paper_tpcc(scale=1024)
    host.run(workload.chunks(500_000))
    print(console.report())
"""

from repro.bus import BusTrace, SystemBus, TraceReader, TraceWriter
from repro.host import HostConfig, HostSMP, S7A_HOST
from repro.memories import (
    CacheNodeConfig,
    MemoriesBoard,
    MemoriesConsole,
    ProtocolTable,
    board_for_machine,
    load_protocol,
)
from repro.sim import AugmintModel, TraceSimulator
from repro.telemetry import (
    CounterSampler,
    JsonlSink,
    MemorySink,
    RunTrace,
    TelemetrySeries,
)
from repro.target import (
    multi_config_machine,
    single_node_machine,
    split_smp_machine,
)
from repro.workloads import (
    JournalBugOverlay,
    TpccWorkload,
    TpchWorkload,
    capture_bus_trace,
    paper_tpcc,
    paper_tpch,
)

__version__ = "1.0.0"

__all__ = [
    "AugmintModel",
    "BusTrace",
    "CacheNodeConfig",
    "CounterSampler",
    "HostConfig",
    "HostSMP",
    "JournalBugOverlay",
    "JsonlSink",
    "MemoriesBoard",
    "MemoriesConsole",
    "MemorySink",
    "ProtocolTable",
    "RunTrace",
    "S7A_HOST",
    "SystemBus",
    "TelemetrySeries",
    "TpccWorkload",
    "TpchWorkload",
    "TraceReader",
    "TraceSimulator",
    "TraceWriter",
    "board_for_machine",
    "capture_bus_trace",
    "load_protocol",
    "multi_config_machine",
    "paper_tpcc",
    "paper_tpch",
    "single_node_machine",
    "split_smp_machine",
    "__version__",
]
