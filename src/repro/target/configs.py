"""Preset target-machine geometries used throughout the paper's studies.

Three shapes cover every case study:

* :func:`single_node_machine` — one emulated shared cache in front of all
  CPUs (Figure 3's "single node" configuration; the L3 studies).
* :func:`split_smp_machine` — the SMP split into equal coherent nodes of
  ``procs_per_node`` CPUs each (the NUMA / sharing studies, Figure 9/12).
* :func:`multi_config_machine` — one node per cache configuration, each in
  its own coherence group and seeing *all* CPUs, so several designs are
  measured against the same reference stream in parallel (Figure 4).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig
from repro.target.mapping import (
    MAX_EMULATED_NODES,
    TargetMachine,
    TargetNodeSpec,
)


def single_node_machine(
    config: CacheNodeConfig, n_cpus: int, name: str = ""
) -> TargetMachine:
    """One emulated node absorbing the traffic of all ``n_cpus`` CPUs."""
    if n_cpus < 1:
        raise ConfigurationError(f"need at least one CPU, got {n_cpus}")
    spec = TargetNodeSpec(
        config=replace(config, procs_per_node=n_cpus),
        cpus=tuple(range(n_cpus)),
        group=0,
    )
    return TargetMachine(nodes=(spec,), name=name or "single-node")


def split_smp_machine(
    config: CacheNodeConfig,
    n_cpus: int,
    procs_per_node: int,
    truncate: bool = False,
    name: str = "",
) -> TargetMachine:
    """The SMP split into coherent nodes of ``procs_per_node`` CPUs each.

    All nodes share coherence group 0 and the same cache configuration.
    When the split needs more than four nodes, pass ``truncate=True`` to
    emulate only the first four (the remaining CPUs become unmapped
    masters whose coherence traffic the board still snoops).
    """
    if procs_per_node < 1:
        raise ConfigurationError(
            f"processors per node must be >= 1, got {procs_per_node}"
        )
    if n_cpus % procs_per_node != 0:
        raise ConfigurationError(
            f"{n_cpus} CPUs do not split into nodes of {procs_per_node}"
        )
    n_nodes = n_cpus // procs_per_node
    if n_nodes > MAX_EMULATED_NODES:
        if not truncate:
            raise ConfigurationError(
                f"{n_cpus}/{procs_per_node} needs {n_nodes} nodes but the "
                f"board has {MAX_EMULATED_NODES}; pass truncate=True to "
                f"emulate the first {MAX_EMULATED_NODES}"
            )
        n_nodes = MAX_EMULATED_NODES
    node_config = replace(config, procs_per_node=procs_per_node)
    specs = tuple(
        TargetNodeSpec(
            config=node_config,
            cpus=tuple(
                range(index * procs_per_node, (index + 1) * procs_per_node)
            ),
            group=0,
        )
        for index in range(n_nodes)
    )
    return TargetMachine(
        nodes=specs, name=name or f"split-{n_nodes}x{procs_per_node}"
    )


def multi_config_machine(
    configs: Sequence[CacheNodeConfig], n_cpus: int, name: str = ""
) -> TargetMachine:
    """One node per configuration, each in its own coherence group.

    Every node sees all CPUs as local, so up to four cache designs are
    evaluated against the identical reference stream in one run — the
    multi-configuration mode of Figure 4.
    """
    configs = list(configs)
    if not configs:
        raise ConfigurationError("need at least one cache configuration")
    if len(configs) > MAX_EMULATED_NODES:
        raise ConfigurationError(
            f"the board has {MAX_EMULATED_NODES} node controllers; "
            f"cannot evaluate {len(configs)} configurations at once"
        )
    specs = tuple(
        TargetNodeSpec(
            config=replace(config, procs_per_node=n_cpus),
            cpus=tuple(range(n_cpus)),
            group=group,
        )
        for group, config in enumerate(configs)
    )
    return TargetMachine(nodes=specs, name=name or f"multi-{len(configs)}")
