"""Mapping host CPUs onto emulated shared-cache nodes.

Section 2.1: MemorIES "can be configured to emulate up to 4 SMP nodes",
and the node controllers decide locality by the bus ID of the requesting
processor.  A :class:`TargetNodeSpec` binds one cache configuration to the
set of host CPUs whose traffic it absorbs; a :class:`TargetMachine` is the
complete board programming — a list of node specs partitioned into
*coherence groups* (Figure 4's multi-configuration mode runs several
groups side by side against the same reference stream).

Rules enforced here (the console refuses violating programmings):

* a spec's CPU list matches its config's ``procs_per_node``;
* within one coherence group no CPU belongs to two nodes (across groups
  overlap is the whole point — each group independently emulates the
  full machine);
* at most :data:`MAX_EMULATED_NODES` nodes fit on one board.

Machines serialise to JSON "programming files" via :meth:`TargetMachine.save`
and :meth:`TargetMachine.load`; loading re-validates everything.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.common.errors import ConfigurationError
from repro.memories.config import CacheNodeConfig

#: The board instantiates at most four node controllers (Nodes A..D).
MAX_EMULATED_NODES = 4

#: Console labels for the four node controller slots.
NODE_LABELS = ("A", "B", "C", "D")


@dataclass(frozen=True)
class TargetNodeSpec:
    """One emulated node: a cache configuration plus its local CPUs.

    Attributes:
        config: the emulated cache's configuration.
        cpus: host CPU bus IDs whose traffic is local to this node.
        group: coherence group index; nodes of the same group keep each
            other coherent, nodes of different groups never interact.
    """

    config: CacheNodeConfig
    cpus: Tuple[int, ...]
    group: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "cpus", tuple(int(cpu) for cpu in self.cpus))
        if not self.cpus:
            raise ConfigurationError("a node spec needs at least one CPU")
        if any(cpu < 0 for cpu in self.cpus):
            raise ConfigurationError(
                f"negative CPU id in {self.cpus}; bus IDs are non-negative"
            )
        if len(set(self.cpus)) != len(self.cpus):
            raise ConfigurationError(f"duplicate CPU ids in {self.cpus}")
        if self.group < 0:
            raise ConfigurationError(f"negative coherence group {self.group}")
        if len(self.cpus) != self.config.procs_per_node:
            raise ConfigurationError(
                f"config declares {self.config.procs_per_node} processors "
                f"per node but the spec maps {len(self.cpus)} CPUs"
            )

    def to_dict(self) -> dict:
        """JSON-compatible form (used by programming files)."""
        return {
            "config": asdict(self.config),
            "cpus": list(self.cpus),
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TargetNodeSpec":
        try:
            config = CacheNodeConfig(**data["config"])
            cpus = tuple(data["cpus"])
            group = int(data.get("group", 0))
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed node spec in programming file: {exc}"
            ) from exc
        return cls(config=config, cpus=cpus, group=group)


@dataclass(frozen=True)
class TargetMachine:
    """A complete board programming: up to four node specs.

    Attributes:
        nodes: the emulated nodes, in board slot order (A..D).
        name: console label (also becomes the board's name).
    """

    nodes: Tuple[TargetNodeSpec, ...]
    name: str = "target"

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ConfigurationError("a target machine needs at least one node")
        if len(self.nodes) > MAX_EMULATED_NODES:
            raise ConfigurationError(
                f"the board has {MAX_EMULATED_NODES} node controllers; "
                f"cannot program {len(self.nodes)} nodes"
            )
        seen: Dict[int, Dict[int, int]] = {}
        for index, spec in enumerate(self.nodes):
            owned = seen.setdefault(spec.group, {})
            for cpu in spec.cpus:
                if cpu in owned:
                    raise ConfigurationError(
                        f"CPU {cpu} mapped to nodes {owned[cpu]} and {index} "
                        f"of the same coherence group {spec.group}"
                    )
                owned[cpu] = index

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def groups(self) -> Dict[int, List[int]]:
        """Coherence group -> node indices, in slot order."""
        grouped: Dict[int, List[int]] = {}
        for index, spec in enumerate(self.nodes):
            grouped.setdefault(spec.group, []).append(index)
        return grouped

    def node_for_cpu(self, cpu: int, group: int = 0) -> int:
        """Index of the node owning ``cpu`` within ``group``, or -1."""
        for index, spec in enumerate(self.nodes):
            if spec.group == group and cpu in spec.cpus:
                return index
        return -1

    def all_cpus(self) -> Tuple[int, ...]:
        """Every mapped host CPU, ascending, without duplicates."""
        cpus = set()
        for spec in self.nodes:
            cpus.update(spec.cpus)
        return tuple(sorted(cpus))

    def describe(self) -> str:
        """Multi-line console description of the programming."""
        n_groups = len(self.groups())
        lines = [
            f"target {self.name!r}: {len(self.nodes)} node(s), "
            f"{n_groups} coherence group(s), CPUs {_cpu_ranges(self.all_cpus())}"
        ]
        for index, spec in enumerate(self.nodes):
            label = NODE_LABELS[index]
            lines.append(
                f"  node {label} (group {spec.group}): "
                f"CPUs {_cpu_ranges(spec.cpus)}  {spec.config.describe()}"
            )
        return "\n".join(lines)

    def fingerprint(self) -> str:
        """Stable digest of the complete programming.

        Checkpoint files carry this so a restore into a board programmed
        with a *different* machine is refused outright instead of silently
        mis-replaying (the node counts may match while geometry differs).
        """
        import hashlib

        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # Programming files
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-compatible programming-file structure."""
        return {
            "name": self.name,
            "nodes": [spec.to_dict() for spec in self.nodes],
        }

    def save(self, path: Union[str, Path]) -> None:
        """Write the programming file the console would upload."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def from_dict(cls, data: dict) -> "TargetMachine":
        """Rebuild (and re-validate) a machine from its dict form."""
        try:
            name = str(data.get("name", "target"))
            node_entries = list(data["nodes"])
        except (KeyError, TypeError, AttributeError) as exc:
            raise ConfigurationError(
                f"malformed programming file: {exc}"
            ) from exc
        nodes = tuple(TargetNodeSpec.from_dict(entry) for entry in node_entries)
        return cls(nodes=nodes, name=name)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TargetMachine":
        """Read a programming file; re-validates every rule."""
        try:
            data = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"malformed programming file {path}: {exc}"
            ) from exc
        return cls.from_dict(data)


def _cpu_ranges(cpus: Sequence[int]) -> str:
    """Compact rendering of a CPU list: (0, 1, 2, 3, 7) -> '0-3,7'."""
    if not cpus:
        return "-"
    ordered = sorted(cpus)
    parts: List[str] = []
    start = previous = ordered[0]
    for cpu in ordered[1:]:
        if cpu == previous + 1:
            previous = cpu
            continue
        parts.append(str(start) if start == previous else f"{start}-{previous}")
        start = previous = cpu
    parts.append(str(start) if start == previous else f"{start}-{previous}")
    return ",".join(parts)
