"""Target-machine programming: partitioning host CPUs into emulated nodes.

The console programs the board with a *target machine*: up to four emulated
shared-cache nodes, each absorbing the traffic of a subset of host CPUs,
grouped into coherence groups (Figures 3 and 4 of the paper).  This package
owns that programming artifact — its validation, serialisation ("programming
files") and the preset geometries every case study uses.
"""

from repro.target.configs import (
    multi_config_machine,
    single_node_machine,
    split_smp_machine,
)
from repro.target.mapping import (
    MAX_EMULATED_NODES,
    TargetMachine,
    TargetNodeSpec,
)

__all__ = [
    "MAX_EMULATED_NODES",
    "TargetMachine",
    "TargetNodeSpec",
    "multi_config_machine",
    "single_node_machine",
    "split_smp_machine",
]
