"""The capability vocabulary and the static capability prover.

A *capability* is a property of a programmed board (plus, for sharding,
a shard spec) that an engine's bit-identity argument depends on.  The
prover derives the granted set by inspecting the configuration — never
by running it — so engine eligibility is known before the first record
replays, and every denial carries the concrete reason.

The capability semantics (each is the precondition of a proof obligation
discharged in the engine's module docstring and test suite):

``EXACT_FLOAT_CLOCK``
    The engine advances ``now_cycle`` by IEEE-754 additions in exactly
    the serial order (the batched engine's ``cumsum`` matches serial
    accumulation bit for bit).  Granted for every configuration today;
    declared so future compiled/GPU backends that reassociate the clock
    sum are forced to say so.
``INERT_BACKGROUND_TICK``
    The per-tenure firmware tick is a no-op, so an engine that does not
    interleave ticks between tenures loses nothing.  Denied while any
    in-service node runs an ECC patrol scrubber.
``PER_SET_INDEPENDENCE``
    Every hit/miss/victim decision depends only on the history of its
    own cache set.  Denied by ``random`` replacement (victims come from
    one board-wide RNG stream whose draw order is global) and by the
    SDRAM timing model (service times depend on global access order).
``NO_GLOBAL_ORDER_COUPLING``
    Transaction-buffer occupancy cannot couple records across shards:
    every buffer drains within one bus tenure, so queue depth never
    exceeds one and occupancy history is order-free.
``SHARD_DECOMPOSABLE_SETS``
    The shard index field fits inside **every** node's set-index field,
    so no cache set is split across workers.  Only provable against a
    concrete :class:`ShardSpec`.
``DETERMINISTIC_REPLACEMENT``
    Every victim choice is a pure function of the set's own dense
    replacement metadata (LRU order, FIFO order, PLRU tree bits), so a
    compiled kernel can re-derive it from flat arrays.  Denied by the
    ``random`` policy — victims come from one board-wide RNG stream whose
    draw order only the object-graph paths reproduce — and by custom
    policy classes with no compiled lowering.
``DENSE_PROTOCOL_STATE``
    The whole protocol state of every node lowers to dense integer
    arrays: plain (unprotected) tag/state directories, constant
    transaction-buffer service times, and precomputed coherence-group
    routing.  Denied by ECC-protected directories (states carry packed
    check bits and demand-verification), by the SDRAM timing model
    (address-dependent service pricing), and by firmware images without
    the stock group routing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Capability(enum.Enum):
    """Configuration properties engines can require (values are the
    stable names used in CLI output, findings and docs)."""

    EXACT_FLOAT_CLOCK = "exact_float_clock"
    INERT_BACKGROUND_TICK = "inert_background_tick"
    PER_SET_INDEPENDENCE = "per_set_independence"
    NO_GLOBAL_ORDER_COUPLING = "no_global_order_coupling"
    SHARD_DECOMPOSABLE_SETS = "shard_decomposable_sets"
    DETERMINISTIC_REPLACEMENT = "deterministic_replacement"
    DENSE_PROTOCOL_STATE = "dense_protocol_state"

    def __str__(self) -> str:  # readable in f-strings and reports
        return self.value


@dataclass(frozen=True)
class ShardSpec:
    """A requested set-interleaved decomposition: ``shards`` workers.

    Structural validity (power-of-two count) is checked by the prover
    and reported under rule ``EN302`` — it is a property of the request,
    not of the machine.
    """

    shards: int

    @property
    def shard_bits(self) -> int:
        return max(self.shards.bit_length() - 1, 0)

    def structural_errors(self) -> List[str]:
        if self.shards < 1 or (self.shards & (self.shards - 1)) != 0:
            return [
                f"shard count must be a power of two, got {self.shards}"
            ]
        return []


@dataclass
class CapabilityProof:
    """The prover's verdict for one board (+ optional shard spec).

    Attributes:
        granted: capabilities the configuration provides.
        denials: capability -> reasons it was denied (one entry per
            violating feature, so a report can name all of them).
        structural: shard-spec errors that are not capability denials
            (``EN302``).
        shard_shift: the address bit where the shard index field starts
            (the widest line-offset field across nodes); 0 when no nodes
            or no spec.
    """

    granted: frozenset = frozenset()
    denials: Dict[Capability, List[str]] = field(default_factory=dict)
    structural: List[str] = field(default_factory=list)
    shard_shift: int = 0

    def grants(self, capability: Capability) -> bool:
        return capability in self.granted

    def reasons(self, capability: Capability) -> Tuple[str, ...]:
        return tuple(self.denials.get(capability, ()))


def prove_capabilities(
    board, spec: Optional[ShardSpec] = None
) -> CapabilityProof:
    """Statically evaluate which capabilities ``board`` grants.

    ``board`` is a programmed :class:`~repro.memories.board.MemoriesBoard`
    (build one from a machine with
    :func:`~repro.memories.board.board_for_machine`); nothing is
    replayed or mutated.  Without a ``spec``,
    :attr:`~Capability.SHARD_DECOMPOSABLE_SETS` is denied as unprovable
    rather than assumed.
    """
    proof = CapabilityProof()
    denials: Dict[Capability, List[str]] = {}

    def deny(capability: Capability, reason: str) -> None:
        denials.setdefault(capability, []).append(reason)

    # EXACT_FLOAT_CLOCK — every current engine reproduces the serial
    # IEEE-754 accumulation order (cumsum == repeated addition, proven in
    # tests/test_batched_replay); the capability exists so a future
    # backend that reassociates the sum must declare the loss.

    # INERT_BACKGROUND_TICK — the tick hook must be absent, or present
    # and provably idle.
    if board._firmware_tick is not None:
        tick_active = getattr(board.firmware, "tick_active", None)
        if tick_active is None:
            deny(
                Capability.INERT_BACKGROUND_TICK,
                "firmware has a tick hook but no tick_active() hint, so "
                "the tick cannot be proven idle",
            )
        elif tick_active():
            deny(
                Capability.INERT_BACKGROUND_TICK,
                "time-driven firmware machinery is active (an in-service "
                "node runs an ECC patrol scrubber); ticks must interleave "
                "between tenures",
            )

    nodes = list(getattr(board.firmware, "nodes", []))
    if not nodes:
        reason = (
            "firmware exposes no cache nodes; per-set decomposition is "
            "undefined for this image"
        )
        deny(Capability.PER_SET_INDEPENDENCE, reason)
        deny(Capability.SHARD_DECOMPOSABLE_SETS, reason)
        deny(
            Capability.DENSE_PROTOCOL_STATE,
            "firmware exposes no cache nodes to lower into flat arrays",
        )

    # DETERMINISTIC_REPLACEMENT — every victim choice must be a pure
    # function of the set's own dense metadata so a compiled kernel can
    # re-derive it without the policy object graph.
    from repro.memories.replacement import FifoPolicy, LruPolicy, PlruPolicy

    for node in nodes:
        policy = getattr(node.directory, "policy", None)
        if node.config.replacement == "random":
            deny(
                Capability.DETERMINISTIC_REPLACEMENT,
                "compiled kernels cannot reproduce 'random' replacement: "
                "victim draws come from one board-wide RNG stream whose "
                "order only the object-graph replay preserves",
            )
        elif type(policy) not in (LruPolicy, FifoPolicy, PlruPolicy):
            deny(
                Capability.DETERMINISTIC_REPLACEMENT,
                f"node{node.index} replacement policy "
                f"{type(policy).__name__} has no compiled lowering",
            )

    # DENSE_PROTOCOL_STATE — directories, buffers and routing must all
    # lower to dense integer arrays.
    if nodes and getattr(board.firmware, "_groups", None) is None:
        deny(
            Capability.DENSE_PROTOCOL_STATE,
            "firmware image does not expose precomputed coherence-group "
            "routing (_groups); its dispatch cannot be lowered",
        )
    for node in nodes:
        if node.ecc:
            deny(
                Capability.DENSE_PROTOCOL_STATE,
                f"node{node.index} directory is ECC-protected: stored "
                "states carry packed check bits and probes demand-verify "
                "lines, which flat tag/state arrays cannot express",
            )
        if node.sdram is not None:
            deny(
                Capability.DENSE_PROTOCOL_STATE,
                f"node{node.index} prices directory operations through "
                "the SDRAM timing model: service times are "
                "address-dependent, not the constant the kernel inlines",
            )

    # PER_SET_INDEPENDENCE — no feature may couple decisions across sets.
    for node in nodes:
        if node.config.replacement == "random":
            deny(
                Capability.PER_SET_INDEPENDENCE,
                "sharded replay cannot reproduce 'random' replacement: "
                "victim draws come from one board-wide RNG stream",
            )
        if node.sdram is not None:
            deny(
                Capability.PER_SET_INDEPENDENCE,
                "sharded replay does not support the SDRAM timing model: "
                "per-operation service times depend on global access order",
            )

    # NO_GLOBAL_ORDER_COUPLING — every buffer drains within one tenure.
    for node in nodes:
        if node.buffer.service_cycles > board.cycles_per_tenure:
            deny(
                Capability.NO_GLOBAL_ORDER_COUPLING,
                f"node{node.index} buffer service "
                f"({node.buffer.service_cycles:g} cycles) exceeds the bus "
                f"tenure ({board.cycles_per_tenure:g} cycles): queue depth "
                f"would depend on global arrival order; raise "
                f"assumed_utilization's tenure spacing or replay serially",
            )
    if board.address_filter.buffer.service_cycles > board.cycles_per_tenure:
        deny(
            Capability.NO_GLOBAL_ORDER_COUPLING,
            "address-filter buffer service exceeds the bus tenure; "
            "occupancy would depend on global arrival order",
        )

    # SHARD_DECOMPOSABLE_SETS — the shard field must sit inside every
    # node's set-index field.
    shard_shift = 0
    for node in nodes:
        shard_shift = max(shard_shift, node.directory.amap.offset_bits)
    structural: List[str] = []
    if spec is None:
        if nodes:
            deny(
                Capability.SHARD_DECOMPOSABLE_SETS,
                "no shard spec given; decomposability is only provable "
                "against a concrete shard count",
            )
    else:
        structural = spec.structural_errors()
        if not structural:
            for node in nodes:
                amap = node.directory.amap
                index_top = amap.offset_bits + amap.index_bits
                if shard_shift + spec.shard_bits > index_top:
                    deny(
                        Capability.SHARD_DECOMPOSABLE_SETS,
                        f"{spec.shards} shards need address bits "
                        f"[{shard_shift}, {shard_shift + spec.shard_bits}) "
                        f"but node{node.index}'s set-index field ends at "
                        f"bit {index_top}; use at most "
                        f"{1 << max(index_top - shard_shift, 0)} shard(s)",
                    )

    proof.granted = frozenset(
        capability for capability in Capability if capability not in denials
    )
    proof.denials = denials
    proof.structural = structural
    proof.shard_shift = shard_shift
    return proof
