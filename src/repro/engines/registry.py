"""The engine registry: declared requirements, audited decisions.

Each replay engine registers an :class:`EngineSpec` naming the
capabilities its bit-identity proof requires.  :func:`decide` runs the
static prover over a programmed board and compares requirement to grant,
producing an :class:`EngineDecision` whose report *is* the audit trail:
one ``EN301`` error finding per missing capability (with the prover's
reason) and ``EN302`` errors for structurally invalid shard specs.

Engine scopes:

``board``
    In-process engines replaying packed words on one board (scalar,
    batched, compiled).  :func:`select_board_engine` is the single
    selection point
    — :meth:`MemoriesBoard._replay_words
    <repro.memories.board.MemoriesBoard._replay_words>` and the
    supervisor's shard workers route through it, so no replay path
    carries its own refusal logic.
``trace``
    Whole-trace orchestrations that decompose the input before boards
    exist (sharded).  :func:`repro.experiments.pipeline.validate_sharding`
    delegates here.

Selection honours the board's ``batched_replay`` preference flag: with
it cleared, only rank-0 engines (the scalar reference path) are
candidates — the flag expresses *intent* (A/B benchmarking, bisection),
while capability eligibility expresses *correctness*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.common.errors import ConfigurationError
from repro.engines.capabilities import (
    Capability,
    CapabilityProof,
    ShardSpec,
    prove_capabilities,
)
from repro.verify.findings import Report


@dataclass(frozen=True)
class EngineSpec:
    """One registered replay engine.

    Attributes:
        name: registry key (``scalar``, ``batched``, ``sharded`` ...).
        description: one line for ``verify engines`` output.
        requires: capabilities the engine's bit-identity proof needs.
        rank: selection preference among eligible engines (higher wins;
            the scalar reference engine is rank 0 and requires nothing,
            so selection always has a fallback).
        scope: ``"board"`` for in-process word replay, ``"trace"`` for
            whole-trace orchestration.
        replay: for board-scope engines, ``replay(board, words) -> int``;
            None for trace-scope engines (their orchestration lives in
            :mod:`repro.experiments.pipeline`).
    """

    name: str
    description: str
    requires: frozenset
    rank: int
    scope: str = "board"
    replay: Optional[Callable] = None


#: name -> spec, in registration order.
ENGINES: Dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    """Add an engine to the registry (future backends plug in here)."""
    if spec.name in ENGINES:
        raise ConfigurationError(
            f"engine {spec.name!r} is already registered"
        )
    ENGINES[spec.name] = spec
    return spec


@dataclass
class EngineDecision:
    """The audited verdict for one engine against one configuration."""

    spec: EngineSpec
    proof: CapabilityProof
    report: Report

    @property
    def missing(self) -> frozenset:
        return frozenset(self.spec.requires - self.proof.granted)

    @property
    def eligible(self) -> bool:
        return self.report.ok

    @property
    def shard_shift(self) -> int:
        return self.proof.shard_shift

    def reason(self) -> str:
        """The first error message (for exception surfaces)."""
        errors = self.report.errors
        return errors[0].message if errors else ""


def _decision(spec: EngineSpec, proof: CapabilityProof) -> EngineDecision:
    report = Report(subject=f"engine '{spec.name}'")
    report.ran("missing-capability")
    report.ran("shard-spec")
    for message in proof.structural:
        report.error("shard-spec", message, rule="EN302")
    for capability in sorted(spec.requires, key=lambda c: c.value):
        if proof.grants(capability):
            report.info(
                "missing-capability",
                f"capability {capability} granted",
                rule="EN301",
            )
            continue
        reasons = proof.reasons(capability) or (
            "configuration does not grant it",
        )
        for reason in reasons:
            report.error(
                "missing-capability",
                reason,
                location=f"capability {capability}",
                rule="EN301",
            )
    return EngineDecision(spec=spec, proof=proof, report=report)


def decide(
    engine: str,
    board=None,
    machine=None,
    shards: Optional[int] = None,
) -> EngineDecision:
    """Prove one engine eligible (or not) for a configuration.

    Pass a programmed ``board``, or a ``machine`` from which one is
    built.  ``shards`` (for trace-scope engines) becomes the
    :class:`~repro.engines.capabilities.ShardSpec` under proof.
    """
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r}; registered: "
            f"{', '.join(sorted(ENGINES))}"
        )
    if board is None:
        if machine is None:
            raise ConfigurationError(
                "decide() needs a board or a machine to prove against"
            )
        from repro.memories.board import board_for_machine

        board = board_for_machine(machine)
    spec = ShardSpec(shards) if shards is not None else None
    proof = prove_capabilities(board, spec)
    return _decision(ENGINES[engine], proof)


def decide_all(
    board=None, machine=None, shards: Optional[int] = None
) -> List[EngineDecision]:
    """Decisions for every registered engine, in registration order."""
    if board is None:
        if machine is None:
            raise ConfigurationError(
                "decide_all() needs a board or a machine to prove against"
            )
        from repro.memories.board import board_for_machine

        board = board_for_machine(machine)
    spec = ShardSpec(shards) if shards is not None else None
    proof = prove_capabilities(board, spec)
    return [_decision(spec_, proof) for spec_ in ENGINES.values()]


def select_board_engine(board) -> EngineSpec:
    """Pick the best eligible board-scope engine for one board.

    The single in-process selection point: highest-rank engine whose
    required capabilities the board grants, restricted to rank 0 (the
    scalar reference path) when the board's ``batched_replay`` preference
    flag is cleared.  Always returns an engine — the scalar engine
    requires nothing.
    """
    proof = prove_capabilities(board)
    best: Optional[EngineSpec] = None
    for spec in ENGINES.values():
        if spec.scope != "board" or spec.replay is None:
            continue
        if not board.batched_replay and spec.rank > 0:
            continue
        if spec.requires - proof.granted:
            continue
        if best is None or spec.rank > best.rank:
            best = spec
    if best is None:  # pragma: no cover — scalar is always registered
        raise ConfigurationError(
            "no eligible board-scope engine is registered"
        )
    return best


# ---------------------------------------------------------------------- #
# Built-in engines
# ---------------------------------------------------------------------- #

def _replay_scalar(board, words) -> int:
    return board._replay_words_scalar(words)


def _replay_batched(board, words) -> int:
    from repro.memories import batch

    return batch.replay_words_batched(board, words)


def _replay_compiled(board, words) -> int:
    from repro.memories import compiled

    return compiled.replay_words_compiled(board, words)


register_engine(
    EngineSpec(
        name="scalar",
        description="reference per-record dispatch loop (always exact)",
        requires=frozenset(),
        rank=0,
        scope="board",
        replay=_replay_scalar,
    )
)

register_engine(
    EngineSpec(
        name="batched",
        description="vectorised chunk replay (repro.memories.batch)",
        requires=frozenset(
            {
                Capability.EXACT_FLOAT_CLOCK,
                Capability.INERT_BACKGROUND_TICK,
            }
        ),
        rank=10,
        scope="board",
        replay=_replay_batched,
    )
)

register_engine(
    EngineSpec(
        name="compiled",
        description=(
            "block protocol kernels over flat state arrays "
            "(repro.memories.compiled; numba-accelerated when present)"
        ),
        requires=frozenset(
            {
                Capability.EXACT_FLOAT_CLOCK,
                Capability.INERT_BACKGROUND_TICK,
                Capability.DETERMINISTIC_REPLACEMENT,
                Capability.DENSE_PROTOCOL_STATE,
            }
        ),
        rank=15,
        scope="board",
        replay=_replay_compiled,
    )
)

register_engine(
    EngineSpec(
        name="sharded",
        description=(
            "set-interleaved multi-process replay "
            "(repro.experiments.pipeline.sharded_replay)"
        ),
        requires=frozenset(
            {
                Capability.EXACT_FLOAT_CLOCK,
                Capability.PER_SET_INDEPENDENCE,
                Capability.NO_GLOBAL_ORDER_COUPLING,
                Capability.SHARD_DECOMPOSABLE_SETS,
            }
        ),
        rank=20,
        scope="trace",
    )
)
