"""Replay engine registry and static capability prover.

The repo replays one captured trace through several engines — the scalar
reference loop, the vectorised batched engine, the set-interleaved
sharded engine — under one contract: **bit-identical statistics**.  Each
engine's correctness argument only holds for configurations with certain
properties (no board-wide RNG coupling, inert background machinery,
shard-decomposable set indices ...).  Historically each engine checked
its own preconditions in scattered, ad-hoc refusal branches; this package
replaces them with a single auditable decision:

* :mod:`repro.engines.capabilities` — the capability vocabulary and the
  **static prover**: evaluate a programmed board (plus an optional shard
  spec) and return which capabilities the configuration *grants*, with a
  recorded reason for every denial.
* :mod:`repro.engines.registry` — each engine declares the capabilities
  it *requires*; :func:`~repro.engines.registry.decide` compares
  requirement to grant **before replay** and reports the verdict as a
  standard :class:`~repro.verify.findings.Report` (rule ``EN301`` per
  missing capability, ``EN302`` for structurally invalid shard specs),
  so "why was this engine rejected?" is a stored artifact, not a
  debugging session.

Future backends (compiled, GPU — ROADMAP item 2) plug in by registering
an :class:`~repro.engines.registry.EngineSpec`; they inherit the prover,
the CLI (``verify engines``) and the selection logic unchanged.
"""

from repro.engines.capabilities import (
    Capability,
    CapabilityProof,
    ShardSpec,
    prove_capabilities,
)
from repro.engines.registry import (
    ENGINES,
    EngineDecision,
    EngineSpec,
    decide,
    decide_all,
    register_engine,
    select_board_engine,
)

__all__ = [
    "Capability",
    "CapabilityProof",
    "ENGINES",
    "EngineDecision",
    "EngineSpec",
    "ShardSpec",
    "decide",
    "decide_all",
    "prove_capabilities",
    "register_engine",
    "select_board_engine",
]
