"""The batched replay engine: vectorised pre-decode, fused protocol loop.

The real board is a hardware pipeline — address filter FPGA, global events
counter FPGA, node controller FPGAs — that keeps up with a 100 MHz bus.
The scalar software path re-walks that pipeline object by object for every
tenure, which is faithful but slow.  This module is the board's "fast
datapath": :func:`replay_words_batched` replays a packed trace chunk with

* one vectorised pre-pass computing the address-filter admit mask (IO /
  interrupt / sync / retried tenures) over the whole chunk,
* bulk filter statistics, filter-buffer occupancy
  (:meth:`~repro.memories.tx_buffer.TransactionBuffer.offer_batch`) and
  global-counter updates
  (:meth:`~repro.memories.global_counter.GlobalEventsCounter.record_batch`),
* a bit-exact clock carried as one ``cumsum`` (sequential accumulation,
  so every intermediate ``now`` equals the scalar path's repeated
  addition), and
* a Python loop that runs protocol transitions **only for admitted
  tenures** — fused (directory, buffers and counters inlined) for the
  stock cache-emulation firmware, or generic (``firmware.process`` per
  admitted tenure) for any other image.

Bit-identity with :meth:`MemoriesBoard._replay_words_scalar` is the
contract, enforced by the property suite in ``tests/test_batched_replay``:
counter increments commute within a chunk, buffer and directory mutations
are applied in tenure order, and chunks are split at telemetry countdown
boundaries so every sampler observation sees exactly the state the scalar
path would show it.  Whenever an active feature breaks one of those
arguments (a live ECC patrol scrubber that must tick between tenures),
the engine registry (:mod:`repro.engines`) proves the capability missing
and routes the board to the scalar loop instead — the decision is made
statically, before replay, not inside this module.  (An SDRAM timing
model or an unknown replacement policy merely demotes the *fused* runner
to the generic one; both stay bit-exact.)
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bus.trace import decode_arrays
from repro.bus.transaction import BusCommand, SnoopResponse
from repro.memories.protocol_table import CacheOp, LineState
from repro.memories.replacement import (
    FifoPolicy,
    LruPolicy,
    PlruPolicy,
    RandomPolicy,
)

_IO_READ = int(BusCommand.IO_READ)
_IO_WRITE = int(BusCommand.IO_WRITE)
_INTERRUPT = int(BusCommand.INTERRUPT)
_SYNC = int(BusCommand.SYNC)
_RETRY = int(SnoopResponse.RETRY)

_READ = int(BusCommand.READ)
_CASTOUT = int(BusCommand.CASTOUT)
_LOCAL_WRITE = int(CacheOp.LOCAL_WRITE)
_LOCAL_CASTOUT = int(CacheOp.LOCAL_CASTOUT)
_REMOTE_READ = int(CacheOp.REMOTE_READ)
_REMOTE_WRITE = int(CacheOp.REMOTE_WRITE)
_SHARED = int(LineState.SHARED)
_OWNED = int(LineState.OWNED)
_N_STATES = max(int(state) for state in LineState) + 1
_N_OPS = max(int(op) for op in CacheOp) + 1

#: Enum lookup tables for the generic runner (index by raw field value).
_COMMANDS = [BusCommand(i) for i in range(max(int(c) for c in BusCommand) + 1)]
_RESPONSES = [SnoopResponse(i) for i in range(max(int(r) for r in SnoopResponse) + 1)]

#: Per local command (raw int 0..3): primary counter, secondary counter,
#: CacheOp, hit counter, miss counter, fetches-data flag — the constants
#: NodeController.process_local derives per tenure.
_LOCAL_CMD = [
    ("local.read", None, int(CacheOp.LOCAL_READ), "hit.read", "miss.read", True),
    ("local.write", None, _LOCAL_WRITE, "hit.write", "miss.write", True),
    ("local.write", "local.upgrade", _LOCAL_WRITE, "hit.write", "miss.write", False),
    ("local.castout", None, _LOCAL_CASTOUT, "hit.castout", "miss.castout", False),
]

_HIT_STATE_KEY = [f"hit_state.{LineState(i).name}" for i in range(_N_STATES)]
_FILL_KEY = [f"fill.{LineState(i).name}" for i in range(_N_STATES)]
_DIRTY_OF = [LineState(i).is_dirty for i in range(_N_STATES)]

#: Figure 12 satisfaction counters by snoop-response int, for hits/misses.
_SAT_HIT = ["satisfied.l3", "satisfied.shr_int", "satisfied.mod_int", None]
_SAT_MISS = ["satisfied.memory", "satisfied.shr_int", "satisfied.mod_int", None]

#: Bus IDs above this are I/O bridges (board.py's _MAX_PROCESSOR_ID).
_MAX_PROCESSOR_ID = 15


class _FusedNode:
    """Flattened hot-path view of one NodeController.

    Holds direct references to the controller's mutable structures (the
    finish-time deque, the directory's tag/state/way-map lists) plus local
    copies of scalar buffer statistics and a counter accumulator.  The
    scalars are loaded at chunk start and stored back at chunk end — safe
    because within a fused chunk *only* this engine touches them, and the
    board only reads them between chunks (telemetry boundaries).
    """

    __slots__ = (
        "buffer", "ft", "capacity", "service", "last_finish",
        "accepted", "rejected", "high_water",
        "tags", "states", "ways", "meta",
        "off_bits", "set_mask", "tag_shift",
        "trans", "fill_write", "fill_read_shared", "fill_read_alone",
        "install", "is_lru", "touch_meta",
        "acc", "counters", "peers",
    )

    def __init__(self, node) -> None:
        buffer = node.buffer
        self.buffer = buffer
        self.ft = buffer._finish_times
        self.capacity = buffer.capacity
        self.service = buffer.service_cycles
        directory = node.directory
        self.tags = directory._tags
        self.states = directory._states
        self.ways = directory._ways
        self.meta = directory._meta
        amap = directory.amap
        self.off_bits = amap.offset_bits
        self.set_mask = amap.num_sets - 1
        self.tag_shift = amap.offset_bits + amap.index_bits
        # Dense (op, state) -> (next_state, invalidates, is_hit) table.
        table: List[List[Optional[tuple]]] = [
            [None] * _N_STATES for _ in range(_N_OPS)
        ]
        for (op, state), transition in node._table.items():
            table[op][state] = (
                int(transition.next_state),
                transition.next_state is LineState.INVALID,
                transition.is_hit,
            )
        self.trans = table
        fill = node._fill
        self.fill_write = int(fill.write)
        self.fill_read_shared = int(fill.read_shared)
        self.fill_read_alone = int(fill.read_alone)
        self.install = directory.install
        policy = directory.policy
        self.is_lru = type(policy) is LruPolicy
        self.touch_meta = (
            policy._update_on_access if type(policy) is PlruPolicy else None
        )
        self.acc: dict = {}
        self.counters = node.counters
        self.peers: tuple = ()

    def load(self) -> None:
        """Snapshot the buffer scalars for the coming chunk."""
        buffer = self.buffer
        self.ft = buffer._finish_times
        self.last_finish = buffer._last_finish
        stats = buffer.stats
        self.accepted = stats.accepted
        self.rejected = stats.rejected
        self.high_water = stats.high_water

    def store(self) -> None:
        """Write buffer scalars back and flush accumulated counters."""
        buffer = self.buffer
        buffer._last_finish = self.last_finish
        stats = buffer.stats
        stats.accepted = self.accepted
        stats.rejected = self.rejected
        stats.high_water = self.high_water
        counters = self.counters
        for name, value in self.acc.items():
            counters.increment(name, value)
        self.acc.clear()


def _remote(fused: _FusedNode, op: int, address: int, now: float):
    """Inlined NodeController.process_remote on a fused node view."""
    acc = fused.acc
    if op == _REMOTE_READ:
        acc["remote.read"] = acc.get("remote.read", 0) + 1
    else:
        acc["remote.write"] = acc.get("remote.write", 0) + 1
    ft = fused.ft
    while ft and ft[0] <= now:
        ft.popleft()
    if len(ft) >= fused.capacity:
        fused.rejected += 1
        return False, False
    last = fused.last_finish
    start = now if now > last else last
    finish = start + fused.service
    ft.append(finish)
    fused.last_finish = finish
    fused.accepted += 1
    depth = len(ft)
    if depth > fused.high_water:
        fused.high_water = depth
    set_index = (address >> fused.off_bits) & fused.set_mask
    tag = address >> fused.tag_shift
    way = fused.ways[set_index].get(tag, -1)
    if way < 0:
        return False, False
    states_in_set = fused.states[set_index]
    state = states_in_set[way]
    next_state, invalidates, is_hit = fused.trans[op][state]
    supplied_dirty = is_hit and _DIRTY_OF[state]
    if supplied_dirty:
        acc["remote.supplied_dirty"] = acc.get("remote.supplied_dirty", 0) + 1
    if invalidates:
        _invalidate(fused, set_index, way)
        acc["remote.invalidated"] = acc.get("remote.invalidated", 0) + 1
    else:
        states_in_set[way] = next_state
    return True, supplied_dirty


def _invalidate(fused: _FusedNode, set_index: int, way: int) -> None:
    """Inlined TagStateDirectory.invalidate (same way-map maintenance)."""
    tags_in_set = fused.tags[set_index]
    tag = tags_in_set.pop(way)
    fused.states[set_index].pop(way)
    ways = fused.ways[set_index]
    if ways.get(tag) == way:
        del ways[tag]
    for position in range(way, len(tags_in_set)):
        ways[tags_in_set[position]] = position


def _fused_runner(firmware):
    """Build a fused admitted-tenure runner, or None when ineligible.

    Eligible when every in-service node uses the constant-service
    transaction buffer (no SDRAM timing model), an unprotected directory
    (no ECC), and a known replacement policy.  The runner replays admitted
    tenures in order with the full NodeController/TagStateDirectory hot
    path inlined; cold paths (install on a miss, PLRU metadata) stay as
    method calls so policy behaviour — including the random policy's RNG
    draw order — is untouched.
    """
    groups = getattr(firmware, "_groups", None)
    if groups is None:
        return None
    known = (LruPolicy, FifoPolicy, RandomPolicy, PlruPolicy)
    fused_of = {}
    for local_by_cpu, _peers_of, controllers in groups:
        for node in controllers:
            if node.sdram is not None or node.ecc:
                return None
            if type(node.directory.policy) not in known:
                return None
            if id(node) not in fused_of:
                fused_of[id(node)] = _FusedNode(node)
    fused_groups = []
    all_fused = list(fused_of.values())
    for local_by_cpu, peers_of, controllers in groups:
        for node in controllers:
            fused_of[id(node)].peers = tuple(
                fused_of[id(peer)] for peer in peers_of[node.index]
            )
        fused_groups.append(
            (
                {cpu: fused_of[id(node)] for cpu, node in local_by_cpu.items()},
                tuple(fused_of[id(node)] for node in controllers),
            )
        )

    local_cmd = _LOCAL_CMD
    hit_state_key = _HIT_STATE_KEY
    fill_key = _FILL_KEY
    dirty_of = _DIRTY_OF
    sat_hit = _SAT_HIT
    sat_miss = _SAT_MISS

    def run(cpus, cmds, addrs, resps, nows) -> int:
        cpu_list = cpus.tolist()
        cmd_list = cmds.tolist()
        addr_list = addrs.tolist()
        resp_list = resps.tolist()
        now_list = nows.tolist()
        for fused in all_fused:
            fused.load()
        retries = 0
        for cpu, cmd, addr, resp, now in zip(
            cpu_list, cmd_list, addr_list, resp_list, now_list
        ):
            # Admission pre-check across every group before any state
            # changes (a refused tenure must be side-effect free).
            rejected = False
            for local_of, _controllers in fused_groups:
                local = local_of.get(cpu)
                if local is not None:
                    ft = local.ft
                    while ft and ft[0] <= now:
                        ft.popleft()
                    if len(ft) >= local.capacity:
                        local.rejected += 1
                        rejected = True
            if rejected:
                retries += 1
                continue

            for local_of, controllers in fused_groups:
                local = local_of.get(cpu)
                if local is None:
                    # Unmapped master (see CacheEmulationFirmware.process).
                    if cmd == _READ:
                        op = _REMOTE_READ
                    elif cmd == _CASTOUT and cpu <= _MAX_PROCESSOR_ID:
                        continue
                    else:
                        op = _REMOTE_WRITE
                    for fused in controllers:
                        _remote(fused, op, addr, now)
                    continue

                # Inlined NodeController.process_local.  The buffer offer
                # cannot fail here: the pre-check drained this queue at the
                # same `now` and found room, and nothing has been enqueued
                # since.
                last = local.last_finish
                start = now if now > last else last
                finish = start + local.service
                local.ft.append(finish)
                local.last_finish = finish
                local.accepted += 1
                depth = len(local.ft)
                if depth > local.high_water:
                    local.high_water = depth

                acc = local.acc
                base_key, extra_key, op, hit_key, miss_key, fetches = (
                    local_cmd[cmd]
                )
                acc[base_key] = acc.get(base_key, 0) + 1
                if extra_key is not None:
                    acc[extra_key] = acc.get(extra_key, 0) + 1

                set_index = (addr >> local.off_bits) & local.set_mask
                tag = addr >> local.tag_shift
                way = local.ways[set_index].get(tag, -1)

                if way >= 0:
                    states_in_set = local.states[set_index]
                    state = states_in_set[way]
                    next_state, invalidates, _is_hit = local.trans[op][state]
                    acc[hit_key] = acc.get(hit_key, 0) + 1
                    state_key = hit_state_key[state]
                    acc[state_key] = acc.get(state_key, 0) + 1
                    if invalidates:
                        _invalidate(local, set_index, way)
                    else:
                        states_in_set[way] = next_state
                        if local.is_lru:
                            if way:
                                tags_in_set = local.tags[set_index]
                                tags_in_set.insert(0, tags_in_set.pop(way))
                                states_in_set.insert(0, states_in_set.pop(way))
                                ways = local.ways[set_index]
                                for position in range(way + 1):
                                    ways[tags_in_set[position]] = position
                        elif local.touch_meta is not None:
                            meta = local.meta
                            meta[set_index] = local.touch_meta(
                                way, meta[set_index]
                            )
                    if op == _LOCAL_WRITE and (
                        state == _SHARED or state == _OWNED
                    ):
                        for peer in local.peers:
                            _remote(peer, _REMOTE_WRITE, addr, now)
                    if fetches:
                        sat_key = sat_hit[resp]
                        acc[sat_key] = acc.get(sat_key, 0) + 1
                    continue

                # Miss path.
                acc[miss_key] = acc.get(miss_key, 0) + 1
                if op == _LOCAL_CASTOUT:
                    acc["inclusion.castout_miss"] = (
                        acc.get("inclusion.castout_miss", 0) + 1
                    )
                    fill = local.fill_write
                elif op == _LOCAL_WRITE:
                    for peer in local.peers:
                        _remote(peer, _REMOTE_WRITE, addr, now)
                    fill = local.fill_write
                else:  # LOCAL_READ
                    shared_elsewhere = False
                    for peer in local.peers:
                        held, dirty = _remote(peer, _REMOTE_READ, addr, now)
                        if held:
                            shared_elsewhere = True
                        if dirty:
                            acc["intervention.from_peer"] = (
                                acc.get("intervention.from_peer", 0) + 1
                            )
                    fill = (
                        local.fill_read_shared
                        if shared_elsewhere
                        else local.fill_read_alone
                    )
                evicted = local.install(set_index, tag, fill)
                key = fill_key[fill]
                acc[key] = acc.get(key, 0) + 1
                if evicted is not None:
                    if dirty_of[evicted[1]]:
                        acc["evict.dirty"] = acc.get("evict.dirty", 0) + 1
                    else:
                        acc["evict.clean"] = acc.get("evict.clean", 0) + 1
                if fetches:
                    sat_key = sat_miss[resp]
                    acc[sat_key] = acc.get(sat_key, 0) + 1
        for fused in all_fused:
            fused.store()
        return retries

    return run


def _generic_runner(firmware):
    """Admitted-tenure runner calling ``firmware.process`` per tenure.

    Used for firmware images without the fused fast path (tracer, hot-spot
    profiler, NUMA directory, remote-cache, SDRAM-priced or custom-policy
    cache nodes): the vectorised pre-pass still removes filtered tenures,
    filter/global bookkeeping and the clock from the Python loop.
    """
    process = firmware.process
    commands = _COMMANDS
    responses = _RESPONSES

    def run(cpus, cmds, addrs, resps, nows) -> int:
        retries = 0
        for cpu, cmd, addr, resp, now in zip(
            cpus.tolist(), cmds.tolist(), addrs.tolist(),
            resps.tolist(), nows.tolist(),
        ):
            if not process(cpu, commands[cmd], addr, responses[resp], now):
                retries += 1
        return retries

    return run


def replay_words_batched(board, words: np.ndarray) -> int:
    """Replay packed records through the batched engine; returns the count.

    Precondition (proven statically, not checked here): the board grants
    ``INERT_BACKGROUND_TICK`` — no time-driven firmware machinery needs
    to interleave between tenures.  The engine registry
    (:func:`repro.engines.registry.select_board_engine`) only routes a
    board here after the capability prover establishes that, so this
    function carries no refusal logic of its own.
    """
    if int(words.shape[0]) == 0:
        return 0
    runner = _fused_runner(board.firmware)
    if runner is None:
        runner = _generic_runner(board.firmware)
    return replay_with_runner(board, words, runner)


def replay_with_runner(board, words: np.ndarray, runner, flush=None) -> int:
    """Drive ``runner`` over ``words`` in telemetry-aligned chunks.

    The shared chunking loop behind the batched and compiled engines:
    vectorised admit-mask pre-pass, bulk filter/global/clock updates per
    chunk, chunk boundaries aligned with the sampler countdown.  ``runner``
    receives the admitted tenures of one chunk as numpy arrays
    ``(cpus, cmds, addrs, resps, nows)`` and returns the retry count;
    ``flush``, when given, is called before every ``on_countdown`` so an
    engine that accumulates state outside the board objects (the compiled
    kernel's flat arrays) can make ``board.statistics()`` current first.
    """
    count = int(words.shape[0])
    if count == 0:
        return 0

    cpu_ids, commands, addresses, responses = decode_arrays(words)
    is_io = (commands == _IO_READ) | (commands == _IO_WRITE)
    is_interrupt = commands == _INTERRUPT
    is_sync = commands == _SYNC
    command_filtered = is_io | is_interrupt | is_sync
    is_retried = ~command_filtered & (responses == _RETRY)
    admit = ~(command_filtered | is_retried)

    telemetry = board.telemetry
    start = 0
    while start < count:
        # Chunks end exactly where the sampler's countdown would reach
        # zero, so on_countdown observes the same board state at the same
        # transaction index as the scalar per-tenure decrement.
        remaining = count - start
        if telemetry is not None and telemetry._countdown < remaining:
            # A countdown at (or below) zero on entry — a detach/reattach
            # landing exactly on a cadence boundary — still replays one
            # tenure before the boundary check: the scalar loop decrements
            # first and fires after the tenure commits, so the chunk must
            # never be empty.
            countdown = telemetry._countdown
            take = countdown if countdown > 0 else 1
        else:
            take = remaining
        stop = start + take
        _run_chunk(
            board,
            runner,
            cpu_ids[start:stop],
            commands[start:stop],
            addresses[start:stop],
            responses[start:stop],
            is_io[start:stop],
            is_interrupt[start:stop],
            is_sync[start:stop],
            is_retried[start:stop],
            admit[start:stop],
        )
        if telemetry is not None:
            telemetry._countdown -= take
            if telemetry._countdown <= 0:
                if flush is not None:
                    flush()
                telemetry.on_countdown(board)
        start = stop
    return count


def _run_chunk(
    board,
    runner,
    cpu_ids,
    commands,
    addresses,
    responses,
    is_io,
    is_interrupt,
    is_sync,
    is_retried,
    admit,
) -> None:
    chunk = int(cpu_ids.shape[0])
    cycles_per_tenure = board.cycles_per_tenure
    # The scalar clock is `now += cpt` per tenure; np.cumsum accumulates
    # left to right with the same per-step IEEE rounding, so seeding the
    # first step with the current clock reproduces every intermediate
    # `now` bit for bit.
    steps = np.full(chunk, cycles_per_tenure, dtype=np.float64)
    steps[0] = board.now_cycle + cycles_per_tenure
    nows = np.cumsum(steps)

    admitted = np.nonzero(admit)[0]
    n_admitted = int(admitted.shape[0])

    stats = board.address_filter.stats
    stats.observed += chunk
    stats.filtered_io += int(np.count_nonzero(is_io))
    stats.filtered_interrupts += int(np.count_nonzero(is_interrupt))
    stats.filtered_sync += int(np.count_nonzero(is_sync))
    stats.filtered_retried += int(np.count_nonzero(is_retried))
    stats.forwarded += n_admitted

    if n_admitted:
        admitted_nows = nows[admitted]
        board.address_filter.buffer.offer_batch(admitted_nows)
        board.global_counter.record_batch(
            cpu_ids[admitted], commands[admitted], cycles_per_tenure
        )
        board.retries_posted += runner(
            cpu_ids[admitted],
            commands[admitted],
            addresses[admitted],
            responses[admitted],
            admitted_nows,
        )
    board.now_cycle = float(nows[-1])
