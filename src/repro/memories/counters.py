"""The board's 40-bit event counter banks.

Section 3 of the paper: "The MemorIES board contains more than 400 counters
to count various cache hit/miss events in detail.  Each counter is 40-bit
wide and can hold performance data for more than 30 hours of real time
program execution at the typical 20% bus utilization level."

:class:`CounterBank` models one bank of named 40-bit counters with hardware
wrap-around semantics.  Counters are created lazily on first increment, the
way the firmware statically allocates them; :meth:`read` applies the 40-bit
mask, while :meth:`read_raw` exposes the un-wrapped value for tests.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.common.errors import EmulationError

COUNTER_BITS = 40
COUNTER_MASK = (1 << COUNTER_BITS) - 1


class CounterBank:
    """A named bank of 40-bit wrapping event counters.

    Args:
        prefix: namespace prepended to every counter name when the bank is
            merged into board-level statistics (e.g. ``"node0"``).
    """

    __slots__ = ("prefix", "_counts")

    def __init__(self, prefix: str = "") -> None:
        self.prefix = prefix
        self._counts: Dict[str, int] = {}

    def increment(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` events to a counter (created at zero on first use).

        Raises:
            EmulationError: on a negative amount — hardware counters only
                count up.
        """
        if amount < 0:
            raise EmulationError(f"counter {name!r} cannot decrement")
        self._counts[name] = self._counts.get(name, 0) + amount

    def read(self, name: str) -> int:
        """Counter value as the hardware would report it (40-bit wrapped)."""
        return self._counts.get(name, 0) & COUNTER_MASK

    def read_raw(self, name: str) -> int:
        """Un-wrapped value (model-only; the board cannot report this)."""
        return self._counts.get(name, 0)

    def wrapped(self, name: str) -> bool:
        """True when the counter has overflowed at least once."""
        return self._counts.get(name, 0) > COUNTER_MASK

    def wrapped_counters(self, qualified: bool = True) -> Iterator[str]:
        """Names of counters that have overflowed, sorted.

        With ``qualified`` (the default) names carry the bank prefix, the
        way merged board statistics report them — so samplers and the
        resilience report can flag aliased 40-bit readouts bank by bank
        instead of probing :meth:`wrapped` name by name.
        """
        for name in sorted(self._counts):
            if self._counts[name] > COUNTER_MASK:
                yield f"{self.prefix}.{name}" if qualified and self.prefix else name

    def reset(self) -> None:
        """Clear every counter (console 'initialise statistics' command)."""
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def items(self) -> Iterator[Tuple[str, int]]:
        """(name, wrapped value) pairs, sorted by name."""
        for name in sorted(self._counts):
            yield name, self._counts[name] & COUNTER_MASK

    def state_dict(self) -> Dict[str, int]:
        """Raw (un-wrapped) counter values for board checkpoints."""
        return dict(self._counts)

    def load_state_dict(self, state: Dict[str, int]) -> None:
        """Restore checkpointed counters, replacing current contents."""
        self._counts = {str(name): int(value) for name, value in state.items()}

    def snapshot(self, qualified: bool = True) -> Dict[str, int]:
        """Key-sorted dict of wrapped values; ``qualified`` adds the prefix.

        Deterministic ordering (not insertion order, which varies with the
        reference stream) keeps golden tests and telemetry delta series
        stable across runs and Python versions.
        """
        counts = self._counts
        if qualified and self.prefix:
            return {
                f"{self.prefix}.{name}": counts[name] & COUNTER_MASK
                for name in sorted(counts)
            }
        return {name: counts[name] & COUNTER_MASK for name in sorted(counts)}


def seconds_until_wrap(
    events_per_second: float,
    bits: int = COUNTER_BITS,
) -> float:
    """Time for a counter to wrap at a given event rate.

    Used by the Table-2-adjacent sanity check in the paper's Section 3: at a
    100 MHz bus and 20% utilization a 40-bit counter lasts > 30 hours.
    """
    if events_per_second <= 0:
        return float("inf")
    return (1 << bits) / events_per_second
